"""Microbenchmark for the binary wire codec (``repro.wire``).

Three measurements back the codec's two headline claims — that delta
compression shrinks the quiescent-session vectors the protocol leans on,
and that encoding is cheap enough to leave on everywhere:

* **throughput** — encode/decode round-trip speed on propagating-session
  frames (a ``PropagationReply`` carrying item payloads with multi-KiB
  values, the shape that dominates bytes on the wire) and, separately,
  on small metadata-only frames where per-field overhead dominates;
* **session bytes** — an E8-style quiescent and propagating session at
  n=32 encoded under ``WireCodec(delta_vv=True)`` vs ``delta_vv=False``,
  reporting the percentage saved by delta-compressed version vectors;
* **simulation drift** — a real ``ClusterSimulation(wire=True)`` run to
  convergence, comparing the byte-exact ``bytes_sent`` (frame lengths)
  against the modelled sizes the default mode charges.

``python benchmarks/wire_harness.py`` (or the driver test in
``test_wire.py``) writes ``BENCH_wire.json`` at the repo root.  Set
``REPRO_WIRE_SMOKE=1`` for the CI-sized run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster.simulation import ClusterSimulation  # noqa: E402
from repro.core.messages import (  # noqa: E402
    ItemPayload,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import VersionVector  # noqa: E402
from repro.experiments.common import make_factory, make_items  # noqa: E402
from repro.substrate.operations import Put  # noqa: E402
from repro.wire import WireCodec  # noqa: E402

__all__ = [
    "REPORT_NAME",
    "bench_session_bytes",
    "bench_simulation_drift",
    "bench_throughput",
    "run_all",
    "smoke_mode",
    "write_report",
]

REPORT_NAME = "BENCH_wire.json"

# E8-style session shape: n=32 replicas that have each originated a few
# hundred updates, syncing every round so successive vectors differ in
# only a handful of components.
SESSION_NODES = 32
SESSION_SEQNO_SPREAD = 600
SESSION_SAMPLES = 40

FULL_THROUGHPUT_FRAMES = 400
SMOKE_THROUGHPUT_FRAMES = 60
PAYLOAD_VALUE_SIZE = 4096
PAYLOADS_PER_REPLY = 4

FULL_SIM = (8, 200, 160)  # (n_nodes, n_items, burst updates)
SMOKE_SIM = (6, 60, 48)


def smoke_mode() -> bool:
    return os.environ.get("REPRO_WIRE_SMOKE", "") not in ("", "0")


def _vector(n: int, salt: int) -> VersionVector:
    """A deterministic dense vector with E8-scale components."""
    return VersionVector.from_counts(
        [(17 * k + 29 * salt) % SESSION_SEQNO_SPREAD + 1 for k in range(n)]
    )


def _bump(vector: VersionVector, k: int) -> VersionVector:
    """One epidemic step: a single component advanced by one."""
    counts = list(vector.as_tuple())
    counts[k % len(counts)] += 1
    return VersionVector.from_counts(counts)


def _value(size: int) -> bytes:
    return bytes(range(256)) * (size // 256) + b"\x00" * (size % 256)


def _reply_frame_messages() -> list[Any]:
    """One propagating session's frames: request in, loaded reply out."""
    ivv = _vector(SESSION_NODES, 3)
    payloads = tuple(
        ItemPayload(f"item-{k:04d}", _value(PAYLOAD_VALUE_SIZE), ivv)
        for k in range(PAYLOADS_PER_REPLY)
    )
    return [
        PropagationRequest(1, _vector(SESSION_NODES, 1)),
        PropagationReply(0, ((("item-0000", 7),),), payloads),
    ]


def bench_throughput(frames: int | None = None) -> dict[str, Any]:
    """Encode+decode round-trip speed, MB/s over frame bytes."""
    frames = frames or (
        SMOKE_THROUGHPUT_FRAMES if smoke_mode() else FULL_THROUGHPUT_FRAMES
    )
    messages = _reply_frame_messages()

    def run(delta: bool) -> dict[str, Any]:
        # Best of three timed passes: one pass is at the mercy of CPU
        # frequency ramp-up and scheduler noise, and the figure we want
        # to pin (and gate on in CI) is the codec's capability, not the
        # machine's mood during the first pass.
        best_elapsed = float("inf")
        total_bytes = 0
        for _ in range(3):
            codec = WireCodec(delta_vv=delta)
            total_bytes = 0
            t0 = time.perf_counter()
            for _ in range(frames):
                for message in messages:
                    frame = codec.encode(0, 1, message)
                    total_bytes += len(frame)
                    decoded = codec.decode(0, 1, frame)
                assert decoded is not None
            best_elapsed = min(best_elapsed, time.perf_counter() - t0)
        return {
            "frames": frames * len(messages),
            "total_mb": round(total_bytes / 1e6, 3),
            "roundtrip_mb_s": round(total_bytes / 1e6 / best_elapsed, 1),
        }

    # Small-frame figure: metadata-only session traffic where per-field
    # overhead, not byte copying, is the cost.
    small = [PropagationRequest(1, _vector(SESSION_NODES, 1)), YouAreCurrent(1)]
    count = frames * 50
    small_elapsed = float("inf")
    for _ in range(3):
        small_codec = WireCodec()
        t0 = time.perf_counter()
        for i in range(count):
            message = small[i % 2]
            small_codec.decode(0, 1, small_codec.encode(0, 1, message))
        small_elapsed = min(small_elapsed, time.perf_counter() - t0)

    return {
        "payload_value_bytes": PAYLOAD_VALUE_SIZE,
        "payloads_per_reply": PAYLOADS_PER_REPLY,
        "session_frames": run(delta=True),
        "session_frames_full_vv": run(delta=False),
        "small_frames_per_sec": round(count / small_elapsed),
    }


def _session_bytes(codec: WireCodec, propagating: bool) -> list[int]:
    """Per-session byte totals for SESSION_SAMPLES successive sessions.

    Between sessions the initiator's dbvv advances by one component —
    the steady-state shape E8 produces, where almost everything a peer
    already knows is re-stated in every vector.
    """
    dbvv = _vector(SESSION_NODES, 1)
    ivv = _vector(SESSION_NODES, 2)
    totals = []
    for session in range(SESSION_SAMPLES):
        size = 0
        request = PropagationRequest(1, dbvv)
        frame = codec.encode(0, 1, request)
        codec.decode(0, 1, frame)
        size += len(frame)
        if propagating:
            payload = ItemPayload("hot-item", b"v" * 24, ivv)
            reply = PropagationReply(1, ((("hot-item", 3),),), (payload,))
            frame = codec.encode(1, 0, reply)
        else:
            frame = codec.encode(1, 0, YouAreCurrent(1))
        codec.decode(1, 0, frame)
        size += len(frame)
        totals.append(size)
        dbvv = _bump(dbvv, session)
        ivv = _bump(ivv, session)
    return totals


def bench_session_bytes() -> dict[str, Any]:
    """Quiescent and propagating session bytes, delta vs full vectors."""

    def arm(propagating: bool) -> dict[str, Any]:
        delta = _session_bytes(WireCodec(delta_vv=True), propagating)
        full = _session_bytes(WireCodec(delta_vv=False), propagating)
        # Skip session 0: the delta arm has no cached base yet, so both
        # arms ship full vectors and the comparison is a wash.
        delta_steady = sum(delta[1:]) / (len(delta) - 1)
        full_steady = sum(full[1:]) / (len(full) - 1)
        return {
            "first_session_bytes": delta[0],
            "delta_vv_bytes_per_session": round(delta_steady, 1),
            "full_vv_bytes_per_session": round(full_steady, 1),
            "savings_pct": round(100 * (1 - delta_steady / full_steady), 1),
        }

    return {
        "n_nodes": SESSION_NODES,
        "sessions": SESSION_SAMPLES,
        "quiescent": arm(propagating=False),
        "propagating": arm(propagating=True),
    }


def bench_simulation_drift(
    n_nodes: int | None = None,
    n_items: int | None = None,
    burst: int | None = None,
    *,
    seed: int = 11,
) -> dict[str, Any]:
    """A real encoded-mode run: byte-exact counters vs the model.

    Runs the identical deterministic simulation twice — once encoded,
    once modelled — and reports both byte totals plus the encoded arm's
    internal drift (``bytes_sent`` vs its own ``modelled_bytes_sent``).
    """
    defaults = SMOKE_SIM if smoke_mode() else FULL_SIM
    n_nodes = n_nodes or defaults[0]
    n_items = n_items or defaults[1]
    burst = burst or defaults[2]
    items = make_items(n_items)

    def run(wire: bool) -> Any:
        sim = ClusterSimulation(
            make_factory("dbvv", n_nodes, items),
            n_nodes,
            items,
            seed=seed,
            wire=wire,
            sanitize=False,
        )
        for k in range(burst):
            sim.apply_update(k % n_nodes, items[k % n_items], Put(f"v{k}".encode()))
        sim.run_until_converged(max_rounds=40 * n_nodes)
        return sim.total_counters

    encoded = run(wire=True)
    modelled = run(wire=False)
    assert encoded.messages_sent == modelled.messages_sent
    return {
        "n_nodes": n_nodes,
        "n_items": n_items,
        "burst_updates": burst,
        "messages": encoded.messages_sent,
        "encoded_bytes_sent": encoded.bytes_sent,
        "modelled_bytes_sent": encoded.modelled_bytes_sent,
        "default_mode_bytes_sent": modelled.bytes_sent,
        "encoded_vs_model_pct": round(
            100 * encoded.bytes_sent / encoded.modelled_bytes_sent, 1
        ),
    }


def run_all() -> dict[str, Any]:
    return {
        "benchmark": "wire-codec",
        "smoke": smoke_mode(),
        "throughput": bench_throughput(),
        "session_bytes": bench_session_bytes(),
        "simulation": bench_simulation_drift(),
    }


def write_report(report: dict[str, Any], path: Path | None = None) -> Path:
    path = path or Path(__file__).resolve().parent.parent / REPORT_NAME
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:
    report = run_all()
    path = write_report(report)
    session = report["throughput"]["session_frames"]
    quiescent = report["session_bytes"]["quiescent"]
    sim = report["simulation"]
    print(f"roundtrip: {session['roundtrip_mb_s']} MB/s over {session['total_mb']} MB")
    print(
        f"quiescent session (n={report['session_bytes']['n_nodes']}): "
        f"{quiescent['delta_vv_bytes_per_session']} B delta vs "
        f"{quiescent['full_vv_bytes_per_session']} B full "
        f"({quiescent['savings_pct']}% saved)"
    )
    print(
        f"simulation: encoded {sim['encoded_bytes_sent']} B = "
        f"{sim['encoded_vs_model_pct']}% of modelled "
        f"{sim['modelled_bytes_sent']} B"
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
