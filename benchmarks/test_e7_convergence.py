"""E7 bench — convergence rounds and the Theorem 5 checks.

Regenerates the E7 table (rounds vs n for random and ring scheduling,
plus the conflict-detection check) and times a full convergence run.
"""

import pytest

from repro.cluster.scheduler import RandomSelector
from repro.experiments import e7_convergence as e7


@pytest.mark.parametrize("n_nodes", [8, 32])
def test_bench_convergence_run(benchmark, n_nodes):
    benchmark(lambda: e7.converge_once(n_nodes, RandomSelector(), seed=1, updates=100))


def test_regenerate_e7_table(benchmark):
    rows = benchmark.pedantic(
        lambda: e7.run_convergence(node_counts=(4, 8, 16, 32, 64), seeds=(1, 2, 3)),
        rounds=1, iterations=1,
    )
    detection = e7.run_conflict_detection()
    e7.report(rows, detection).print()

    random_rows = {r.n_nodes: r.mean_rounds for r in rows if r.selector == "random"}
    # Epidemic pull: rounds grow ~log n — going 4 -> 64 nodes (16x)
    # must cost far less than 16x the rounds.
    assert random_rows[64] < 4 * random_rows[4]
    assert detection.detected_items == detection.planted
    assert detection.silently_merged == 0
    assert all(r.conflicts == 0 for r in rows)
