"""Round-loop scale harness: quantify the de-quadratized round loop.

Before incremental tracking, every simulated round paid O(n·N) twice —
``converged()`` materialized a full ``state_fingerprint()`` dict per
node, and the per-round staleness sample re-probed every (node, item)
pair against the ground truth.  With ``state_version()`` digests and
the dirty-frontier ``GroundTruth``, both instruments cost O(n) plus the
size of what actually changed.  This harness measures that difference
directly: the same burst-then-quiesce workload through the same
``ClusterSimulation`` round loop, once with ``incremental_tracking``
on and once with the legacy from-scratch instruments, across a grid of
cluster sizes n and database sizes N.

The measured loop is the shape of every staleness experiment in the
repo (E5/E7/E9): per round, ``run_round()`` (which samples
``stale_pairs``), a ``converged()`` check, and a ground-truth
``observe()``.  The workload is a conflict-free burst (distinct items,
one writer each) followed by quiescence; the cluster converges within
the first ~10 rounds and the remaining rounds measure the steady-state
instrument overhead that dominates long experiment runs.  Sanitizer
mode is forced off in both arms so cross-checking never pollutes the
timings.

``python benchmarks/scale_harness.py`` (or the driver test in
``test_scale.py``) writes ``BENCH_scale.json`` at the repo root.  Set
``REPRO_SCALE_SMOKE=1`` for the CI-sized grid.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster.simulation import ClusterSimulation  # noqa: E402
from repro.experiments.common import make_factory, make_items  # noqa: E402
from repro.substrate.operations import Put  # noqa: E402

__all__ = [
    "DEFAULT_GRID",
    "SMOKE_GRID",
    "active_grid",
    "active_rounds",
    "run_config",
    "run_grid",
    "write_report",
]

# (n_nodes, n_items) grid from the issue: n ∈ {8, 32, 128}, N ∈ {100, 1000}.
DEFAULT_GRID: tuple[tuple[int, int], ...] = (
    (8, 100),
    (8, 1000),
    (32, 100),
    (32, 1000),
    (128, 100),
    (128, 1000),
)
DEFAULT_ROUNDS = 200

# CI smoke: small enough to finish in seconds, still exercises both arms.
SMOKE_GRID: tuple[tuple[int, int], ...] = ((8, 100), (32, 100), (32, 1000))
SMOKE_ROUNDS = 60

BURST_UPDATES = 64
REPORT_NAME = "BENCH_scale.json"


def smoke_mode() -> bool:
    return os.environ.get("REPRO_SCALE_SMOKE", "") not in ("", "0")


def active_grid() -> tuple[tuple[int, int], ...]:
    return SMOKE_GRID if smoke_mode() else DEFAULT_GRID


def active_rounds() -> int:
    return SMOKE_ROUNDS if smoke_mode() else DEFAULT_ROUNDS


def run_config(
    n_nodes: int,
    n_items: int,
    *,
    rounds: int,
    incremental: bool,
    protocol: str = "dbvv",
    seed: int = 7,
) -> dict[str, Any]:
    """Time the instrumented round loop for one (n, N, mode) cell.

    Returns per-round wall time for the full loop and, separately, for
    the explicit instruments (``converged()`` + ``observe()``); note
    ``run_round()`` itself also samples ``stale_pairs`` once per round,
    so the instrument figure *understates* the legacy mode's total
    overhead — the comparison is conservative.
    """
    items = make_items(n_items)
    sim = ClusterSimulation(
        make_factory(protocol, n_nodes, items),
        n_nodes,
        items,
        seed=seed,
        sanitize=False,  # never let REPRO_SANITIZE poison timings
        incremental_tracking=incremental,
    )
    burst = min(BURST_UPDATES, n_items)
    for k in range(burst):
        sim.apply_update(k % n_nodes, items[k], Put(f"b{k}".encode()))

    converge_round = None
    instrument_s = 0.0
    t0 = time.perf_counter()
    for _ in range(rounds):
        sim.run_round()
        i0 = time.perf_counter()
        done = sim.converged()
        sim.ground_truth.observe(float(sim.round_no), sim.nodes)
        instrument_s += time.perf_counter() - i0
        if done and converge_round is None:
            converge_round = sim.round_no
    total_s = time.perf_counter() - t0

    counters = sim.total_counters
    return {
        "mode": "incremental" if incremental else "legacy",
        "per_round_ms": round(total_s / rounds * 1e3, 4),
        "rounds_per_sec": round(rounds / total_s, 2),
        "instrument_per_round_ms": round(instrument_s / rounds * 1e3, 4),
        "converge_round": converge_round,
        "staleness_reexaminations": counters.staleness_reexaminations,
        "messages_sent": counters.messages_sent,
    }


def run_grid(
    grid: tuple[tuple[int, int], ...] | None = None,
    *,
    rounds: int | None = None,
    protocol: str = "dbvv",
    seed: int = 7,
) -> dict[str, Any]:
    """Both arms across the grid, with per-cell speedups."""
    grid = active_grid() if grid is None else grid
    rounds = active_rounds() if rounds is None else rounds
    configs = []
    for n_nodes, n_items in grid:
        inc = run_config(
            n_nodes, n_items, rounds=rounds, incremental=True,
            protocol=protocol, seed=seed,
        )
        leg = run_config(
            n_nodes, n_items, rounds=rounds, incremental=False,
            protocol=protocol, seed=seed,
        )
        configs.append(
            {
                "n_nodes": n_nodes,
                "n_items": n_items,
                "incremental": inc,
                "legacy": leg,
                "round_throughput_speedup": round(
                    inc["rounds_per_sec"] / leg["rounds_per_sec"], 2
                ),
            }
        )
    return {
        "benchmark": "scale-round-loop",
        "protocol": protocol,
        "rounds_per_config": rounds,
        "burst_updates": BURST_UPDATES,
        "smoke": smoke_mode(),
        "workload": (
            "conflict-free burst (distinct items, one writer each), then "
            "quiescence; loop = run_round + converged + observe"
        ),
        "configs": configs,
    }


def write_report(report: dict[str, Any], path: Path | None = None) -> Path:
    path = path or Path(__file__).resolve().parent.parent / REPORT_NAME
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:
    report = run_grid()
    path = write_report(report)
    for cfg in report["configs"]:
        print(
            f"n={cfg['n_nodes']:4d} N={cfg['n_items']:5d}  "
            f"incremental={cfg['incremental']['per_round_ms']:8.3f} ms/round  "
            f"legacy={cfg['legacy']['per_round_ms']:8.3f} ms/round  "
            f"speedup={cfg['round_throughput_speedup']:5.1f}x"
        )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
