"""Round-loop scale harness: quantify the de-Python-ized round loop.

Before incremental tracking, every simulated round paid O(n·N) twice —
``converged()`` materialized a full ``state_fingerprint()`` dict per
node, and the per-round staleness sample re-probed every (node, item)
pair against the ground truth.  With ``state_version()`` digests and
the dirty-frontier ``GroundTruth``, both instruments cost O(n) plus the
size of what actually changed.  This harness measures that difference
directly: the same burst-then-quiesce workload through the same
``ClusterSimulation`` round loop, once with ``incremental_tracking``
on and once with the legacy from-scratch instruments, across a grid of
cluster sizes n and database sizes N.

The measured loop is the shape of every staleness experiment in the
repo (E5/E7/E9): per round, ``run_round()`` (which samples
``stale_pairs``), a ``converged()`` check, and a ground-truth
``observe()``.  The workload is a conflict-free burst (distinct items,
one writer each) followed by quiescence; the cluster converges within
the first ~10 rounds and the remaining rounds measure the steady-state
cost that dominates long experiment runs.  Sanitizer mode is forced
off in both arms so cross-checking never pollutes the timings.

Each grid cell reports a *per-phase* breakdown alongside the full-run
average: the ``converge`` phase (rounds up to and including the first
round the cluster converged — real anti-entropy data movement) and the
``steady_state`` phase (everything after — the quiescent rounds the
quiescent-pair fast path turns into stamp replays).  The two phases
have very different cost profiles; a regression in either is invisible
in the blended average once the other dominates.

``run_quiescent_suite`` is the dedicated quiescent-heavy configuration
(n=128 on a deterministic ring, so every ordered pair's stamp warms
within a few rounds): a converged, idle cluster measured with the
fast path on and off, in both byte-accounting modes, pinning the
skip speedup that CI's bench gate guards.

``python benchmarks/scale_harness.py`` (or the driver test in
``test_scale.py``) writes ``BENCH_scale.json`` at the repo root.  Set
``REPRO_SCALE_SMOKE=1`` for the CI-sized grid.  Pass ``--profile`` to
dump the cProfile top functions of the quiescent round loop instead of
running the full grid.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster.scheduler import RingSelector  # noqa: E402
from repro.cluster.simulation import ClusterSimulation  # noqa: E402
from repro.experiments.common import make_factory, make_items  # noqa: E402
from repro.substrate.operations import Put  # noqa: E402

__all__ = [
    "DEFAULT_GRID",
    "SMOKE_GRID",
    "QUIESCENT_NODES",
    "QUIESCENT_ITEMS",
    "active_grid",
    "active_rounds",
    "active_quiescent_rounds",
    "run_config",
    "run_grid",
    "run_quiescent_config",
    "run_quiescent_suite",
    "write_report",
]

# (n_nodes, n_items) grid from the issue: n ∈ {8, 32, 128}, N ∈ {100, 1000}.
DEFAULT_GRID: tuple[tuple[int, int], ...] = (
    (8, 100),
    (8, 1000),
    (32, 100),
    (32, 1000),
    (128, 100),
    (128, 1000),
)
DEFAULT_ROUNDS = 200

# CI smoke: small enough to finish in seconds, still exercises both arms.
SMOKE_GRID: tuple[tuple[int, int], ...] = ((8, 100), (32, 100), (32, 1000))
SMOKE_ROUNDS = 60

BURST_UPDATES = 64
REPORT_NAME = "BENCH_scale.json"

# The quiescent-heavy configuration: the issue's n=128 cluster, idle
# after convergence, on a deterministic ring so every ordered pair
# repeats within n rounds and the per-pair stamps warm immediately.
QUIESCENT_NODES = 128
QUIESCENT_ITEMS = 1000
QUIESCENT_ROUNDS = 60
QUIESCENT_SMOKE_ROUNDS = 20
QUIESCENT_WARM_ROUNDS = 5


def smoke_mode() -> bool:
    return os.environ.get("REPRO_SCALE_SMOKE", "") not in ("", "0")


def active_grid() -> tuple[tuple[int, int], ...]:
    return SMOKE_GRID if smoke_mode() else DEFAULT_GRID


def active_rounds() -> int:
    return SMOKE_ROUNDS if smoke_mode() else DEFAULT_ROUNDS


def active_quiescent_rounds() -> int:
    return QUIESCENT_SMOKE_ROUNDS if smoke_mode() else QUIESCENT_ROUNDS


def run_config(
    n_nodes: int,
    n_items: int,
    *,
    rounds: int,
    incremental: bool,
    protocol: str = "dbvv",
    seed: int = 7,
) -> dict[str, Any]:
    """Time the instrumented round loop for one (n, N, mode) cell.

    Returns per-round wall time for the full loop, for the explicit
    instruments (``converged()`` + ``observe()``), and per phase —
    ``converge`` (rounds up to and including the first converged one)
    vs ``steady_state`` (the quiescent remainder).  Note ``run_round()``
    itself also samples ``stale_pairs`` once per round, so the
    instrument figure *understates* the legacy mode's total overhead —
    the comparison is conservative.
    """
    items = make_items(n_items)
    sim = ClusterSimulation(
        make_factory(protocol, n_nodes, items),
        n_nodes,
        items,
        seed=seed,
        sanitize=False,  # never let REPRO_SANITIZE poison timings
        incremental_tracking=incremental,
    )
    burst = min(BURST_UPDATES, n_items)
    for k in range(burst):
        sim.apply_update(k % n_nodes, items[k], Put(f"b{k}".encode()))

    converge_round = None
    instrument_s = 0.0
    round_s: list[float] = []
    t0 = time.perf_counter()
    for _ in range(rounds):
        r0 = time.perf_counter()
        sim.run_round()
        i0 = time.perf_counter()
        done = sim.converged()
        sim.ground_truth.observe(float(sim.round_no), sim.nodes)
        now = time.perf_counter()
        instrument_s += now - i0
        round_s.append(now - r0)
        if done and converge_round is None:
            converge_round = sim.round_no
    total_s = time.perf_counter() - t0

    # Phase split: round i (1-based sim.round_no) landed at round_s[i-1].
    split = converge_round if converge_round is not None else rounds
    converge_s = sum(round_s[:split])
    steady = round_s[split:]

    counters = sim.total_counters
    return {
        "mode": "incremental" if incremental else "legacy",
        "per_round_ms": round(total_s / rounds * 1e3, 4),
        "rounds_per_sec": round(rounds / total_s, 2),
        "instrument_per_round_ms": round(instrument_s / rounds * 1e3, 4),
        "phases": {
            "converge": {
                "rounds": split,
                "per_round_ms": round(converge_s / split * 1e3, 4)
                if split
                else 0.0,
            },
            "steady_state": {
                "rounds": len(steady),
                "per_round_ms": round(sum(steady) / len(steady) * 1e3, 4)
                if steady
                else 0.0,
            },
        },
        "converge_round": converge_round,
        "staleness_reexaminations": counters.staleness_reexaminations,
        "fastpath_skips": counters.fastpath_skips,
        "messages_sent": counters.messages_sent,
    }


def run_grid(
    grid: tuple[tuple[int, int], ...] | None = None,
    *,
    rounds: int | None = None,
    protocol: str = "dbvv",
    seed: int = 7,
) -> dict[str, Any]:
    """Both arms across the grid, with per-cell speedups."""
    grid = active_grid() if grid is None else grid
    rounds = active_rounds() if rounds is None else rounds
    configs = []
    for n_nodes, n_items in grid:
        inc = run_config(
            n_nodes, n_items, rounds=rounds, incremental=True,
            protocol=protocol, seed=seed,
        )
        leg = run_config(
            n_nodes, n_items, rounds=rounds, incremental=False,
            protocol=protocol, seed=seed,
        )
        configs.append(
            {
                "n_nodes": n_nodes,
                "n_items": n_items,
                "incremental": inc,
                "legacy": leg,
                "round_throughput_speedup": round(
                    inc["rounds_per_sec"] / leg["rounds_per_sec"], 2
                ),
            }
        )
    return {
        "benchmark": "scale-round-loop",
        "protocol": protocol,
        "rounds_per_config": rounds,
        "burst_updates": BURST_UPDATES,
        "smoke": smoke_mode(),
        "workload": (
            "conflict-free burst (distinct items, one writer each), then "
            "quiescence; loop = run_round + converged + observe"
        ),
        "configs": configs,
        "quiescent": run_quiescent_suite(seed=seed),
    }


def _build_quiescent_sim(
    *,
    n_nodes: int,
    n_items: int,
    protocol: str,
    seed: int,
    wire: bool,
    fastpath: bool,
) -> ClusterSimulation:
    items = make_items(n_items)
    sim = ClusterSimulation(
        make_factory(protocol, n_nodes, items),
        n_nodes,
        items,
        selector=RingSelector(),
        seed=seed,
        sanitize=False,
        wire=wire,
        incremental_tracking=True,
        quiescent_fastpath=fastpath,
    )
    burst = min(BURST_UPDATES, n_items)
    for k in range(burst):
        sim.apply_update(k % n_nodes, items[k], Put(f"b{k}".encode()))
    return sim


def run_quiescent_config(
    *,
    n_nodes: int = QUIESCENT_NODES,
    n_items: int = QUIESCENT_ITEMS,
    protocol: str = "dbvv",
    seed: int = 7,
    wire: bool = False,
    fastpath: bool = True,
    timed_rounds: int | None = None,
) -> dict[str, Any]:
    """One arm of the quiescent-heavy configuration.

    Burst, converge (timed as its own phase), a short warm-up window
    (the fast path needs one observed exchange per pair — one round
    trip of the ring — before stamps replay), then ``timed_rounds`` of
    pure quiescence.  The quiescent figure is the steady state of every
    long staleness experiment; the warm-up is excluded from it the same
    way a cache benchmark excludes its first pass.
    """
    timed_rounds = (
        active_quiescent_rounds() if timed_rounds is None else timed_rounds
    )
    sim = _build_quiescent_sim(
        n_nodes=n_nodes, n_items=n_items, protocol=protocol,
        seed=seed, wire=wire, fastpath=fastpath,
    )

    def tick() -> None:
        sim.run_round()
        sim.converged()
        sim.ground_truth.observe(float(sim.round_no), sim.nodes)

    t0 = time.perf_counter()
    converge_rounds = 0
    while not sim.converged():
        tick()
        converge_rounds += 1
        if converge_rounds > 10 * n_nodes:
            raise RuntimeError("quiescent config failed to converge")
    converge_s = time.perf_counter() - t0

    for _ in range(QUIESCENT_WARM_ROUNDS):
        tick()

    skips_before = sim.total_counters.fastpath_skips
    t0 = time.perf_counter()
    for _ in range(timed_rounds):
        tick()
    quiescent_s = time.perf_counter() - t0
    counters = sim.total_counters
    return {
        "wire": wire,
        "fastpath": fastpath,
        "phases": {
            "converge": {
                "rounds": converge_rounds,
                "per_round_ms": round(converge_s / converge_rounds * 1e3, 4)
                if converge_rounds
                else 0.0,
            },
            "quiescent": {
                "rounds": timed_rounds,
                "per_round_ms": round(quiescent_s / timed_rounds * 1e3, 4),
            },
        },
        "quiescent_rounds_per_sec": round(timed_rounds / quiescent_s, 2),
        "fastpath_skips_in_timed_window": (
            counters.fastpath_skips - skips_before
        ),
        "fastpath_skips_total": counters.fastpath_skips,
    }


def run_quiescent_suite(*, protocol: str = "dbvv", seed: int = 7) -> dict[str, Any]:
    """The quiescent-heavy configuration, fast path on vs off, in both
    byte-accounting modes; the ``quiescent_skip_speedup`` figures are
    what the issue's ≥10x quiescent-phase target refers to."""
    arms: dict[str, dict[str, Any]] = {}
    for wire in (False, True):
        mode = "wire" if wire else "modelled"
        on = run_quiescent_config(
            protocol=protocol, seed=seed, wire=wire, fastpath=True
        )
        off = run_quiescent_config(
            protocol=protocol, seed=seed, wire=wire, fastpath=False
        )
        arms[mode] = {
            "fastpath_on": on,
            "fastpath_off": off,
            "quiescent_skip_speedup": round(
                off["phases"]["quiescent"]["per_round_ms"]
                / on["phases"]["quiescent"]["per_round_ms"],
                2,
            ),
        }
    return {
        "n_nodes": QUIESCENT_NODES,
        "n_items": QUIESCENT_ITEMS,
        "selector": "ring",
        "warm_rounds": QUIESCENT_WARM_ROUNDS,
        "timed_rounds": active_quiescent_rounds(),
        "arms": arms,
    }


def profile_quiescent(top: int = 25) -> None:
    """``--profile``: cProfile the fast-path quiescent round loop and
    print the top functions by internal time."""
    import cProfile
    import io
    import pstats

    sim = _build_quiescent_sim(
        n_nodes=QUIESCENT_NODES, n_items=QUIESCENT_ITEMS,
        protocol="dbvv", seed=7, wire=False, fastpath=True,
    )
    while not sim.converged():
        sim.run_round()
    for _ in range(QUIESCENT_WARM_ROUNDS):
        sim.run_round()
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(active_quiescent_rounds()):
        sim.run_round()
        sim.converged()
        sim.ground_truth.observe(float(sim.round_no), sim.nodes)
    profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("tottime").print_stats(top)
    print(buffer.getvalue())


def write_report(report: dict[str, Any], path: Path | None = None) -> Path:
    path = path or Path(__file__).resolve().parent.parent / REPORT_NAME
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:
    if "--profile" in sys.argv[1:]:
        profile_quiescent()
        return
    report = run_grid()
    path = write_report(report)
    for cfg in report["configs"]:
        inc = cfg["incremental"]
        print(
            f"n={cfg['n_nodes']:4d} N={cfg['n_items']:5d}  "
            f"incremental={inc['per_round_ms']:8.3f} ms/round  "
            f"(converge {inc['phases']['converge']['per_round_ms']:.3f} / "
            f"steady {inc['phases']['steady_state']['per_round_ms']:.3f})  "
            f"legacy={cfg['legacy']['per_round_ms']:8.3f} ms/round  "
            f"speedup={cfg['round_throughput_speedup']:5.1f}x"
        )
    for mode, arm in report["quiescent"]["arms"].items():
        on = arm["fastpath_on"]["phases"]["quiescent"]["per_round_ms"]
        off = arm["fastpath_off"]["phases"]["quiescent"]["per_round_ms"]
        print(
            f"quiescent n=128 [{mode}]  on={on:.3f} ms/round  "
            f"off={off:.3f} ms/round  skip speedup="
            f"{arm['quiescent_skip_speedup']:.1f}x"
        )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
