"""E2 bench — propagation cost O(m), independent of N.

Times one full propagation session at fixed m across database sizes
(dbvv must stay flat as N grows 64x) and regenerates both E2 tables.
"""

import pytest

from repro.experiments import e2_propagation_cost as e2
from repro.experiments.common import fresh_pair, make_items
from repro.substrate.operations import Put

FIXED_M = 32


def timed_session(benchmark, protocol: str, n_items: int, m: int):
    items = make_items(n_items)
    payload = b"x" * 32

    def setup():
        pair = fresh_pair(protocol, items)
        for item in items[:m]:
            pair.source.user_update(item, Put(payload))
        return (pair,), {}

    def session(pair):
        pair.sync()

    benchmark.pedantic(session, setup=setup, rounds=20)


@pytest.mark.parametrize("n_items", [500, 32_000])
def test_bench_dbvv_session_vs_n(benchmark, n_items):
    timed_session(benchmark, "dbvv", n_items, FIXED_M)


@pytest.mark.parametrize("n_items", [500, 32_000])
def test_bench_per_item_session_vs_n(benchmark, n_items):
    timed_session(benchmark, "per-item-vv", n_items, FIXED_M)


@pytest.mark.parametrize("m", [8, 512])
def test_bench_dbvv_session_vs_m(benchmark, m):
    timed_session(benchmark, "dbvv", 4_000, m)


def test_regenerate_e2_tables(benchmark):
    rows_n = benchmark.pedantic(e2.run_sweep_n, rounds=1, iterations=1)
    e2.report(rows_n, "E2a — session cost vs database size N").print()
    rows_m = e2.run_sweep_m()
    e2.report(rows_m, "E2b — session cost vs items propagated m").print()

    dbvv_by_n = {r.n_items: r.work for r in rows_n if r.protocol == "dbvv"}
    assert len(set(dbvv_by_n.values())) == 1, "dbvv flat in N"
    dbvv_by_m = {r.m_updated: r.work for r in rows_m if r.protocol == "dbvv"}
    ms = sorted(dbvv_by_m)
    assert dbvv_by_m[ms[-1]] > dbvv_by_m[ms[0]], "dbvv grows with m"
    per_item_by_n = {r.n_items: r.work for r in rows_n if r.protocol == "per-item-vv"}
    ns = sorted(per_item_by_n)
    assert per_item_by_n[ns[-1]] >= 10 * per_item_by_n[ns[0]], "per-item linear in N"
