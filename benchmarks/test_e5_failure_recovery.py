"""E5 bench — staleness after a mid-push originator crash.

Regenerates the E5 table and times one full arm of each protocol (the
simulation itself is the artifact being measured here; absolute times
are secondary to the staleness rounds in the table).
"""

from repro.experiments import e5_failure_recovery as e5


def test_bench_oracle_arm(benchmark):
    benchmark(lambda: e5.run_oracle_arm(repair_round=15, max_rounds=20))


def test_bench_dbvv_arm(benchmark):
    benchmark(lambda: e5.run_dbvv_arm(repair_round=15, max_rounds=20))


def test_regenerate_e5_table(benchmark):
    results = benchmark.pedantic(e5.run, rounds=1, iterations=1)
    e5.report(results).print()
    oracle = next(r for r in results if r.protocol == "oracle-push")
    dbvv = next(r for r in results if r.protocol == "dbvv")
    # The paper's claim: Oracle staleness is coupled to repair time;
    # epidemic staleness to the propagation schedule.
    assert oracle.survivors_current_round == oracle.repair_round
    assert dbvv.survivors_current_round < oracle.repair_round / 2
