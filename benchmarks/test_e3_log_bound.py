"""E3 bench — AddLogRecord is O(1) and the log stays bounded.

Times AddLogRecord against log components of very different sizes (the
per-record cost must not grow) and against the append-only ablation;
regenerates the E3 growth table.
"""

import pytest

from repro.core.log_vector import LogComponent
from repro.experiments import e3_log_bound as e3
from repro.experiments.ablations import AppendOnlyLog

BATCH = 1_000


def prefill(log, items: int, updates: int):
    for seqno in range(1, updates + 1):
        log.add(f"hot-{seqno % items:05d}", seqno)
    return updates


@pytest.mark.parametrize("prefill_updates", [1_000, 100_000])
def test_bench_add_log_record(benchmark, prefill_updates):
    """O(1) add: the same batch costs the same on a 100x bigger history."""
    log = LogComponent(origin=0)
    next_seq = prefill(log, items=50, updates=prefill_updates)
    state = {"seq": next_seq}

    def add_batch():
        seq = state["seq"]
        for k in range(BATCH):
            seq += 1
            log.add(f"hot-{seq % 50:05d}", seq)
        state["seq"] = seq

    benchmark(add_batch)


def test_bench_bounded_tail_extraction(benchmark):
    """Extracting a full tail from the bounded log touches <= one
    record per hot item no matter how long the update history was."""
    log = LogComponent(origin=0)
    prefill(log, items=50, updates=100_000)
    benchmark(lambda: log.tail_after(0))


def test_bench_unbounded_tail_extraction(benchmark):
    """The ablation pays for the whole history."""
    log = AppendOnlyLog(origin=0)
    prefill(log, items=50, updates=100_000)
    benchmark(lambda: log.tail_after(0))


def test_regenerate_e3_table(benchmark):
    rows = benchmark.pedantic(e3.run, rounds=1, iterations=1)
    e3.report(rows).print()
    assert all(row.bounded_size == row.hot_items for row in rows)
    assert rows[-1].unbounded_size == rows[-1].updates
