"""Laptop-scale stress: the headline claim at six-figure database sizes.

The paper's pitch is that the protocol removes the scalability wall; a
credible reproduction should demonstrate it at sizes where the wall is
unmistakable.  These benches run single sessions against a 100,000-item
database: the DBVV identical-replica probe stays in microseconds while
per-item anti-entropy grinds through 100k vectors, and a propagation of
50 items out of 100k costs the same as out of 1k.
"""

import pytest

from repro.experiments.common import fresh_pair, make_items
from repro.substrate.operations import Put

BIG_N = 100_000
SMALL_N = 1_000
M = 50


@pytest.fixture(scope="module")
def big_items():
    return make_items(BIG_N)


def converged_pair(protocol, items):
    pair = fresh_pair(protocol, items)
    for item in items[:M]:
        pair.source.user_update(item, Put(b"seed"))
    pair.sync()
    pair.reset()
    return pair


def test_bench_dbvv_identical_probe_100k(benchmark, big_items):
    pair = converged_pair("dbvv", big_items)
    def probe():
        stats = pair.sync()
        assert stats.identical
    benchmark(probe)


def test_bench_per_item_identical_probe_100k(benchmark, big_items):
    pair = converged_pair("per-item-vv", big_items)
    benchmark(lambda: pair.sync())


@pytest.mark.parametrize("n_items", [SMALL_N, BIG_N])
def test_bench_dbvv_propagation_at_scale(benchmark, n_items, big_items):
    items = big_items if n_items == BIG_N else make_items(n_items)
    payload = b"x" * 64

    def setup():
        pair = fresh_pair("dbvv", items)
        for item in items[:M]:
            pair.source.user_update(item, Put(payload))
        return (pair,), {}

    benchmark.pedantic(lambda pair: pair.sync(), setup=setup, rounds=5)


class TestRoundLoopScale:
    """Driver for the round-loop scale harness (scale_harness.py).

    Runs both tracking modes across the n × N grid and emits
    ``BENCH_scale.json`` at the repo root — the checked-in evidence for
    the de-quadratized round loop.  ``REPRO_SCALE_SMOKE=1`` selects the
    CI-sized grid; the speedup floor is only asserted on the full grid
    (smoke cells are too small for the overhead to dominate).
    """

    def test_round_loop_grid_emits_report(self):
        import scale_harness

        report = scale_harness.run_grid()
        path = scale_harness.write_report(report)
        assert path.exists()
        for cfg in report["configs"]:
            inc, leg = cfg["incremental"], cfg["legacy"]
            assert inc["rounds_per_sec"] > 0 and leg["rounds_per_sec"] > 0
            # Both arms ran the identical deterministic simulation:
            # same convergence round, same session traffic.
            assert inc["converge_round"] == leg["converge_round"]
            assert inc["messages_sent"] == leg["messages_sent"]
            # Incremental re-examines a frontier; legacy never does.
            assert leg["staleness_reexaminations"] == 0
            assert 0 < inc["staleness_reexaminations"] < (
                report["rounds_per_config"] * cfg["n_nodes"] * cfg["n_items"]
            )
        if not report["smoke"]:
            headline = next(
                c for c in report["configs"]
                if (c["n_nodes"], c["n_items"]) == (128, 1000)
            )
            # Measured ~8x on the reference machine; 3x leaves margin
            # for slow CI runners while still catching a regression to
            # the quadratic loop.
            assert headline["round_throughput_speedup"] >= 3.0


def test_scale_correctness_100k(benchmark, big_items):
    """One timed round, but the point is correctness: the full m=50
    session at N=100k moves exactly the right items with flat
    operation counts."""
    pair = fresh_pair("dbvv", big_items)
    for item in big_items[:M]:
        pair.source.user_update(item, Put(b"v"))
    pair.reset()
    stats = benchmark.pedantic(pair.sync, rounds=1, iterations=1)
    assert stats.items_transferred == M
    # The cost model: work counters track m, not N.
    assert pair.session_work() < 20 * M
    assert pair.recipient_counters.items_scanned == 0
    assert pair.source_counters.items_scanned == M
