"""Micro-benchmarks for the core data structures.

The asymptotic claims live in E1–E3; these pin the *constants* — the
per-operation costs the paper's "constant time" statements refer to —
so a regression that, say, turns the version-vector comparison into
something allocating per call shows up here.
"""

import pytest

from repro.core.auxiliary import AuxiliaryLog
from repro.core.dbvv import DatabaseVersionVector
from repro.core.version_vector import VersionVector, merge
from repro.substrate.operations import Append


@pytest.mark.parametrize("n_nodes", [4, 64])
def test_bench_vv_compare(benchmark, n_nodes):
    a = VersionVector.from_counts(range(n_nodes))
    b = VersionVector.from_counts(range(1, n_nodes + 1))
    benchmark(lambda: a.compare(b))


@pytest.mark.parametrize("n_nodes", [4, 64])
def test_bench_vv_dominates_or_equal(benchmark, n_nodes):
    """The DBVV gate of SendPropagation — the single comparison that
    replaces a whole-database scan."""
    a = VersionVector.from_counts([5] * n_nodes)
    b = VersionVector.from_counts([5] * n_nodes)
    benchmark(lambda: a.dominates_or_equal(b))


def test_bench_vv_merge(benchmark):
    a = VersionVector.from_counts(range(16))
    b = VersionVector.from_counts(range(16, 0, -1))
    benchmark(lambda: merge(a, b))


def test_bench_dbvv_absorb_item_copy(benchmark):
    """Rule 3, charged per adopted item during AcceptPropagation."""
    dbvv = DatabaseVersionVector(8)
    old = VersionVector.zero(8)
    new = VersionVector.from_counts([1, 0, 2, 0, 0, 1, 0, 0])

    def absorb():
        dbvv.absorb_item_copy(old, new)

    benchmark(absorb)


def test_bench_aux_log_append_pop(benchmark):
    """The out-of-bound hot path: record a deferred update, replay it."""
    log = AuxiliaryLog()
    pre = VersionVector.from_counts([3, 1])
    op = Append(b".")

    def cycle():
        log.append("x", pre, op)
        log.pop_earliest("x")

    benchmark(cycle)


def test_bench_aux_log_earliest(benchmark):
    log = AuxiliaryLog()
    pre = VersionVector.from_counts([3, 1])
    for k in range(1_000):
        log.append(f"item-{k % 10}", pre, Append(b"."))
    benchmark(lambda: log.earliest("item-3"))
