"""E4 bench — the Lotus comparison: redundant sessions and the
conflict bug.  Regenerates both E4 tables and times the redundant
session both ways.
"""

from repro.experiments import e4_lotus_comparison as e4
from repro.experiments.e1_identical_detection import run_triangle_session


def test_bench_lotus_redundant_session(benchmark):
    benchmark(lambda: run_triangle_session("lotus", 5_000, 10))


def test_bench_dbvv_same_session(benchmark):
    benchmark(lambda: run_triangle_session("dbvv", 5_000, 10))


def test_regenerate_e4a_table(benchmark):
    rows = benchmark.pedantic(e4.run_redundancy, rounds=1, iterations=1)
    e4.report_redundancy(rows).print()
    lotus = [r for r in rows if r.protocol == "lotus"]
    dbvv = [r for r in rows if r.protocol == "dbvv"]
    assert all(not r.detected_identical for r in lotus)
    assert all(r.detected_identical for r in dbvv)
    assert lotus[-1].work > 100 * dbvv[-1].work


def test_regenerate_e4b_table(benchmark):
    results = benchmark.pedantic(
        lambda: [
            e4.run_conflict_scenario("lotus"),
            e4.run_conflict_scenario("dbvv"),
        ],
        rounds=1, iterations=1,
    )
    e4.report_conflicts(results).print()
    lotus, dbvv = results
    assert not lotus.j_update_survived and not lotus.conflict_reported
    assert dbvv.j_update_survived and dbvv.conflict_reported
