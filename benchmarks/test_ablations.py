"""Ablation benches for the design choices DESIGN.md section 5 calls out.

* IsSelected flags vs a hash set for building the item set S: both
  O(m) (the paper presents the flag as the way to avoid any scan of the
  database, not as an asymptotic win) — measured side by side.
* One-record-per-item rule: covered by E3's bench
  (`test_e3_log_bound.py`); here we add the end-to-end effect on a
  propagation session.
* Operation shipping vs whole-value copying (paper section 2's two
  propagation methods): bytes per session when updates are small
  patches on large items.
"""

import pytest

from repro.core.delta import DeltaEpidemicNode
from repro.core.log_vector import LogComponent
from repro.core.node import EpidemicNode
from repro.experiments.ablations import build_item_set_with_set
from repro.experiments.common import make_items
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.substrate.operations import BytePatch, Put

M_RECORDS = 2_000


def build_tail(m: int):
    log = LogComponent(origin=0)
    for seqno in range(1, m + 1):
        log.add(f"item-{seqno % (m // 2):05d}", seqno)
    return log.tail_after(0)


def test_bench_dedup_with_flags(benchmark):
    """The paper's IsSelected mechanism, isolated: flag items while
    walking the records, then reset the flags of the selected set."""
    tail = build_tail(M_RECORDS)

    class _Flagged:
        __slots__ = ("is_selected",)

        def __init__(self):
            self.is_selected = False

    flags = {record.item: _Flagged() for record in tail}

    def flag_dedup():
        selected = []
        for record in tail:
            entry = flags[record.item]
            if not entry.is_selected:
                entry.is_selected = True
                selected.append(record.item)
        for item in selected:
            flags[item].is_selected = False
        return selected

    benchmark(flag_dedup)


def test_bench_dedup_with_set(benchmark):
    """The ablation: a hash set instead of the flags."""
    tail = build_tail(M_RECORDS)
    benchmark(lambda: build_item_set_with_set(tail))


@pytest.mark.parametrize("mode", ["whole-value", "operation-shipping"])
def test_bench_patch_propagation_modes(benchmark, mode):
    """10 small patches on a 64 KiB item: whole-value copying ships the
    64 KiB; operation shipping ships ~10 patches."""
    items = make_items(50)
    big = b"x" * 65_536
    cls = EpidemicNode if mode == "whole-value" else DeltaEpidemicNode

    def setup():
        source = cls(0, 2, items)
        recipient = cls(1, 2, items)
        source.update(items[0], Put(big))
        recipient.pull_from(source)
        for k in range(10):
            source.update(items[0], BytePatch(k * 100, b"patched!"))
        return (recipient, source), {}

    def session(recipient, source):
        recipient.pull_from(source)

    benchmark.pedantic(session, setup=setup, rounds=10)


def test_regenerate_ablation_table(benchmark):
    """Bytes on the wire for the patch workload, both modes."""

    def run():
        items = make_items(50)
        big = b"x" * 65_536
        rows = []
        for mode, cls in (
            ("whole-value", EpidemicNode),
            ("operation-shipping", DeltaEpidemicNode),
        ):
            traffic = OverheadCounters()
            transport = DirectTransport(traffic)
            source = cls(0, 2, items)
            recipient = cls(1, 2, items)
            source.update(items[0], Put(big))
            # Baseline transfer of the big value (both modes pay this).
            request = transport.deliver(1, 0, recipient.make_propagation_request())
            reply = transport.deliver(0, 1, source.send_propagation(request))
            recipient.accept_propagation(reply)
            traffic.reset()
            for k in range(10):
                source.update(items[0], BytePatch(k * 100, b"patched!"))
            request = transport.deliver(1, 0, recipient.make_propagation_request())
            reply = transport.deliver(0, 1, source.send_propagation(request))
            recipient.accept_propagation(reply)
            assert recipient.read(items[0]) == source.read(items[0])
            rows.append((mode, traffic.bytes_sent))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation — propagating 10 small patches to a 64 KiB item "
        "(paper section 2's two propagation methods)",
        ["mode", "bytes on wire"],
    )
    for mode, bytes_sent in rows:
        table.add_row([mode, bytes_sent])
    table.print()
    by_mode = dict(rows)
    assert by_mode["operation-shipping"] < by_mode["whole-value"] / 50
