"""Benchmark-suite configuration.

Each benchmark module pairs pytest-benchmark timings of the relevant
hot path with a table-regeneration test that prints the experiment's
rows (run ``pytest benchmarks/ --benchmark-only -s`` to see the tables;
they are also what EXPERIMENTS.md records).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
