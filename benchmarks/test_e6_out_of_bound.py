"""E6 bench — out-of-bound copying and IntraNodePropagation replay.

Times the OOB fetch (flat in N) and the replay (linear in deferred
updates); regenerates the E6 table.
"""

import pytest

from repro.core.node import EpidemicNode
from repro.experiments import e6_out_of_bound as e6
from repro.experiments.common import make_items
from repro.substrate.operations import Append, Put


@pytest.mark.parametrize("n_items", [100, 10_000])
def test_bench_oob_fetch(benchmark, n_items):
    items = make_items(n_items)
    source = EpidemicNode(0, 2, items)
    node = EpidemicNode(1, 2, items)
    source.update(items[0], Put(b"base"))

    def fetch():
        # Re-fetching an already-current copy still exercises the full
        # compare path; state stays stable across iterations.
        node.copy_out_of_bound(items[0], source)

    benchmark(fetch)


@pytest.mark.parametrize("deferred", [8, 256])
def test_bench_intra_node_replay(benchmark, deferred):
    items = make_items(200)

    def setup():
        source = EpidemicNode(0, 2, items)
        node = EpidemicNode(1, 2, items)
        source.update(items[0], Put(b"base"))
        node.copy_out_of_bound(items[0], source)
        for k in range(deferred):
            node.update(items[0], Append(b"."))
        return (node, source), {}

    def replay(node, source):
        node.pull_from(source)

    benchmark.pedantic(replay, setup=setup, rounds=20)


def test_regenerate_e6_table(benchmark):
    rows = benchmark.pedantic(e6.run_replay_sweep, rounds=1, iterations=1)
    freshness = e6.run_freshness()
    e6.report(rows, freshness).print()
    assert all(row.values_match and row.aux_discarded for row in rows)
    assert freshness.with_oob_rounds == 0
    assert freshness.without_oob_rounds == 4
