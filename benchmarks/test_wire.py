"""Codec microbench driver: emits ``BENCH_wire.json`` and enforces the
wire-format acceptance floors.

The timed fixtures give pytest-benchmark numbers for the inner codec
loops; ``TestWireReport`` runs the harness (wire_harness.py) end to end
and asserts the two headline figures — ≥25% delta-VV savings on an
E8-style quiescent session at n=32, and ≥50 MB/s encode+decode
round-trip on propagating session frames.  The throughput floor is only
asserted outside smoke mode (CI smoke runs too few frames to time
reliably); the savings figure is deterministic and always checked.
"""

import pytest

from repro.core.messages import PropagationRequest
from repro.core.version_vector import VersionVector
from repro.wire import WireCodec


@pytest.fixture(scope="module")
def session_frame_messages():
    import wire_harness

    return wire_harness._reply_frame_messages()


def test_bench_encode_session_frames(benchmark, session_frame_messages):
    codec = WireCodec(delta_vv=False)

    def encode_all():
        for message in session_frame_messages:
            codec.encode(0, 1, message)

    benchmark(encode_all)


def test_bench_roundtrip_session_frames(benchmark, session_frame_messages):
    codec = WireCodec()

    def roundtrip_all():
        for message in session_frame_messages:
            codec.decode(0, 1, codec.encode(0, 1, message))

    benchmark(roundtrip_all)


def test_bench_delta_request_quiescent(benchmark):
    codec = WireCodec()
    message = PropagationRequest(1, VersionVector.from_counts(list(range(32))))
    codec.decode(0, 1, codec.encode(0, 1, message))  # prime both caches
    benchmark(lambda: codec.decode(0, 1, codec.encode(0, 1, message)))


class TestWireReport:
    def test_wire_harness_emits_report(self):
        import wire_harness

        report = wire_harness.run_all()
        path = wire_harness.write_report(report)
        assert path.exists()

        session = report["session_bytes"]
        assert session["n_nodes"] == 32
        # The acceptance floor: delta-compressed vectors save >= 25% of
        # quiescent-session bytes.  (Measured ~75%: the request's
        # 32-component vector collapses to a 2-byte delta form.)
        assert session["quiescent"]["savings_pct"] >= 25.0
        assert session["propagating"]["savings_pct"] >= 0.0
        # Session 0 ships full vectors in both arms.
        assert session["quiescent"]["first_session_bytes"] > (
            session["quiescent"]["delta_vv_bytes_per_session"]
        )

        sim = report["simulation"]
        # Encoded mode counts frame bytes; the same deterministic run in
        # default mode charges the model.  Both arms exist and the
        # encoded arm records its own drift.
        assert sim["encoded_bytes_sent"] > 0
        assert sim["modelled_bytes_sent"] == sim["default_mode_bytes_sent"]
        # Varints + delta vectors undercut the word-per-field model.
        assert sim["encoded_bytes_sent"] < sim["modelled_bytes_sent"]

        throughput = report["throughput"]
        assert throughput["small_frames_per_sec"] > 0
        if not report["smoke"]:
            # Measured ~200+ MB/s; 50 leaves margin for slow runners
            # while still catching an accidentally quadratic encoder.
            assert throughput["session_frames"]["roundtrip_mb_s"] >= 50.0
