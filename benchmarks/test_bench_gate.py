"""The bench gate itself is regression-tested: a perturbed baseline
must fail the comparison, and the checked-in baselines must stay in
lockstep with the metrics the harnesses emit."""

import json
from pathlib import Path

import bench_gate
from bench_gate import (
    BASELINE_DIR,
    collect_scale_metrics,
    collect_wire_metrics,
    compare,
    metric_kind,
)

TOLERANCE = 0.30


def _load(harness):
    payload = json.loads((BASELINE_DIR / f"{harness}_smoke.json").read_text())
    return payload["metrics"]


class TestMetricKinds:
    def test_every_baselined_metric_has_a_kind(self):
        for harness in ("scale", "wire"):
            for name in _load(harness):
                assert metric_kind(name) in ("exact", "min", "max"), name

    def test_unknown_metric_name_is_a_hard_error(self):
        try:
            metric_kind("some.new.metric")
        except KeyError:
            pass
        else:
            raise AssertionError("unknown metric classified silently")


class TestCompare:
    def test_identical_metrics_pass(self):
        baseline = _load("scale")
        assert compare(dict(baseline), baseline, TOLERANCE) == []

    def test_deliberate_slowdown_fails(self):
        # The acceptance scenario from the issue: slow a timed metric
        # past the band and the gate must trip.
        baseline = _load("scale")
        slowed = dict(baseline)
        name = "quiescent.modelled.on.per_round_ms"
        slowed[name] = baseline[name] * 2.0
        violations = compare(slowed, baseline, TOLERANCE)
        assert [v["metric"] for v in violations] == [name]
        assert violations[0]["kind"] == "max"

    def test_throughput_regression_fails(self):
        baseline = _load("wire")
        slowed = dict(baseline)
        name = "throughput.session_frames.roundtrip_mb_s"
        slowed[name] = baseline[name] * 0.5
        violations = compare(slowed, baseline, TOLERANCE)
        assert [v["metric"] for v in violations] == [name]
        assert violations[0]["kind"] == "min"

    def test_within_band_timing_noise_passes(self):
        baseline = _load("scale")
        noisy = {
            name: value * 1.25 if metric_kind(name) == "max" else value
            for name, value in baseline.items()
        }
        assert compare(noisy, baseline, TOLERANCE) == []

    def test_deterministic_counter_drift_fails_regardless_of_band(self):
        baseline = _load("scale")
        drifted = dict(baseline)
        drifted["n8_N100.incremental.messages_sent"] += 2
        violations = compare(drifted, baseline, TOLERANCE)
        assert [v["metric"] for v in violations] == [
            "n8_N100.incremental.messages_sent"
        ]
        assert violations[0]["kind"] == "exact"

    def test_missing_and_unbaselined_metrics_fail(self):
        baseline = _load("wire")
        current = dict(baseline)
        current.pop("simulation.messages_sent")
        current["brand.new.messages_sent"] = 1
        kinds = {v["metric"]: v["kind"] for v in compare(current, baseline, TOLERANCE)}
        assert kinds == {
            "simulation.messages_sent": "missing",
            "brand.new.messages_sent": "unbaselined",
        }


class TestBaselinesMatchHarnessShape:
    """The baselines gate what the harnesses actually emit: extraction
    over a canned report shaped like the current harness output must
    produce exactly the baselined metric names."""

    def test_scale_metric_names_match_baseline(self):
        import scale_harness

        report = {
            "configs": [
                {
                    "n_nodes": n,
                    "n_items": items,
                    "round_throughput_speedup": 1.0,
                    "incremental": {
                        "messages_sent": 0,
                        "converge_round": 1,
                        "per_round_ms": 1.0,
                    },
                    "legacy": {"staleness_reexaminations": 0},
                }
                for n, items in scale_harness.SMOKE_GRID
            ],
            "quiescent": {
                "arms": {
                    mode: {
                        "quiescent_skip_speedup": 1.0,
                        "fastpath_on": {
                            "fastpath_skips_in_timed_window": 0,
                            "phases": {"quiescent": {"per_round_ms": 1.0}},
                        },
                    }
                    for mode in ("modelled", "wire")
                }
            },
        }
        assert set(collect_scale_metrics(report)) == set(_load("scale"))

    def test_wire_metric_names_match_baseline(self):
        report = {
            "throughput": {
                "session_frames": {"roundtrip_mb_s": 1.0},
                "session_frames_full_vv": {"roundtrip_mb_s": 1.0},
                "small_frames_per_sec": 1,
            },
            "session_bytes": {
                arm: {
                    "delta_vv_bytes_per_session": 1.0,
                    "full_vv_bytes_per_session": 1.0,
                }
                for arm in ("quiescent", "propagating")
            },
            "simulation": {
                "messages": 1,
                "encoded_bytes_sent": 1,
                "modelled_bytes_sent": 1,
            },
        }
        assert set(collect_wire_metrics(report)) == set(_load("wire"))


class TestUpdateRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_gate, "BASELINE_DIR", tmp_path)
        metrics = {"x.messages_sent": 3, "y.per_round_ms": 1.5}
        path = bench_gate.write_baseline("scale", metrics)
        assert path.parent == tmp_path
        assert bench_gate.load_baseline("scale") == metrics
        payload = json.loads(Path(path).read_text())
        assert payload["regenerate_with"].endswith("--update")
