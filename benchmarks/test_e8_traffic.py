"""E8 bench — end-to-end traffic and work across all five protocols.

Regenerates the E8 totals table from the shared trace and times the
full steady-state run for the two headline protocols.
"""

from repro.experiments import e8_traffic as e8


def test_bench_dbvv_steady_state(benchmark):
    benchmark(lambda: e8.run(protocols=("dbvv",), n_items=200, updates=300))


def test_bench_per_item_steady_state(benchmark):
    benchmark(lambda: e8.run(protocols=("per-item-vv",), n_items=200, updates=300))


def test_regenerate_e8_table(benchmark):
    rows = benchmark.pedantic(e8.run, rounds=1, iterations=1)
    e8.report(rows).print()
    by_name = {row.protocol: row for row in rows}
    assert all(row.converged for row in rows)
    # The paper's economics: dbvv's comparison/scan work is far below
    # the per-item and Lotus baselines at this size...
    assert by_name["dbvv"].work < by_name["per-item-vv"].work / 3
    assert by_name["dbvv"].work < by_name["lotus"].work
    # ...and its metadata traffic beats per-item's N-vector shipments.
    assert by_name["dbvv"].bytes_sent < by_name["per-item-vv"].bytes_sent
