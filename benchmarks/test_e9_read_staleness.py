"""E9 bench — read staleness vs the anti-entropy schedule.

Regenerates the E9 table and times one arm of the event-driven
simulation (the measured artifact is the staleness table; the timing
documents the harness's own cost).
"""

from repro.experiments import e9_read_staleness as e9


def test_bench_event_driven_arm(benchmark):
    benchmark(lambda: e9.run_arm(5.0, oob_hot_reads=False, n_events=300))


def test_regenerate_e9_table(benchmark):
    rows = benchmark.pedantic(e9.run, rounds=1, iterations=1)
    e9.report(rows).print()
    plain = {row.period: row for row in rows if not row.oob_hot_reads}
    oob = {row.period: row for row in rows if row.oob_hot_reads}
    periods = sorted(plain)
    # Staleness rises with the period...
    assert plain[periods[-1]].stale_fraction > plain[periods[0]].stale_fraction
    # ...and OOB keeps hot reads fresh regardless.
    assert all(row.stale_hot_fraction == 0.0 for row in oob.values())
