"""Shape assertions for experiments E3 (log bound) and E4 (Lotus)."""

from repro.experiments.ablations import AppendOnlyLog, build_item_set_with_set
from repro.experiments.e3_log_bound import run as run_e3
from repro.experiments.e4_lotus_comparison import (
    run_conflict_scenario,
    run_redundancy,
)


class TestE3LogBound:
    def test_bounded_log_plateaus_at_hot_set_size(self):
        rows = run_e3(update_counts=(100, 1_000, 10_000), hot_items=20)
        assert all(row.bounded_size == 20 for row in rows)

    def test_unbounded_log_grows_with_updates(self):
        rows = run_e3(update_counts=(100, 1_000, 10_000), hot_items=20)
        assert [row.unbounded_size for row in rows] == [100, 1_000, 10_000]

    def test_tail_cost_tracks_log_size(self):
        rows = run_e3(update_counts=(100, 10_000), hot_items=20)
        assert all(row.bounded_tail_records == 20 for row in rows)
        assert rows[1].unbounded_tail_records == 10_000

    def test_evictions_account_for_the_difference(self):
        (row,) = run_e3(update_counts=(1_000,), hot_items=20)
        assert row.bounded_evictions == 1_000 - 20


class TestAblations:
    def test_append_only_log_rejects_out_of_order(self):
        import pytest

        log = AppendOnlyLog(origin=0)
        log.add("x", 5)
        with pytest.raises(ValueError):
            log.add("y", 5)

    def test_set_dedup_matches_flag_dedup_semantics(self):
        log = AppendOnlyLog(origin=0)
        for seqno, item in enumerate(["a", "b", "a", "c", "b"], start=1):
            log.add(item, seqno)
        tail = log.tail_after(0)
        assert build_item_set_with_set(tail) == ["a", "b", "c"]


class TestE4Lotus:
    def test_redundancy_rows_cover_both_protocols(self):
        rows = run_redundancy(sizes=(100, 500), updates=5)
        protocols = {row.protocol for row in rows}
        assert protocols == {"dbvv", "lotus"}

    def test_dbvv_detects_identical_lotus_does_not(self):
        rows = run_redundancy(sizes=(200,), updates=5)
        by_name = {row.protocol: row for row in rows}
        assert by_name["dbvv"].detected_identical
        assert not by_name["lotus"].detected_identical
        assert by_name["lotus"].work > 20 * by_name["dbvv"].work

    def test_conflict_scenario_matches_paper(self):
        """Section 8.1's example, end to end."""
        lotus = run_conflict_scenario("lotus")
        dbvv = run_conflict_scenario("dbvv")
        # Lotus: silent lost update.
        assert not lotus.j_update_survived
        assert not lotus.conflict_reported
        assert lotus.value_at_j == b"i-second"
        # DBVV: update preserved, conflict reported.
        assert dbvv.j_update_survived
        assert dbvv.conflict_reported

    def test_unknown_protocol_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            run_conflict_scenario("oracle-push")
