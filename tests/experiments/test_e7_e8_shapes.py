"""Shape assertions for experiments E7 (convergence/Theorem 5) and E8
(end-to-end traffic)."""

from repro.experiments.e7_convergence import (
    converge_once,
    run_conflict_detection,
)
from repro.experiments.e8_traffic import run as run_e8
from repro.cluster.scheduler import RandomSelector, RingSelector


class TestE7Convergence:
    def test_random_epidemic_converges_sublinearly(self):
        """Classic epidemic behaviour: rounds grow far slower than n."""
        rounds_8 = converge_once(8, RandomSelector(), seed=1, updates=60)[0]
        rounds_32 = converge_once(32, RandomSelector(), seed=1, updates=60)[0]
        assert rounds_32 < 4 * rounds_8
        assert rounds_32 < 32  # far below linear

    def test_ring_converges_but_slower_at_scale(self):
        rounds_ring = converge_once(24, RingSelector(), seed=2, updates=60)[0]
        rounds_random = converge_once(24, RandomSelector(), seed=2, updates=60)[0]
        assert rounds_ring >= rounds_random

    def test_conflict_free_runs_report_zero_conflicts(self):
        """Criterion C2 under transitive scheduling (Theorem 5)."""
        for seed in (1, 2, 3):
            _rounds, conflicts = converge_once(6, RandomSelector(), seed=seed)
            assert conflicts == 0

    def test_planted_conflicts_are_all_detected(self):
        """Criterion C1: inconsistency is eventually detected."""
        result = run_conflict_detection(n_nodes=4, n_conflicts=8, seed=3)
        assert result.detected_items == result.planted
        assert result.silently_merged == 0


class TestE8Traffic:
    def test_all_protocols_converge_on_shared_trace(self):
        rows = run_e8(n_items=120, updates=200, updates_per_round=25)
        assert {row.protocol for row in rows} == {
            "dbvv", "dbvv-delta", "per-item-vv", "lotus", "oracle-push",
            "wuu-bernstein", "agrawal-malpani",
        }
        assert all(row.converged for row in rows)
        assert all(row.conflicts == 0 for row in rows)

    def test_dbvv_work_beats_per_item_scan_work(self):
        rows = {r.protocol: r for r in run_e8(n_items=400, updates=300)}
        assert rows["dbvv"].work < rows["per-item-vv"].work / 3

    def test_dbvv_bytes_beat_per_item_metadata(self):
        rows = {r.protocol: r for r in run_e8(n_items=400, updates=300)}
        assert rows["dbvv"].bytes_sent < rows["per-item-vv"].bytes_sent

    def test_epidemic_protocols_ship_items_at_most_once_per_recipient(self):
        """Bundling/no-redundant-shipping: with n-1 recipients, each of
        the u distinct updated items needs at most (n-1) transfers plus
        whatever staleness overlap the pacing causes; DBVV must not
        re-ship wildly."""
        rows = {r.protocol: r for r in run_e8(n_items=120, updates=200,
                                              updates_per_round=25, n_nodes=4)}
        dbvv = rows["dbvv"]
        # Loose upper bound: every shipped item reaches a new recipient.
        assert dbvv.items_shipped <= 200 * 3


class TestE7ExtendedSchedules:
    def test_star_and_chordal_cycle_converge(self):
        """Theorem 5 over additional topologies: hub-and-spoke is
        hub-bottlenecked (~n rounds: the hub pulls one spoke per
        round), a chorded cycle sits between log and linear."""
        from repro.experiments.e7_convergence import (
            extended_selector_families,
            run_convergence,
        )

        rows = run_convergence(
            node_counts=(4, 16), seeds=(1, 2),
            families=extended_selector_families(),
        )
        by_key = {(r.selector, r.n_nodes): r for r in rows}
        assert all(r.conflicts == 0 for r in rows)
        # Star is linear in n (the hub round-robins its spokes).
        assert by_key[("star", 16)].mean_rounds >= 12
        # The chorded cycle beats the star at 16 nodes.
        assert (
            by_key[("chordal-cycle", 16)].mean_rounds
            < by_key[("star", 16)].mean_rounds
        )
