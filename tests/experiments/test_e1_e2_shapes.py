"""Shape assertions for experiments E1 and E2.

These encode the paper's asymptotic claims as testable ratios: flat
means the large-N cost is (nearly) the small-N cost; linear means it
scales with the size ratio.  Sizes are kept modest so the tests are
fast; the benchmarks run the full sweeps.
"""

from repro.experiments.e1_identical_detection import run_triangle_session
from repro.experiments.e2_propagation_cost import run_session


def by_protocol(rows):
    out = {}
    for row in rows:
        out.setdefault(row.protocol, []).append(row)
    return out


class TestE1IdenticalDetection:
    def test_dbvv_work_is_flat_in_n(self):
        small = run_triangle_session("dbvv", 100, updates=10)
        large = run_triangle_session("dbvv", 2_000, updates=10)
        assert small.detected_identical and large.detected_identical
        assert large.work == small.work

    def test_dbvv_traffic_is_flat_in_n(self):
        small = run_triangle_session("dbvv", 100, updates=10)
        large = run_triangle_session("dbvv", 2_000, updates=10)
        assert large.bytes_sent == small.bytes_sent

    def test_per_item_work_is_linear_in_n(self):
        small = run_triangle_session("per-item-vv", 100, updates=10)
        large = run_triangle_session("per-item-vv", 2_000, updates=10)
        assert large.work >= 15 * small.work

    def test_lotus_work_is_linear_in_n(self):
        small = run_triangle_session("lotus", 100, updates=10)
        large = run_triangle_session("lotus", 2_000, updates=10)
        assert not small.detected_identical  # Lotus can't tell (paper 8.1)
        assert large.work >= 10 * small.work

    def test_dbvv_beats_baselines_outright(self):
        n = 1_000
        dbvv = run_triangle_session("dbvv", n, updates=10)
        for baseline in ("per-item-vv", "lotus"):
            other = run_triangle_session(baseline, n, updates=10)
            assert other.work > 50 * dbvv.work


class TestE2PropagationCost:
    def test_dbvv_cost_independent_of_n(self):
        small = run_session("dbvv", 200, 16)
        large = run_session("dbvv", 4_000, 16)
        assert large.work == small.work
        assert large.bytes_sent == small.bytes_sent

    def test_dbvv_cost_linear_in_m(self):
        one = run_session("dbvv", 1_000, 1)
        many = run_session("dbvv", 1_000, 64)
        # Linear with a small constant: cost(64) ≈ 64 * per-item slope.
        slope = (many.work - one.work) / 63
        assert slope < 20
        mid = run_session("dbvv", 1_000, 32)
        predicted = one.work + slope * 31
        assert abs(mid.work - predicted) <= 0.2 * predicted + 5

    def test_baseline_cost_grows_with_n(self):
        for baseline in ("per-item-vv", "lotus"):
            small = run_session(baseline, 200, 16)
            large = run_session(baseline, 4_000, 16)
            assert large.work >= 10 * small.work, baseline

    def test_metadata_constant_per_shipped_item(self):
        few = run_session("dbvv", 1_000, 8)
        more = run_session("dbvv", 1_000, 16)
        per_item = (more.metadata_bytes - few.metadata_bytes) / 8
        even_more = run_session("dbvv", 1_000, 64)
        predicted = few.metadata_bytes + per_item * (64 - 8)
        assert abs(even_more.metadata_bytes - predicted) < 0.05 * predicted + 8

    def test_everyone_ships_exactly_m_items(self):
        for protocol in ("dbvv", "per-item-vv", "lotus", "wuu-bernstein"):
            row = run_session(protocol, 500, 12)
            assert row.items_transferred == 12, protocol
