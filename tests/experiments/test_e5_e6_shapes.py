"""Shape assertions for experiments E5 (failure recovery) and E6
(out-of-bound copying)."""

from repro.cluster.simulation import RetryPolicy
from repro.experiments.e5_failure_recovery import (
    run_dbvv_arm,
    run_interrupted_dbvv_arm,
    run_interrupted_oracle_arm,
    run_oracle_arm,
)
from repro.experiments.e6_out_of_bound import run_episode, run_freshness


class TestE5FailureRecovery:
    def test_oracle_staleness_lasts_until_repair(self):
        result = run_oracle_arm(repair_round=20, max_rounds=30)
        # Survivors become current only at the repair round — never
        # before (no forwarding).
        assert result.survivors_current_round == 20
        assert result.staleness.peak_stale_pairs > 0

    def test_oracle_staleness_scales_with_repair_time(self):
        early = run_oracle_arm(repair_round=10, max_rounds=20)
        late = run_oracle_arm(repair_round=18, max_rounds=25)
        assert early.survivors_current_round == 10
        assert late.survivors_current_round == 18

    def test_dbvv_survivors_recover_before_repair(self):
        result = run_dbvv_arm(repair_round=20, max_rounds=30, seed=11)
        assert result.survivors_current_round is not None
        assert result.survivors_current_round < 10
        # And once the originator is repaired it catches up too.
        assert result.all_current_round is not None

    def test_dbvv_recovery_time_independent_of_repair_time(self):
        early = run_dbvv_arm(repair_round=10, max_rounds=20, seed=11)
        late = run_dbvv_arm(repair_round=18, max_rounds=25, seed=11)
        assert early.survivors_current_round == late.survivors_current_round

    def test_oracle_never_detects_its_own_staleness(self):
        """Nothing in the push protocol compares replica state, so the
        stranded peers' work counters show no detection activity."""
        result = run_oracle_arm(repair_round=15, max_rounds=20)
        # Direct behavioural consequence asserted above (staleness until
        # repair); this is the summary-level check:
        assert result.staleness.first_stale_time is not None
        assert result.staleness.fresh_time is not None
        assert result.staleness.stale_duration >= 14


class TestE5InterruptedSession:
    def test_dbvv_survivors_reconverge_via_retry_before_repair(self):
        result = run_interrupted_dbvv_arm(
            n_nodes=6, n_items=20, updates=4, reached=2,
            repair_round=10, max_rounds=15, seed=11,
        )
        # A session died mid-flight in round 1, but the retry layer plus
        # epidemic forwarding re-converge the survivors long before the
        # originator comes back.
        assert result.survivors_current_round is not None
        assert result.survivors_current_round < 10
        assert result.all_current_round is not None

    def test_oracle_survivors_stay_stale_until_repair(self):
        result = run_interrupted_oracle_arm(
            n_nodes=6, n_items=20, updates=4, reached=2,
            repair_round=10, max_rounds=15, seed=11,
        )
        # The same retry policy cannot help oracle push: the missing
        # records live only on the dead originator.
        assert (
            result.survivors_current_round is None
            or result.survivors_current_round >= 10
        )

    def test_dbvv_arm_works_without_retries_too(self):
        """The retry layer accelerates recovery but anti-entropy alone
        still converges — the arm must not depend on retries to finish."""
        result = run_interrupted_dbvv_arm(
            n_nodes=6, n_items=20, updates=4, reached=2,
            repair_round=10, max_rounds=15, seed=11,
            retry_policy=RetryPolicy(),  # retries disabled
        )
        assert result.survivors_current_round is not None


class TestE6OutOfBound:
    def test_fetch_is_one_comparison(self):
        for deferred in (0, 16):
            row = run_episode(deferred, n_items=100)
            assert row.oob_fetch_vv_comparisons == 1

    def test_replay_count_equals_deferred_updates(self):
        for deferred in (0, 1, 7, 40):
            row = run_episode(deferred, n_items=100)
            assert row.replayed == deferred
            assert row.aux_discarded
            assert row.values_match

    def test_replay_work_linear_in_deferred(self):
        base = run_episode(0, n_items=100)
        heavy = run_episode(100, n_items=100)
        slope = (heavy.replay_work - base.replay_work) / 100
        assert slope < 10
        mid = run_episode(50, n_items=100)
        predicted = base.replay_work + slope * 50
        assert abs(mid.replay_work - predicted) <= 0.2 * predicted + 5

    def test_replay_work_independent_of_database_size(self):
        small = run_episode(10, n_items=50)
        large = run_episode(10, n_items=2_000)
        assert large.replay_work == small.replay_work

    def test_oob_freshness_beats_scheduled_propagation(self):
        freshness = run_freshness(chain_length=5)
        assert freshness.with_oob_rounds == 0
        assert freshness.without_oob_rounds == 4
