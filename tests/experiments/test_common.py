"""Tests for the shared experiment machinery."""

import pytest

from repro.experiments.common import (
    EPIDEMIC_PROTOCOLS,
    PROTOCOLS,
    fresh_pair,
    make_factory,
    make_items,
    protocol_class,
)
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put


class TestRegistry:
    def test_all_protocols_registered(self):
        assert set(PROTOCOLS) == {
            "dbvv", "dbvv-delta", "per-item-vv", "lotus", "oracle-push",
            "wuu-bernstein", "agrawal-malpani",
        }

    def test_epidemic_subset_is_registered(self):
        assert set(EPIDEMIC_PROTOCOLS) <= set(PROTOCOLS)

    def test_protocol_class_resolves(self):
        for name, cls in PROTOCOLS.items():
            assert protocol_class(name) is cls
            assert cls.protocol_name == name

    def test_unknown_protocol_raises_with_candidates(self):
        with pytest.raises(KeyError) as exc:
            protocol_class("carrier-pigeon")
        assert "dbvv" in str(exc.value)


class TestMakeItems:
    def test_names_are_sorted_and_unique(self):
        items = make_items(1000)
        assert len(set(items)) == 1000
        assert items == sorted(items)

    def test_prefix_respected(self):
        assert make_items(2, prefix="doc")[0].startswith("doc-")

    def test_zero_items(self):
        assert make_items(0) == []


class TestFactoryAndPair:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_factory_builds_working_nodes(self, name):
        items = make_items(5)
        factory = make_factory(name, 3, items)
        counters = OverheadCounters()
        node = factory(1, counters)
        assert node.node_id == 1
        assert node.n_nodes == 3
        node.user_update(items[0], Put(b"v"))
        assert node.read(items[0]) == b"v"

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_fresh_pair_syncs(self, name):
        items = make_items(5)
        pair = fresh_pair(name, items)
        if name in ("oracle-push", "agrawal-malpani"):
            # Push-style: the "recipient" pushes; seed it instead.
            pair.recipient.user_update(items[0], Put(b"v"))
            pair.sync()
            assert pair.source.read(items[0]) == b"v"
        else:
            pair.source.user_update(items[0], Put(b"v"))
            pair.sync()
            assert pair.recipient.read(items[0]) == b"v"

    def test_pair_counters_reset(self):
        pair = fresh_pair("dbvv", make_items(3))
        pair.source.user_update("item-00000", Put(b"v"))
        pair.sync()
        assert pair.session_work() > 0
        pair.reset()
        assert pair.session_work() == 0
        assert pair.transport_counters.bytes_sent == 0
