"""Shape assertions for experiment E9 (read staleness vs schedule)."""

import pytest

from repro.experiments.e9_read_staleness import run_arm


@pytest.fixture(scope="module")
def arms():
    rows = {}
    for period in (2.0, 20.0):
        for oob in (False, True):
            rows[(period, oob)] = run_arm(period, oob_hot_reads=oob, seed=23)
    return rows


class TestScheduleTradeoff:
    def test_lazier_schedule_means_more_stale_reads(self, arms):
        """The paper's section 8 trade-off, quantified."""
        fast = arms[(2.0, False)]
        lazy = arms[(20.0, False)]
        assert lazy.stale_fraction > 2 * fast.stale_fraction

    def test_reads_actually_happened(self, arms):
        for row in arms.values():
            assert row.reads > 300
            assert row.hot_reads > 10


class TestOutOfBoundArm:
    def test_oob_makes_hot_reads_fresh_at_any_period(self, arms):
        for period in (2.0, 20.0):
            row = arms[(period, True)]
            assert row.stale_hot_fraction == 0.0, (
                f"hot reads stale at period {period} despite OOB"
            )
            assert row.oob_fetches > 0

    def test_oob_does_not_help_cold_reads(self, arms):
        """Only the hot set is fetched; cold staleness still tracks the
        schedule — OOB is a targeted tool, not a consistency upgrade."""
        lazy_plain = arms[(20.0, False)]
        lazy_oob = arms[(20.0, True)]
        cold_stale_plain = lazy_plain.stale_reads - lazy_plain.stale_hot_reads
        cold_stale_oob = lazy_oob.stale_reads - lazy_oob.stale_hot_reads
        assert cold_stale_oob >= cold_stale_plain * 0.5

    def test_no_oob_arm_triggers_no_fetches(self, arms):
        assert arms[(2.0, False)].oob_fetches == 0


class TestDeterminism:
    def test_same_seed_same_numbers(self):
        a = run_arm(5.0, oob_hot_reads=True, seed=31)
        b = run_arm(5.0, oob_hot_reads=True, seed=31)
        assert a == b
