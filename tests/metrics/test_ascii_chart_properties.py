"""Property-based tests: chart renderers never garble their frame."""

from hypothesis import given, strategies as st

from repro.metrics.ascii_chart import bar_chart, line_chart

values = st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False)
labels = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)


@given(st.dictionaries(labels, values, min_size=1, max_size=8),
       st.integers(min_value=1, max_value=80))
def test_bar_chart_always_renders_consistent_frame(data, width):
    chart = bar_chart(data, width=width)
    lines = chart.splitlines()
    assert len(lines) == len(data)
    pipes = {line.index("|") for line in lines}
    assert len(pipes) == 1  # bars start at one column
    for line in lines:
        bar = line.split("|", 1)[1].split(" ")[0]
        assert len(bar) <= width + 1


@given(
    st.lists(
        st.lists(values, min_size=2, max_size=30),
        min_size=1,
        max_size=4,
    ).map(lambda rows: {f"s{i}": row for i, row in enumerate(rows)}),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=2, max_value=70),
)
def test_line_chart_dimensions_hold_for_any_series(series, height, width):
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        series = {name: list(vals)[: min(lengths)] for name, vals in series.items()}
    if min(len(v) for v in series.values()) < 2:
        return
    chart = line_chart(series, height=height, width=width)
    plot_lines = [line for line in chart.splitlines() if line.startswith("|")]
    assert len(plot_lines) == height
    assert all(len(line) == width + 1 for line in plot_lines)
    body = "\n".join(plot_lines)
    # Later series draw over earlier ones at shared grid cells, so only
    # the last-drawn series' marker is guaranteed visible...
    last_marker = "●○■□▲△◆◇"[len(series) - 1]
    assert last_marker in body
    # ...but the legend always names every series.
    legend = chart.splitlines()[-1]
    for name in series:
        assert name in legend
