"""Tests for the one-call simulation report."""

from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.metrics.summary import summarize_simulation
from repro.substrate.operations import Put

ITEMS = make_items(15)


def run_small_sim():
    sim = ClusterSimulation(make_factory("dbvv", 3, ITEMS), 3, ITEMS, seed=2)
    sim.apply_update(0, ITEMS[0], Put(b"v"))
    sim.run_until_converged(max_rounds=40)
    return sim


class TestSummary:
    def test_report_contains_every_section(self):
        report = summarize_simulation(run_small_sim(), title="demo run")
        assert report.startswith("demo run")
        assert "protocol" in report
        assert "dbvv" in report
        assert "Theorem 5 coverage" in report
        assert "Rounds" in report
        assert "traffic" in report

    def test_staleness_chart_appears_for_multi_round_runs(self):
        sim = run_small_sim()
        if sim.round_no >= 2:
            assert "Staleness per round" in summarize_simulation(sim)

    def test_unconverged_run_reported_honestly(self):
        sim = ClusterSimulation(make_factory("dbvv", 3, ITEMS), 3, ITEMS, seed=3)
        sim.apply_update(0, ITEMS[0], Put(b"a"))
        sim.apply_update(1, ITEMS[0], Put(b"b"))  # conflict: never converges
        for _ in range(6):
            sim.run_round()
        report = summarize_simulation(sim)
        data_row = report.splitlines()[7]  # the Run table's data row
        assert "no" in data_row.split()
        assert "conflicts" in report

    def test_fresh_simulation_report(self):
        sim = ClusterSimulation(make_factory("dbvv", 3, ITEMS), 3, ITEMS, seed=4)
        report = summarize_simulation(sim)
        assert "uncovered" in report  # no sessions yet
        assert "Rounds" not in report  # no history table

    def test_coverage_completion_reported_with_round(self):
        sim = run_small_sim()
        while not sim.coverage.is_fully_covered():
            sim.run_round()
        report = summarize_simulation(sim)
        assert "COMPLETE" in report
