"""Unit tests for overhead counters."""

from repro.metrics.counters import NULL_COUNTERS, OverheadCounters


class TestBasicAccounting:
    def test_fields_start_at_zero(self):
        counters = OverheadCounters()
        assert counters.vv_comparisons == 0
        assert counters.snapshot()["bytes_sent"] == 0

    def test_direct_attribute_increments(self):
        counters = OverheadCounters()
        counters.vv_comparisons += 3
        assert counters.vv_comparisons == 3

    def test_bump_named_field(self):
        counters = OverheadCounters()
        counters.bump("items_scanned", 5)
        assert counters.items_scanned == 5

    def test_bump_unknown_name_goes_to_extra(self):
        counters = OverheadCounters()
        counters.bump("custom_metric", 2)
        counters.bump("custom_metric")
        assert counters.extra == {"custom_metric": 3}
        assert counters.snapshot()["custom_metric"] == 3

    def test_reset_zeroes_everything(self):
        counters = OverheadCounters()
        counters.vv_comparisons = 5
        counters.bump("custom", 1)
        counters.reset()
        assert counters.vv_comparisons == 0
        assert counters.extra == {}

    def test_snapshot_excludes_raw_extra_key(self):
        counters = OverheadCounters()
        assert "extra" not in counters.snapshot()


class TestAggregation:
    def test_merged_with_sums_fields(self):
        a = OverheadCounters(vv_comparisons=2, bytes_sent=10)
        b = OverheadCounters(vv_comparisons=3)
        b.bump("custom", 7)
        merged = a.merged_with(b)
        assert merged.vv_comparisons == 5
        assert merged.bytes_sent == 10
        assert merged.extra["custom"] == 7

    def test_merge_does_not_mutate_operands(self):
        a = OverheadCounters(vv_comparisons=2)
        b = OverheadCounters(vv_comparisons=3)
        a.merged_with(b)
        assert a.vv_comparisons == 2
        assert b.vv_comparisons == 3

    def test_total_work_sums_comparison_counters(self):
        counters = OverheadCounters(
            vv_comparisons=1,
            vv_components_touched=2,
            log_records_examined=3,
            seqno_comparisons=4,
            items_scanned=5,
            bytes_sent=1000,  # traffic is not "work"
        )
        assert counters.total_work() == 15


class TestNullCounters:
    def test_null_sink_ignores_bumps(self):
        NULL_COUNTERS.bump("vv_comparisons", 100)
        assert NULL_COUNTERS.vv_comparisons == 0

    def test_null_sink_ignores_attribute_writes(self):
        NULL_COUNTERS.items_scanned += 50
        assert NULL_COUNTERS.items_scanned == 0
