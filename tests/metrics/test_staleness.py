"""Unit tests for staleness summarization."""

from repro.cluster.convergence import StalenessSample
from repro.metrics.staleness import summarize_staleness


def samples(*pairs):
    return [StalenessSample(float(t), stale, 1 if stale else 0) for t, stale in pairs]


class TestSummaries:
    def test_never_stale(self):
        summary = summarize_staleness(samples((1, 0), (2, 0)))
        assert summary.first_stale_time is None
        assert summary.fresh_time is None
        assert summary.stale_duration is None
        assert not summary.recovered
        assert summary.peak_stale_pairs == 0

    def test_stale_then_recovered(self):
        summary = summarize_staleness(samples((1, 0), (2, 5), (3, 2), (4, 0), (5, 0)))
        assert summary.first_stale_time == 2.0
        assert summary.fresh_time == 4.0
        assert summary.stale_duration == 2.0
        assert summary.recovered
        assert summary.peak_stale_pairs == 5

    def test_stale_never_recovered(self):
        summary = summarize_staleness(samples((1, 3), (2, 3)))
        assert summary.first_stale_time == 1.0
        assert summary.fresh_time is None
        assert not summary.recovered

    def test_relapse_resets_recovery(self):
        """Staleness that returns after a recovery: only a final,
        lasting recovery counts."""
        summary = summarize_staleness(
            samples((1, 2), (2, 0), (3, 4), (4, 0))
        )
        assert summary.first_stale_time == 1.0
        assert summary.fresh_time == 4.0
        assert summary.stale_duration == 3.0

    def test_empty_series(self):
        summary = summarize_staleness([])
        assert summary.samples == 0
        assert not summary.recovered
