"""Unit tests for report tables and formatting helpers."""

import pytest

from repro.metrics.reporting import Table, format_bytes, format_ratio


class TestFormatters:
    def test_ratio(self):
        assert format_ratio(30, 10) == "3.0x"
        assert format_ratio(1, 3) == "0.3x"

    def test_ratio_zero_denominator(self):
        assert format_ratio(5, 0) == "inf"
        assert format_ratio(0, 0) == "1.0x"

    def test_bytes_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"
        assert format_bytes(5 * 1024**3) == "5.0GiB"


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Demo", ["name", "count"])
        table.add_row(["a", 1])
        table.add_row(["long-name", 12345])
        output = table.render()
        lines = output.splitlines()
        assert lines[0] == "Demo"
        header_line = lines[2]
        assert "name" in header_line and "count" in header_line
        # All data lines same width.
        widths = {len(line) for line in lines[2:-1]}
        assert len(widths) == 1

    def test_floats_rendered_compactly(self):
        table = Table("t", ["v"])
        table.add_row([3.14159])
        assert "3.14" in table.render()

    def test_row_width_mismatch_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_print_goes_to_stdout(self, capsys):
        table = Table("t", ["a"])
        table.add_row([1])
        table.print()
        captured = capsys.readouterr()
        assert "t\n" in captured.out


class TestCsv:
    def test_header_and_rows(self):
        table = Table("t", ["a", "b"])
        table.add_row([1, "x"])
        assert table.to_csv() == "a,b\n1,x\n"

    def test_quoting(self):
        table = Table("t", ["name", "note"])
        table.add_row(['he said "hi"', "a,b"])
        assert table.to_csv() == 'name,note\n"he said ""hi""","a,b"\n'

    def test_empty_table(self):
        assert Table("t", ["only"]).to_csv() == "only\n"
