"""Tests for the ASCII chart renderers."""

import pytest

from repro.metrics.ascii_chart import bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart({"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_align(self):
        chart = bar_chart({"short": 1, "much-longer-label": 1}, width=5)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        assert "12345" in bar_chart({"x": 12345}, width=5)

    def test_nonzero_values_always_visible(self):
        chart = bar_chart({"tiny": 1, "huge": 10_000}, width=20)
        assert chart.splitlines()[0].count("█") == 1

    def test_zero_peak_renders_empty_bars(self):
        chart = bar_chart({"a": 0, "b": 0}, width=10)
        assert "█" not in chart

    def test_title_and_ordering(self):
        chart = bar_chart([("z", 1), ("a", 2)], width=5, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("z")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1})
        with pytest.raises(ValueError):
            bar_chart({"a": 1}, width=0)


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart({"s": [0, 5, 10]}, height=5, width=20)
        lines = chart.splitlines()
        plot_lines = [line for line in lines if line.startswith("|")]
        assert len(plot_lines) == 5
        assert all(len(line) == 21 for line in plot_lines)

    def test_monotone_series_descends_the_grid(self):
        chart = line_chart({"s": [0, 10]}, height=4, width=10)
        lines = [line for line in chart.splitlines() if line.startswith("|")]
        assert "●" in lines[0]       # peak at the top row
        assert "●" in lines[-1]      # zero at the bottom row

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart({"a": [1, 2], "b": [2, 1]}, height=4, width=8)
        assert "●" in chart and "○" in chart
        assert "● a" in chart and "○ b" in chart

    def test_peak_in_header(self):
        chart = line_chart({"s": [1, 42]}, height=3, width=6, y_label="stale")
        assert "stale (peak 42)" in chart

    def test_all_zero_series(self):
        chart = line_chart({"s": [0, 0, 0]}, height=3, width=6)
        lines = [line for line in chart.splitlines() if line.startswith("|")]
        assert "●" in lines[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, -2]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, height=1)
