"""Unit tests for the Agrawal–Malpani decoupled-dissemination baseline
(paper section 8.3)."""

import pytest

from repro.baselines.agrawal_malpani import AgrawalMalpaniNode
from repro.cluster.network import SimulatedNetwork
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(6)]


def make_nodes(n=3, vector_exchange_every=4):
    counters = [OverheadCounters() for _ in range(n)]
    nodes = [
        AgrawalMalpaniNode(
            k, n, ITEMS, counters=counters[k],
            vector_exchange_every=vector_exchange_every,
        )
        for k in range(n)
    ]
    return nodes, counters, DirectTransport(OverheadCounters())


class TestLogPush:
    def test_records_push_and_apply(self):
        (a, b, _c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert stats.items_transferred == 1
        assert b.read("item-0") == b"v"

    def test_pushes_forward_third_party_updates(self):
        (a, b, c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        a.sync_with(b, transport)
        b.sync_with(c, transport)
        assert c.read("item-0") == b"v"

    def test_nothing_fresh_means_identical(self):
        (a, b, _c), _, transport = make_nodes()
        stats = a.sync_with(b, transport)
        assert stats.identical

    def test_duplicate_pushes_are_suppressed_by_cursors(self):
        (a, b, _c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        a.sync_with(b, transport)
        stats = a.sync_with(b, transport)
        assert stats.items_transferred == 0

    def test_out_of_prefix_records_are_dropped(self):
        """A record arriving past a gap is dropped by the cheap path
        (the vector exchange exists to repair exactly this)."""
        from repro.baselines.agrawal_malpani import AMRecord

        (a, *_), _, _transport = make_nodes()
        # Origin 1's record with seqno 2 arrives while a has none of
        # origin 1's records: not the next prefix element — dropped.
        gap_record = AMRecord("item-0", b"gapped", seqno=2, origin=1)
        assert a._accept_records((gap_record,)) == (0, ())
        assert a.read("item-0") == b""
        # The prefix element is accepted, and then its successor.
        first = AMRecord("item-0", b"first", seqno=1, origin=1)
        assert a._accept_records((first, gap_record)) == (2, ("item-0", "item-0"))
        assert a.read("item-0") == b"gapped"


class TestVectorExchange:
    def test_gap_from_failed_push_is_repaired(self):
        """The signature scenario: a push is lost (recipient down); the
        cheap path never retries, the vector exchange repairs."""
        n = 2
        network = SimulatedNetwork(n)
        a = AgrawalMalpaniNode(0, n, ITEMS, vector_exchange_every=3)
        b = AgrawalMalpaniNode(1, n, ITEMS, vector_exchange_every=3)
        a.user_update("item-0", Put(b"v"))
        network.set_down(1)
        from repro.interfaces import SessionPhase

        stats = a.sync_with(b, network)      # push lost; cursor advanced
        assert stats.failed
        assert stats.aborted_phase is SessionPhase.REQUEST_SENT
        network.set_up(1)
        stats = a.sync_with(b, network)      # push has nothing fresh
        assert stats.items_transferred == 0
        assert b.read("item-0") == b""       # still stale!
        stats = a.sync_with(b, network)      # 3rd call: vector exchange
        assert b.read("item-0") == b"v"
        assert b.repairs == 1

    def test_exchange_repairs_both_directions(self):
        (a, b, _c), _, transport = make_nodes(vector_exchange_every=1)
        a.user_update("item-0", Put(b"from-a"))
        b.user_update("item-1", Put(b"from-b"))
        # Manufacture two-way staleness without pushes: directly sync
        # with exchange-on-every-call; the push moves a's records and
        # the symmetric exchange pulls b's back.
        a.sync_with(b, transport)
        assert b.read("item-0") == b"from-a"
        assert a.read("item-1") == b"from-b"

    def test_exchange_cadence(self):
        (a, b, _c), _, transport = make_nodes(vector_exchange_every=4)
        for _ in range(8):
            a.sync_with(b, transport)
        assert a.vector_exchanges == 2

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            AgrawalMalpaniNode(0, 2, ITEMS, vector_exchange_every=0)


class TestCharacterization:
    def test_conflicts_resolve_silently_by_lww(self):
        (a, b, _c), _, transport = make_nodes(vector_exchange_every=1)
        a.user_update("item-0", Put(b"from-a"))
        b.user_update("item-0", Put(b"from-b"))
        a.sync_with(b, transport)
        b.sync_with(a, transport)
        assert a.read("item-0") == b.read("item-0")
        assert a.conflict_count() == 0  # silent — the paper's criticism

    def test_push_cost_scans_candidate_records(self):
        nodes, counters, transport = make_nodes()
        a, b, _c = nodes
        for k in range(10):
            a.user_update(ITEMS[k % len(ITEMS)], Put(f"v{k}".encode()))
        counters[0].reset()
        a.sync_with(b, transport)
        assert counters[0].log_records_examined == 10

    def test_cross_protocol_rejected(self):
        from repro.baselines.lotus import LotusNode

        (a, *_), _, transport = make_nodes()
        with pytest.raises(TypeError):
            a.sync_with(LotusNode(1, 3, ITEMS), transport)
