"""Unit tests for the per-item version-vector baseline."""

import pytest

from repro.baselines.per_item import PerItemVVNode
from repro.errors import UnknownItemError
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(10)]


def make_pair():
    ca, cb = OverheadCounters(), OverheadCounters()
    a = PerItemVVNode(0, 2, ITEMS, counters=ca)
    b = PerItemVVNode(1, 2, ITEMS, counters=cb)
    return a, b, DirectTransport(OverheadCounters()), ca, cb


class TestUserOperations:
    def test_update_and_read(self):
        a, *_ = make_pair()
        a.user_update("item-0", Put(b"v"))
        assert a.read("item-0") == b"v"

    def test_unknown_item_rejected(self):
        a, *_ = make_pair()
        with pytest.raises(UnknownItemError):
            a.user_update("nope", Put(b"v"))
        with pytest.raises(UnknownItemError):
            a.read("nope")


class TestAntiEntropy:
    def test_newer_items_are_copied(self):
        a, b, transport, *_ = make_pair()
        b.user_update("item-1", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert stats.items_transferred == 1
        assert a.read("item-1") == b"v"

    def test_identical_replicas_detected_but_at_linear_cost(self):
        """The correctness is fine — the point is the cost: every
        session compares all N IVVs."""
        a, b, transport, ca, _cb = make_pair()
        stats = a.sync_with(b, transport)
        assert stats.identical
        assert ca.vv_comparisons == len(ITEMS)
        assert ca.items_scanned == len(ITEMS)

    def test_source_scan_is_linear_too(self):
        a, b, transport, _ca, cb = make_pair()
        a.sync_with(b, transport)
        assert cb.items_scanned == len(ITEMS)

    def test_conflicts_detected(self):
        a, b, transport, *_ = make_pair()
        a.user_update("item-0", Put(b"a"))
        b.user_update("item-0", Put(b"b"))
        stats = a.sync_with(b, transport)
        assert stats.conflicts == 1
        assert a.conflict_count() == 1
        assert a.read("item-0") == b"a"  # not overwritten (C2 holds)

    def test_transitive_convergence(self):
        nodes = [PerItemVVNode(k, 3, ITEMS) for k in range(3)]
        transport = DirectTransport(OverheadCounters())
        nodes[0].user_update("item-2", Put(b"v"))
        nodes[1].sync_with(nodes[0], transport)
        nodes[2].sync_with(nodes[1], transport)
        assert nodes[2].read("item-2") == b"v"

    def test_cross_protocol_rejected(self):
        from repro.baselines.lotus import LotusNode

        a, _b, transport, *_ = make_pair()
        with pytest.raises(TypeError):
            a.sync_with(LotusNode(1, 2, ITEMS), transport)

    def test_metadata_traffic_scales_with_n_items(self):
        counters = OverheadCounters()
        transport = DirectTransport(counters)
        small_a = PerItemVVNode(0, 2, ITEMS[:2])
        small_b = PerItemVVNode(1, 2, ITEMS[:2])
        small_a.sync_with(small_b, transport)
        small_bytes = counters.bytes_sent
        counters.reset()
        big_a = PerItemVVNode(0, 2, ITEMS)
        big_b = PerItemVVNode(1, 2, ITEMS)
        big_a.sync_with(big_b, transport)
        assert counters.bytes_sent > small_bytes * 3
