"""Unit tests for the Wuu–Bernstein gossip baseline (section 8.3)."""

from repro.baselines.wuu_bernstein import WuuBernsteinNode
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(6)]


def make_nodes(n=3):
    counters = [OverheadCounters() for _ in range(n)]
    nodes = [WuuBernsteinNode(k, n, ITEMS, counters=counters[k]) for k in range(n)]
    return nodes, counters, DirectTransport(OverheadCounters())


class TestGossip:
    def test_updates_travel_via_gossip(self):
        (a, b, _c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        stats = b.sync_with(a, transport)
        assert stats.items_transferred == 1
        assert b.read("item-0") == b"v"

    def test_gossip_forwards_third_party_updates(self):
        """Unlike Oracle push, gossip logs carry everything the sender
        knows, including other origins' updates."""
        (a, b, c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        b.sync_with(a, transport)
        c.sync_with(b, transport)
        assert c.read("item-0") == b"v"

    def test_time_table_rows_merge(self):
        (a, b, _c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        b.sync_with(a, transport)
        table = b.time_table()
        assert table[b.node_id][a.node_id] == 1   # b knows a's update
        assert table[a.node_id][a.node_id] == 1   # and knows a knows it

    def test_identical_gossip_is_flagged(self):
        (a, b, _c), _, transport = make_nodes()
        stats = b.sync_with(a, transport)
        assert stats.identical

    def test_duplicate_records_not_reapplied(self):
        (a, b, _c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        b.sync_with(a, transport)
        stats = b.sync_with(a, transport)
        assert stats.items_transferred == 0


class TestLogGrowthAndGC:
    def test_log_grows_with_updates_until_gc(self):
        (a, _b, _c), _, _t = make_nodes()
        for k in range(20):
            a.user_update(ITEMS[k % len(ITEMS)], Put(f"v{k}".encode()))
        assert a.log_size == 20  # unlike the paper's bounded log

    def test_gc_drops_universally_known_records(self):
        (a, b, c), _, transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        # Spread knowledge until everyone provably has the record.
        for _round in range(3):
            b.sync_with(a, transport)
            c.sync_with(b, transport)
            a.sync_with(c, transport)
        assert a.log_size == 0

    def test_gossip_scan_cost_is_linear_in_log(self):
        """The paper's footnote 4: every send scans the whole log."""
        nodes, counters, transport = make_nodes()
        a, b, _c = nodes
        for k in range(15):
            a.user_update(ITEMS[k % len(ITEMS)], Put(f"v{k}".encode()))
        counters[0].reset()
        b.sync_with(a, transport)
        assert counters[0].log_records_examined == 15

    def test_message_carries_n_squared_table(self):
        traffic = OverheadCounters()
        transport = DirectTransport(traffic)
        small = [WuuBernsteinNode(k, 2, ITEMS) for k in range(2)]
        small[1].sync_with(small[0], transport)
        small_bytes = traffic.bytes_sent
        traffic.reset()
        big = [WuuBernsteinNode(k, 8, ITEMS) for k in range(8)]
        big[1].sync_with(big[0], transport)
        assert traffic.bytes_sent > small_bytes * 4  # n² growth


class TestConvergence:
    def test_full_rotation_converges(self):
        nodes, _, transport = make_nodes()
        for idx, node in enumerate(nodes):
            node.user_update(ITEMS[idx], Put(f"from-{idx}".encode()))
        for _round in range(3):
            for dst in nodes:
                for src in nodes:
                    if dst is not src:
                        dst.sync_with(src, transport)
        reference = nodes[0].state_fingerprint()
        assert all(n.state_fingerprint() == reference for n in nodes)
