"""Unit tests for the Oracle-style deferred-push baseline (section 8.2)."""

import pytest

from repro.baselines.oracle import OraclePushNode
from repro.cluster.failures import CrashAfterPartialPush
from repro.cluster.network import SimulatedNetwork
from repro.errors import UnknownItemError
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters

from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(6)]


def make_nodes(n=3):
    nodes = [OraclePushNode(k, n, ITEMS) for k in range(n)]
    return nodes, DirectTransport(OverheadCounters())


class TestDeferredQueue:
    def test_updates_accumulate_in_queue(self):
        (a, b, _), _t = make_nodes()
        a.user_update("item-0", Put(b"v1"))
        a.user_update("item-1", Put(b"v2"))
        assert a.pending_for(b.node_id) == 2

    def test_unknown_item_rejected(self):
        (a, *_), _t = make_nodes()
        with pytest.raises(UnknownItemError):
            a.user_update("nope", Put(b"v"))

    def test_push_delivers_and_acks(self):
        (a, b, _), transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert stats.items_transferred == 1
        assert b.read("item-0") == b"v"
        assert a.pending_for(b.node_id) == 0

    def test_nothing_pending_is_identical(self):
        (a, b, _), transport = make_nodes()
        stats = a.sync_with(b, transport)
        assert stats.identical
        assert stats.messages == 0

    def test_acks_are_per_peer(self):
        (a, b, c), transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        a.sync_with(b, transport)
        assert a.pending_for(b.node_id) == 0
        assert a.pending_for(c.node_id) == 1

    def test_lww_resolves_concurrent_writes_silently(self):
        (a, b, _), transport = make_nodes()
        a.user_update("item-0", Put(b"from-a"))
        b.user_update("item-0", Put(b"from-b"))
        a.sync_with(b, transport)
        b.sync_with(a, transport)
        # Same stamp rank (1, origin): origin 1 wins; no conflict ever
        # reported — the silence the paper criticizes.
        assert a.read("item-0") == b.read("item-0") == b"from-b"
        assert a.conflict_count() == 0


class TestNoForwarding:
    def test_recipients_never_forward(self):
        """The defining property: b got a's update but pushing b→c moves
        nothing, because b only pushes its own updates."""
        (a, b, c), transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        a.sync_with(b, transport)
        stats = b.sync_with(c, transport)
        assert stats.identical
        assert c.read("item-0") == b""

    def test_push_to_all_reaches_every_peer(self):
        (a, b, c), transport = make_nodes()
        a.user_update("item-0", Put(b"v"))
        results = a.push_to_all([a, b, c], transport)
        assert len(results) == 2
        assert b.read("item-0") == c.read("item-0") == b"v"


class TestCrashMidPush:
    def test_partial_push_strands_remaining_peers(self):
        """Paper section 8.2's failure scenario, at protocol level."""
        n = 4
        network = SimulatedNetwork(n)
        nodes = [OraclePushNode(k, n, ITEMS) for k in range(n)]
        nodes[0].user_update("item-0", Put(b"v"))
        crash = CrashAfterPartialPush(node=0, after_peers=1)
        nodes[0].push_to_all(nodes, network, partial_crash=crash)
        assert crash.fired
        assert nodes[1].read("item-0") == b"v"      # reached
        assert nodes[2].read("item-0") == b""       # stranded
        assert nodes[3].read("item-0") == b""
        # Survivor pushes move nothing (no forwarding).
        for src in (1, 2, 3):
            for dst in (1, 2, 3):
                if src != dst:
                    nodes[src].sync_with(nodes[dst], network)
        assert nodes[2].read("item-0") == b""
        # Only repair ends the staleness.
        network.set_up(0)
        nodes[0].push_to_all(nodes, network)
        assert nodes[2].read("item-0") == b"v"
        assert nodes[3].read("item-0") == b"v"
