"""Unit tests for the Lotus Notes baseline (paper section 8.1)."""


from repro.baselines.lotus import LotusNode
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(8)]


def make_nodes(n=2):
    counters = [OverheadCounters() for _ in range(n)]
    nodes = [LotusNode(k, n, ITEMS, counters=counters[k]) for k in range(n)]
    return nodes, counters, DirectTransport(OverheadCounters())


class TestBasicReplication:
    def test_modified_items_propagate(self):
        nodes, _counters, transport = make_nodes()
        a, b = nodes
        b.user_update("item-1", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert stats.items_transferred == 1
        assert a.read("item-1") == b"v"
        assert a.seqno_of("item-1") == 1

    def test_nothing_changed_is_constant_time(self):
        """The one case Lotus detects cheaply: nothing modified at the
        source since its last propagation to this recipient."""
        nodes, counters, transport = make_nodes()
        a, b = nodes
        b.user_update("item-1", Put(b"v"))
        a.sync_with(b, transport)
        counters[1].reset()
        stats = a.sync_with(b, transport)
        assert stats.identical
        assert counters[1].items_scanned == 0

    def test_change_list_scan_is_linear_in_database(self):
        nodes, counters, transport = make_nodes()
        a, b = nodes
        b.user_update("item-1", Put(b"v"))
        counters[1].reset()
        a.sync_with(b, transport)
        assert counters[1].items_scanned == len(ITEMS)

    def test_transitive_convergence_on_clean_histories(self):
        nodes = [LotusNode(k, 3, ITEMS) for k in range(3)]
        transport = DirectTransport(OverheadCounters())
        nodes[0].user_update("item-0", Put(b"v"))
        nodes[1].sync_with(nodes[0], transport)
        nodes[2].sync_with(nodes[1], transport)
        assert nodes[2].read("item-0") == b"v"


class TestPaperDeficiencies:
    def test_redundant_session_after_indirect_copy(self):
        """Paper section 8.1: identical replicas, but the source scans
        and ships a change list anyway."""
        nodes = [LotusNode(k, 3, ITEMS, counters=OverheadCounters()) for k in range(3)]
        transport = DirectTransport(OverheadCounters())
        nodes[0].user_update("item-0", Put(b"v"))
        nodes[1].sync_with(nodes[0], transport)
        nodes[2].sync_with(nodes[1], transport)
        # nodes[2] and nodes[0] are identical now.
        assert nodes[2].state_fingerprint() == nodes[0].state_fingerprint()
        counters = nodes[0].counters
        counters.reset()
        stats = nodes[2].sync_with(nodes[0], transport)
        assert not stats.identical           # Lotus cannot tell
        assert counters.items_scanned == len(ITEMS)

    def test_lost_update_on_concurrent_writes(self):
        """The paper's 2-vs-1 example: the higher sequence number wins
        silently; j's concurrent update is destroyed (C2 violated)."""
        nodes, _counters, transport = make_nodes()
        a, b = nodes
        a.user_update("x" if "x" in ITEMS else ITEMS[0], Put(b"i-1"))
        a.user_update(ITEMS[0], Put(b"i-2"))
        b.user_update(ITEMS[0], Put(b"j-only"))
        stats = b.sync_with(a, transport)
        assert stats.items_transferred == 1
        assert b.read(ITEMS[0]) == b"i-2"    # j's update silently lost
        assert stats.conflicts == 0          # and nobody was told
        assert b.conflict_count() == 0

    def test_equal_seqno_ties_broken_by_writer_id(self):
        """Modelling choice documented in the module: ties cannot be
        recognized as conflicts either — the higher writer id wins."""
        nodes, _counters, transport = make_nodes()
        a, b = nodes
        a.user_update(ITEMS[0], Put(b"from-0"))
        b.user_update(ITEMS[0], Put(b"from-1"))
        a.sync_with(b, transport)
        b.sync_with(a, transport)
        assert a.read(ITEMS[0]) == b.read(ITEMS[0]) == b"from-1"
