"""Property-based tests for the Agrawal–Malpani baseline.

Random interleavings of single-writer updates, best-effort pushes, and
periodic vector exchanges must preserve the per-origin prefix shape of
every node's received-record lists and converge once enough exchanges
run — the repair path has to close any gap the fire-and-forget pushes
open.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.agrawal_malpani import AgrawalMalpaniNode
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(4)]

steps = st.one_of(
    st.tuples(st.just("update"), st.integers(0, len(ITEMS) - 1)),
    st.tuples(st.just("sync"), st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
)
programs = st.lists(steps, max_size=40)


def execute(program, vector_exchange_every=3):
    transport = DirectTransport(OverheadCounters())
    nodes = [
        AgrawalMalpaniNode(
            k, N_NODES, ITEMS, vector_exchange_every=vector_exchange_every
        )
        for k in range(N_NODES)
    ]
    counter = 0
    for step in program:
        if step[0] == "update":
            _tag, item_idx = step
            counter += 1
            nodes[item_idx % N_NODES].user_update(
                ITEMS[item_idx], Put(f"v{counter}".encode())
            )
        else:
            _tag, src, dst = step
            if src != dst:
                nodes[src].sync_with(nodes[dst], transport)
    return nodes, transport


@settings(max_examples=50, deadline=None)
@given(programs)
def test_received_lists_stay_dense_prefixes(program):
    nodes, _transport = execute(program)
    for node in nodes:
        for origin in range(N_NODES):
            records = node._received[origin]
            assert [r.seqno for r in records] == list(range(1, len(records) + 1)), (
                f"node {node.node_id} holds a gapped prefix for origin {origin}"
            )


@settings(max_examples=50, deadline=None)
@given(programs)
def test_exchanges_eventually_converge_everything(program):
    nodes, transport = execute(program, vector_exchange_every=1)
    # Every sync now includes the exchange; a full rotation repairs all.
    for _round in range(N_NODES + 1):
        for src in range(N_NODES):
            for dst in range(N_NODES):
                if src != dst:
                    nodes[src].sync_with(nodes[dst], transport)
    reference = nodes[0].state_fingerprint()
    for node in nodes[1:]:
        assert node.state_fingerprint() == reference
    vectors = {node.received_vector() for node in nodes}
    assert len(vectors) == 1, "received-vectors must agree after repair"
