"""The repository must satisfy its own linter.

This is the acceptance gate from the issue: ``python -m repro.lint src
tests benchmarks`` exits 0 on the final tree.  Run in-process (not via
subprocess) so a failure prints the actual findings in the assertion
message.
"""

from pathlib import Path

from repro.lint import ALL_RULES, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_clean_under_its_own_linter():
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    violations, files_checked = lint_paths(
        [p for p in paths if p.is_dir()], ALL_RULES
    )
    assert files_checked > 100, "discovery walked too few files; scoping broke?"
    assert violations == [], "\n" + "\n".join(v.render() for v in violations)
