"""Fixture-driven tests: each rule catches its violation fixture and
stays silent on the clean counterpart.

The fixtures live under ``fixtures/src/repro/...`` so the path-based
scoping classifies them like the real modules they imitate; clean
fixtures must be clean under *all* rules, which keeps one rule's "good"
example from tripping another rule unnoticed.
"""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_file, lint_source, make_scope

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (violating fixture, minimum expected hits of that rule)
VIOLATION_FIXTURES = {
    "R1": (FIXTURES / "src/repro/core/r1_violation.py", 1),
    "R2": (FIXTURES / "r2_violation.py", 1),
    "R3": (FIXTURES / "src/repro/cluster/r3_violation.py", 7),
    "R4": (FIXTURES / "src/repro/cluster/r4_violation.py", 4),
    "R5": (FIXTURES / "src/repro/core/r5_violation.py", 1),
    "R6": (FIXTURES / "src/repro/cluster/r6_violation.py", 3),
    "R7": (FIXTURES / "src/repro/baselines/r7_violation.py", 4),
    "R8": (FIXTURES / "src/repro/core/r8_violation.py", 1),
    "R9": (FIXTURES / "src/repro/net/r9_violation.py", 5),
    "R10": (FIXTURES / "src/repro/net/r10_violation.py", 2),
    "R11": (FIXTURES / "src/repro/net/r11_violation.py", 2),
    "R12": (FIXTURES / "src/repro/net/r12_violation.py", 3),
    "R13": (FIXTURES / "src/repro/net/r13_violation.py", 2),
    "R14": (FIXTURES / "src/repro/wire/r14_violation.py", 3),
    "R15": (FIXTURES / "src/repro/net/r15_violation.py", 2),
    "R16": (FIXTURES / "src/repro/cluster/r16_violation.py", 4),
}

#: (rule id, fixture, min hits) pairs beyond each rule's primary pair —
#: rules whose scope spans several subpackages get one pair per scope.
EXTRA_VIOLATION_FIXTURES = [
    ("R1", FIXTURES / "src/repro/substrate/r1_violation.py", 1),
]

EXTRA_CLEAN_FIXTURES = [
    ("R1", FIXTURES / "src/repro/substrate/r1_clean.py"),
]

CLEAN_FIXTURES = {
    "R1": FIXTURES / "src/repro/core/r1_clean.py",
    "R2": FIXTURES / "r2_clean.py",
    "R3": FIXTURES / "src/repro/cluster/r3_clean.py",
    "R4": FIXTURES / "src/repro/cluster/r4_clean.py",
    "R5": FIXTURES / "src/repro/core/r5_clean.py",
    "R6": FIXTURES / "src/repro/cluster/r6_clean.py",
    "R7": FIXTURES / "src/repro/baselines/r7_clean.py",
    "R8": FIXTURES / "src/repro/core/r8_clean.py",
    "R9": FIXTURES / "src/repro/net/r9_clean.py",
    "R10": FIXTURES / "src/repro/net/r10_clean.py",
    "R11": FIXTURES / "src/repro/net/r11_clean.py",
    "R12": FIXTURES / "src/repro/net/r12_clean.py",
    "R13": FIXTURES / "src/repro/net/r13_clean.py",
    "R14": FIXTURES / "src/repro/wire/r14_clean.py",
    "R15": FIXTURES / "src/repro/net/r15_clean.py",
    "R16": FIXTURES / "src/repro/cluster/r16_clean.py",
}


@pytest.mark.parametrize("rule_id", sorted(VIOLATION_FIXTURES))
def test_rule_catches_its_fixture(rule_id):
    path, min_hits = VIOLATION_FIXTURES[rule_id]
    findings = lint_file(path, ALL_RULES)
    hits = [v for v in findings if v.rule_id == rule_id]
    assert len(hits) >= min_hits, (
        f"{rule_id} found {len(hits)} violation(s) in {path.name}, "
        f"expected >= {min_hits}: {[v.render() for v in findings]}"
    )


@pytest.mark.parametrize("rule_id", sorted(VIOLATION_FIXTURES))
def test_violation_fixtures_trip_only_their_own_rule(rule_id):
    path, _ = VIOLATION_FIXTURES[rule_id]
    findings = lint_file(path, ALL_RULES)
    assert findings, f"{path.name} produced no findings at all"
    foreign = {v.rule_id for v in findings} - {rule_id}
    assert not foreign, (
        f"{path.name} trips {foreign} in addition to {rule_id}; keep "
        "fixtures single-purpose"
    )


@pytest.mark.parametrize("rule_id", sorted(CLEAN_FIXTURES))
def test_clean_fixture_is_clean_under_all_rules(rule_id):
    findings = lint_file(CLEAN_FIXTURES[rule_id], ALL_RULES)
    assert findings == [], [v.render() for v in findings]


@pytest.mark.parametrize(
    "rule_id,path,min_hits",
    EXTRA_VIOLATION_FIXTURES,
    ids=lambda v: v.name if isinstance(v, Path) else str(v),
)
def test_extra_violation_fixture_trips_only_its_rule(rule_id, path, min_hits):
    findings = lint_file(path, ALL_RULES)
    hits = [v for v in findings if v.rule_id == rule_id]
    assert len(hits) >= min_hits, [v.render() for v in findings]
    foreign = {v.rule_id for v in findings} - {rule_id}
    assert not foreign, f"{path.name} trips {foreign} in addition to {rule_id}"


@pytest.mark.parametrize(
    "rule_id,path",
    EXTRA_CLEAN_FIXTURES,
    ids=lambda v: v.name if isinstance(v, Path) else str(v),
)
def test_extra_clean_fixture_is_clean_under_all_rules(rule_id, path):
    findings = lint_file(path, ALL_RULES)
    assert findings == [], [v.render() for v in findings]


class TestRegressionShapes:
    """The two acceptance scenarios from the issue: reintroducing either
    historical bug into the *real* module shape must fail lint."""

    def test_dropping_message_lost_handler_from_fetch_out_of_bound_fails(self):
        # fetch_out_of_bound with its MessageLostError handler removed —
        # the pre-PR-1 shape of src/repro/core/protocol.py.
        source = (
            "def fetch_out_of_bound(self, item, peer, transport):\n"
            "    try:\n"
            "        reply = transport.deliver(peer.node_id, self.node_id, item)\n"
            "    except NodeDownError:\n"
            "        return False\n"
            "    return True\n"
        )
        findings = lint_source(source, "src/repro/core/protocol.py", ALL_RULES)
        assert any(v.rule_id == "R2" for v in findings)

    def test_reintroducing_the_seqno_tautology_fails(self):
        # The exact pre-PR-1 tautology from node.check_invariants.
        source = (
            "def check_invariants(self):\n"
            "    for k in range(self.n_nodes):\n"
            "        max_seqno = self.log.component_max(k)\n"
            "        if not max_seqno <= max(self.dbvv[k], max_seqno):\n"
            "            raise InvariantViolation('log component bound')\n"
        )
        findings = lint_source(source, "src/repro/core/node.py", ALL_RULES)
        assert any(v.rule_id == "R5" for v in findings)

    def test_the_fixed_comparison_passes(self):
        source = (
            "def check_invariants(self):\n"
            "    for k in range(self.n_nodes):\n"
            "        max_seqno = self.log.component_max(k)\n"
            "        if not max_seqno <= self.dbvv[k]:\n"
            "            raise InvariantViolation('log component bound')\n"
        )
        findings = lint_source(source, "src/repro/core/node.py", ALL_RULES)
        assert not any(v.rule_id == "R5" for v in findings)


class TestRegisteredCodecAudit:
    """R8 audits the AST against the live wire registry, per file."""

    def test_new_unregistered_message_in_real_module_fails(self):
        # A frozen+slotted message added to the real messages module
        # without a matching register() call in repro.wire.codecs.
        source = (
            "from dataclasses import dataclass\n"
            "WORD_SIZE = 8\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class BrandNewProbe:\n"
            "    source: int\n"
            "    def wire_size(self) -> int:\n"
            "        return WORD_SIZE\n"
        )
        findings = lint_source(source, "src/repro/core/r8_probe.py", ALL_RULES)
        assert any(v.rule_id == "R8" for v in findings)

    def test_removing_a_registered_message_reports_stale_registration(self):
        # Lint a version of src/repro/core/messages.py from which every
        # class has vanished: all six core registrations become stale.
        findings = lint_source(
            "WORD_SIZE = 8\n", "src/repro/core/messages.py", ALL_RULES
        )
        stale = [v for v in findings if v.rule_id == "R8"]
        assert len(stale) == 6, [v.render() for v in findings]
        assert all("stale codec registration" in v.message for v in stale)

    def test_real_message_modules_are_fully_registered(self):
        from pathlib import Path as _Path

        root = _Path(__file__).resolve().parents[2]
        for module in (
            "src/repro/core/messages.py",
            "src/repro/core/delta.py",
            "src/repro/baselines/oracle.py",
            "src/repro/baselines/agrawal_malpani.py",
            "src/repro/baselines/per_item.py",
            "src/repro/baselines/lotus.py",
            "src/repro/baselines/wuu_bernstein.py",
        ):
            findings = lint_file(root / module, ALL_RULES)
            assert not any(v.rule_id == "R8" for v in findings), module

    def test_protocol_classes_need_no_registration(self):
        source = (
            "from typing import Protocol\n"
            "class Sized(Protocol):\n"
            "    def wire_size(self) -> int: ...\n"
        )
        findings = lint_source(source, "src/repro/core/shapes.py", ALL_RULES)
        assert not any(v.rule_id == "R8" for v in findings)

    def test_r8_scoped_to_core_and_baselines(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class LocalProbe:\n"
            "    def wire_size(self) -> int:\n"
            "        return 8\n"
        )
        findings = lint_source(source, "src/repro/cluster/probes.py", ALL_RULES)
        assert not any(v.rule_id == "R8" for v in findings)


class TestRuleScoping:
    def test_r1_does_not_fire_outside_core_cluster_baselines(self):
        source = "def f(x):\n    assert x > 0\n"
        findings = lint_source(source, "src/repro/workload/generators.py", ALL_RULES)
        assert not any(v.rule_id == "R1" for v in findings)
        findings = lint_source(source, "tests/core/test_node.py", ALL_RULES)
        assert not any(v.rule_id == "R1" for v in findings)

    def test_r1_fires_in_all_protocol_subpackages(self):
        source = "def f(x):\n    assert x > 0\n"
        for module in (
            "src/repro/core/node.py",
            "src/repro/cluster/simulation.py",
            "src/repro/baselines/lotus.py",
            "src/repro/substrate/persistence.py",
        ):
            findings = lint_source(source, module, ALL_RULES)
            assert any(v.rule_id == "R1" for v in findings), module

    def test_r4_exempts_core_and_tests(self):
        source = "def f(node):\n    node.dbvv.increment(0)\n"
        assert not lint_source(source, "src/repro/core/protocol.py", ALL_RULES)
        assert not lint_source(source, "tests/core/test_node.py", ALL_RULES)
        assert lint_source(source, "src/repro/experiments/e1.py", ALL_RULES)

    def test_fixture_scope_matches_real_module_scope(self):
        fixture = make_scope(VIOLATION_FIXTURES["R1"][0])
        real = make_scope("src/repro/core/node.py")
        assert fixture.package is not None
        assert fixture.package[:2] == real.package[:2] == ("repro", "core")

    def test_async_rules_scoped_to_net(self):
        # The same blocking/fire-and-forget shapes outside repro.net are
        # not the event loop's problem and must not fire.
        source = (
            "import asyncio, time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
            "    asyncio.create_task(f())\n"
            "    try:\n"
            "        await asyncio.sleep(0)\n"
            "    except asyncio.CancelledError:\n"
            "        pass\n"
        )
        findings = lint_source(source, "src/repro/cluster/driver.py", ALL_RULES)
        async_ids = {"R9", "R10", "R11", "R12"}
        assert not async_ids & {v.rule_id for v in findings}
        findings = lint_source(source, "src/repro/net/driver.py", ALL_RULES)
        assert async_ids - {"R10"} <= {v.rule_id for v in findings}


class TestAsyncConcurrencyAcceptance:
    """The issue's acceptance scenarios for R9-R12 against real shapes."""

    ROOT = Path(__file__).resolve().parents[2]

    def test_real_net_node_is_concurrency_clean(self):
        # The lock-guarded session path in repro.net.node must be
        # accepted as-is: the per-peer lock is the sanctioned guard.
        findings = lint_file(self.ROOT / "src/repro/net/node.py", ALL_RULES)
        assert findings == [], [v.render() for v in findings]

    def test_seeded_unlocked_cross_await_mutation_is_flagged(self):
        # sync_with with its per-peer lock removed — the shape R10
        # exists to reject.
        source = (
            "class NetNode:\n"
            "    async def sync_with(self, peer_id):\n"
            "        link = await self._ensure_link(peer_id)\n"
            "        self.frames_sent += 1\n"
            "        await write_frame(link.writer, b'x')\n"
            "        self.sessions_served += 1\n"
            "    async def _ensure_link(self, peer_id):\n"
            "        link = self._links.get(peer_id)\n"
            "        return link\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert any(v.rule_id == "R10" for v in findings)

    def test_the_lock_guarded_version_passes(self):
        source = (
            "class NetNode:\n"
            "    async def sync_with(self, peer_id):\n"
            "        lock = self._link_locks.setdefault(peer_id, Lock())\n"
            "        async with lock:\n"
            "            link = await self._ensure_link(peer_id)\n"
            "            self.frames_sent += 1\n"
            "            await write_frame(link.writer, b'x')\n"
            "            self.sessions_served += 1\n"
            "    async def _ensure_link(self, peer_id):\n"
            "        link = self._links.get(peer_id)\n"
            "        return link\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert not any(v.rule_id == "R10" for v in findings)

    def test_fire_and_forget_shutdown_shape_is_flagged(self):
        # The original fire-and-forget `ensure_future(self.stop())`.
        source = (
            "import asyncio\n"
            "class NetNode:\n"
            "    async def _handle_client_op(self, request):\n"
            "        asyncio.get_running_loop().call_soon(\n"
            "            lambda: asyncio.ensure_future(self.stop())\n"
            "        )\n"
            "        return {'ok': True}\n"
            "    async def stop(self):\n"
            "        return None\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert any(v.rule_id == "R11" for v in findings)

    def test_swallowed_cancellation_shape_is_flagged(self):
        # The original stop(): cancel, await, swallow CancelledError.
        source = (
            "import asyncio\n"
            "class NetNode:\n"
            "    async def stop(self, task):\n"
            "        task.cancel()\n"
            "        try:\n"
            "            await task\n"
            "        except asyncio.CancelledError:\n"
            "            pass\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert any(v.rule_id == "R12" for v in findings)


class TestBlockingPragma:
    """`# pragma: blocking <reason>` suppresses R9 only, reason required."""

    def test_pragma_with_reason_suppresses(self):
        source = (
            "async def serve(stopped):\n"
            "    await stopped.wait()  # pragma: blocking lifetime wait\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert not any(v.rule_id == "R9" for v in findings)

    def test_bare_pragma_does_not_suppress(self):
        source = (
            "async def serve(stopped):\n"
            "    await stopped.wait()  # pragma: blocking\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert any(v.rule_id == "R9" for v in findings)

    def test_pragma_does_not_suppress_other_rules(self):
        source = (
            "import asyncio\n"
            "async def kick(coro):\n"
            "    asyncio.create_task(coro)  # pragma: blocking not my rule\n"
        )
        findings = lint_source(source, "src/repro/net/node.py", ALL_RULES)
        assert any(v.rule_id == "R11" for v in findings)

    def test_stale_blocking_pragma_is_audited(self):
        from repro.lint.engine import audit_pragmas

        source = (
            "import asyncio\n"
            "async def serve():\n"
            "    await asyncio.sleep(1)  # pragma: blocking stale reason\n"
        )
        findings = audit_pragmas(source, "src/repro/net/node.py", ALL_RULES)
        assert any(
            v.rule_id == "PRAGMA" and "stale `pragma: blocking`" in v.message
            for v in findings
        )

    def test_bare_blocking_pragma_is_audited(self):
        from repro.lint.engine import audit_pragmas

        source = (
            "async def serve(stopped):\n"
            "    await stopped.wait()  # pragma: blocking\n"
        )
        findings = audit_pragmas(source, "src/repro/net/node.py", ALL_RULES)
        assert any(
            v.rule_id == "PRAGMA" and "without a reason" in v.message
            for v in findings
        )

    def test_live_blocking_pragma_is_not_audited(self):
        from repro.lint.engine import audit_pragmas

        source = (
            "async def serve(stopped):\n"
            "    await stopped.wait()  # pragma: blocking lifetime wait\n"
        )
        findings = audit_pragmas(source, "src/repro/net/node.py", ALL_RULES)
        assert findings == [], [v.render() for v in findings]
