"""Tests for the taint-dataflow engine behind R13–R15.

Three layers:

* **engine units** — the lattice, sources, sanitizers, cap-guard
  downgrade, and interprocedural summaries, on tiny synthetic modules;
* **acceptance** — the *real* ``repro.core.session``,
  ``repro.net.node`` and ``repro.durable.journal`` are pinned clean,
  and seeded-taint variants of the same shapes are pinned flagged;
* **mutation** — neutralizing any single ``validate_*`` call in a wired
  module makes R13 fire, proving every call site is load-bearing (none
  is decorative).
"""

import ast
import re
from pathlib import Path

import pytest

import repro.core.validate as validate_module
from repro.lint import ALL_RULES, lint_source, make_scope, rules_by_id
from repro.lint.taint import (
    CAPPED,
    CLEAN,
    SANCTIONED_SANITIZERS,
    TAINTED,
    analyze_module,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

NET_SCOPE = make_scope("src/repro/net/somefile.py")
WIRE_SCOPE = make_scope("src/repro/wire/somefile.py")


def findings(source, scope=NET_SCOPE, kinds=None):
    report = analyze_module(ast.parse(source), scope)
    if kinds is None:
        return list(report.findings)
    return list(report.of_kind(*kinds))


class TestEngine:
    def test_lattice_ordering(self):
        assert CLEAN < CAPPED < TAINTED

    def test_decode_source_reaches_sink(self):
        hits = findings(
            "def f(node, codec, frame):\n"
            "    m = codec.decode(frame)\n"
            "    node.update(m.name, m.op)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1 and hits[0].line == 3

    def test_untrusted_param_is_tainted_on_entry(self):
        hits = findings(
            "def f(node, answer):\n"
            "    node.accept_propagation(answer)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_other_params_are_trusted(self):
        assert not findings(
            "def f(node, reply):\n"
            "    node.accept_propagation(reply)\n",
            kinds=["sink"],
        )

    def test_sanitizer_result_is_clean_but_argument_stays_tainted(self):
        # Value-passing: rebinding through the validator clears taint...
        assert not findings(
            "def f(node, answer):\n"
            "    answer = validate_session_answer(answer, 1, node)\n"
            "    node.accept_propagation(answer)\n",
            kinds=["sink"],
        )
        # ...a bare call does not.
        hits = findings(
            "def f(node, answer):\n"
            "    validate_session_answer(answer, 1, node)\n"
            "    node.accept_propagation(answer)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_unregistered_validate_helper_clears_nothing(self):
        hits = findings(
            "def f(node, answer):\n"
            "    answer = validate_my_way(answer)\n"
            "    node.accept_propagation(answer)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_taint_flows_through_containers_and_unpacking(self):
        hits = findings(
            "def f(node, codec, frame):\n"
            "    a, b = codec.decode(frame)\n"
            "    pair = [a]\n"
            "    node.update(pair, b)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_decoder_reads_taint_only_in_wire_scope(self):
        source = (
            "def f(dec):\n"
            "    n = dec.uvarint()\n"
            "    return bytearray(n)\n"
        )
        assert len(findings(source, WIRE_SCOPE, kinds=["alloc"])) == 1
        assert not findings(source, NET_SCOPE, kinds=["alloc"])

    def test_count_is_capped_not_tainted(self):
        assert not findings(
            "def f(dec):\n"
            "    return bytearray(dec.count())\n",
            WIRE_SCOPE,
            kinds=["alloc"],
        )

    def test_capped_still_trips_state_sinks(self):
        hits = findings(
            "def f(node, dec):\n"
            "    node.update(dec.count(), 1)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_cap_guard_downgrades_to_capped(self):
        assert not findings(
            "def f(dec, max_len):\n"
            "    n = dec.uvarint()\n"
            "    if n > max_len:\n"
            "        raise ValueError(n)\n"
            "    return bytearray(n)\n",
            WIRE_SCOPE,
            kinds=["alloc"],
        )

    def test_non_terminal_guard_does_not_downgrade(self):
        hits = findings(
            "def f(dec, max_len):\n"
            "    n = dec.uvarint()\n"
            "    if n > max_len:\n"
            "        n = max_len\n"
            "    return bytearray(n)\n",
            WIRE_SCOPE,
            kinds=["alloc"],
        )
        assert len(hits) == 1

    def test_tainted_multiplication_is_an_alloc(self):
        hits = findings(
            "def f(dec):\n"
            "    n = dec.uvarint()\n"
            "    return b'x' * n\n",
            WIRE_SCOPE,
            kinds=["alloc"],
        )
        assert len(hits) == 1

    def test_local_function_summary_propagates_taint(self):
        hits = findings(
            "def parse(codec, frame):\n"
            "    return codec.decode(frame)\n"
            "\n"
            "def f(node, codec, frame):\n"
            "    m = parse(codec, frame)\n"
            "    node.accept_propagation(m)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_self_attribute_taint_crosses_methods(self):
        hits = findings(
            "class C:\n"
            "    def stash(self, codec, frame):\n"
            "        self.last = codec.decode(frame)\n"
            "\n"
            "    def use(self, node):\n"
            "        node.accept_propagation(self.last)\n",
            kinds=["sink"],
        )
        assert len(hits) == 1

    def test_swallowed_validation_error_detected(self):
        hits = findings(
            "def f(codec, frame):\n"
            "    try:\n"
            "        return codec.decode(frame)\n"
            "    except ValueError:\n"
            "        pass\n",
            kinds=["swallow"],
        )
        assert len(hits) == 1

    def test_logged_handler_is_not_a_swallow(self):
        assert not findings(
            "def f(codec, frame, log):\n"
            "    try:\n"
            "        return codec.decode(frame)\n"
            "    except ValueError as exc:\n"
            "        log.warning('bad frame: %s', exc)\n"
            "        raise\n",
            kinds=["swallow"],
        )

    def test_clamping_untrusted_value_detected(self):
        hits = findings(
            "def f(codec, frame, max_items):\n"
            "    m = codec.decode(frame)\n"
            "    return min(m.count, max_items)\n",
            kinds=["clamp"],
        )
        assert len(hits) == 1


class TestSanitizerRegistry:
    def test_validate_api_and_sanctioned_set_agree(self):
        """Every exported validator is sanctioned, so adding one to
        ``repro.core.validate`` without registering it in the taint
        engine (or vice versa) fails here."""
        exported = {
            name
            for name in validate_module.__all__
            if name.startswith("validate_")
        }
        assert exported <= SANCTIONED_SANITIZERS
        # The one sanitizer living outside repro.core.validate:
        assert "validate_record" in SANCTIONED_SANITIZERS
        assert SANCTIONED_SANITIZERS == exported | {"validate_record"}


WIRED_MODULES = [
    "repro/core/session.py",
    "repro/net/node.py",
    "repro/durable/journal.py",
]


def _lint_real(rel_path, source=None):
    path = REPO_SRC / rel_path
    text = source if source is not None else path.read_text()
    return lint_source(text, f"src/{rel_path}", ALL_RULES)


class TestAcceptance:
    @pytest.mark.parametrize("rel_path", WIRED_MODULES)
    def test_wired_module_is_lint_clean(self, rel_path):
        violations = _lint_real(rel_path)
        assert violations == [], [v.render() for v in violations]

    def test_seeded_taint_in_session_shape_is_flagged(self):
        # conclude() with the validator call removed — the pre-R13 shape.
        source = (
            "class PullSession:\n"
            "    def conclude(self, answer):\n"
            "        outcome, _ = self._node.accept_propagation(answer)\n"
            "        return outcome\n"
        )
        hits = lint_source(
            source, "src/repro/core/session.py", rules_by_id("R13")
        )
        assert len(hits) == 1 and hits[0].rule_id == "R13"

    def test_seeded_taint_in_net_shape_is_flagged(self):
        source = (
            "async def sync_with(self, peer_id, link, pull):\n"
            "    answer = link.codec.decode(0, 1, await link.read())\n"
            "    return pull.conclude(answer)\n"
        )
        hits = lint_source(source, "src/repro/net/node.py", rules_by_id("R13"))
        assert len(hits) == 1 and hits[0].rule_id == "R13"


class TestMutation:
    """Remove any one ``validate_*`` call from a wired module and R13
    must fire — every sanitizer call site is individually load-bearing.
    """

    CALL = re.compile(r"\bvalidate_\w+\(")

    @pytest.mark.parametrize("rel_path", WIRED_MODULES)
    def test_every_validator_call_site_is_load_bearing(self, rel_path):
        original = (REPO_SRC / rel_path).read_text()
        sites = list(self.CALL.finditer(original))
        assert sites, f"{rel_path} wires no validators at all?"
        for match in sites:
            mutated = (
                original[: match.start()]
                + "_tainted_passthrough("
                + original[match.end() :]
            )
            hits = [
                v
                for v in _lint_real(rel_path, source=mutated)
                if v.rule_id == "R13"
            ]
            assert hits, (
                f"neutralizing {match.group(0)!r} at offset {match.start()} "
                f"in {rel_path} did not trip R13 — decorative validator?"
            )
