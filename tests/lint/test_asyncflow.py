"""Unit suite for the await-point control-flow analysis.

These tests pin the *flow semantics* down with a toy mutation model
(any assignment to a name starting with ``mut``), independent of R10's
shared-state model: branch joins, dead paths, single-pass loops, guard
regions, and the synthetic awaits of ``async with`` / ``async for``.
"""

import ast
import textwrap

from repro.lint.asyncflow import (
    AtomicityScanner,
    is_lock_expression,
    iter_awaits,
)


def toy_mutations(stmt):
    events = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith("mut"):
                    events.append((node, target.id))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id.startswith("mut"):
                events.append((node, target.id))
    return events


def spans_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    )
    return AtomicityScanner(toy_mutations).scan(fn)


class TestStraightLine:
    def test_mutation_await_mutation_is_a_span(self):
        spans = spans_of(
            """
            async def f():
                mut_a = 1
                await g()
                mut_b = 2
            """
        )
        assert len(spans) == 1
        assert spans[0].first_label == "mut_a"
        assert spans[0].second_label == "mut_b"

    def test_mutations_before_the_await_are_atomic(self):
        spans = spans_of(
            """
            async def f():
                mut_a = 1
                mut_b = 2
                await g()
            """
        )
        assert spans == []

    def test_await_then_mutations_is_atomic(self):
        spans = spans_of(
            """
            async def f():
                await g()
                mut_a = 1
                mut_b = 2
            """
        )
        assert spans == []

    def test_await_and_mutation_in_one_statement_not_paired(self):
        # Lexical order within one simple statement: awaits first, then
        # mutations — `mut = await g()` completes the await before the
        # bind, so it cannot be the *first* half of a span on its own.
        spans = spans_of(
            """
            async def f():
                mut_a = await g()
                mut_b = 2
            """
        )
        assert spans == []

    def test_each_second_mutation_reported_once(self):
        spans = spans_of(
            """
            async def f():
                mut_a = 1
                await g()
                await h()
                mut_b = 2
                await g()
                mut_c = 3
            """
        )
        assert [(s.first_label, s.second_label) for s in spans] == [
            ("mut_a", "mut_b"),
            ("mut_b", "mut_c"),
        ]


class TestBranches:
    def test_mutation_in_one_arm_await_in_the_other_not_paired(self):
        spans = spans_of(
            """
            async def f(cond):
                if cond:
                    mut_a = 1
                else:
                    await g()
                mut_b = 2
            """
        )
        assert spans == []

    def test_mutation_in_an_arm_pairs_with_await_after_the_join(self):
        spans = spans_of(
            """
            async def f(cond):
                if cond:
                    mut_a = 1
                await g()
                mut_b = 2
            """
        )
        assert len(spans) == 1
        assert spans[0].first_label == "mut_a"

    def test_returning_arm_contributes_nothing_to_the_join(self):
        spans = spans_of(
            """
            async def f(cond):
                if cond:
                    mut_a = 1
                    return
                await g()
                mut_b = 2
            """
        )
        assert spans == []

    def test_raise_kills_the_path(self):
        spans = spans_of(
            """
            async def f(cond):
                mut_a = 1
                if cond:
                    raise ValueError("no")
                mut_b = 2
                await g()
            """
        )
        assert spans == []


class TestLoops:
    def test_back_edge_sequences_are_complete_transactions(self):
        # mut -> await across iterations: each iteration's transaction
        # finishes before its own await; the once-through walk accepts.
        spans = spans_of(
            """
            async def f():
                while True:
                    mut_a = 1
                    await g()
            """
        )
        assert spans == []

    def test_span_inside_one_iteration_is_reported(self):
        spans = spans_of(
            """
            async def f():
                while True:
                    mut_a = 1
                    await g()
                    mut_b = 2
            """
        )
        assert len(spans) == 1

    def test_mutation_before_loop_pairs_with_loop_await(self):
        spans = spans_of(
            """
            async def f(items):
                mut_a = 1
                for item in items:
                    await g(item)
                mut_b = 2
            """
        )
        assert len(spans) == 1

    def test_async_for_awaits_before_the_body(self):
        spans = spans_of(
            """
            async def f(aiter):
                mut_a = 1
                async for item in aiter:
                    mut_b = 2
            """
        )
        assert len(spans) == 1
        assert spans[0].second_label == "mut_b"


class TestGuardRegions:
    def test_lock_guarded_region_is_sanctioned(self):
        spans = spans_of(
            """
            async def f(self):
                async with self._lock:
                    mut_a = 1
                    await g()
                    mut_b = 2
            """
        )
        assert spans == []

    def test_non_lock_async_with_still_awaits(self):
        # `async with conn:` awaits __aenter__, so a prior mutation
        # pairs with a mutation inside the (unguarded) body.
        spans = spans_of(
            """
            async def f(conn):
                mut_a = 1
                async with conn:
                    mut_b = 2
            """
        )
        assert len(spans) == 1

    def test_mutation_before_the_lock_is_not_guarded(self):
        spans = spans_of(
            """
            async def f(self):
                mut_a = 1
                async with self._lock:
                    await g()
                mut_b = 2
            """
        )
        assert len(spans) == 1
        assert spans[0].second_label == "mut_b"

    def test_sync_with_is_not_an_await_point(self):
        spans = spans_of(
            """
            async def f(ctx):
                mut_a = 1
                with ctx:
                    mut_b = 2
            """
        )
        assert spans == []


class TestTryExcept:
    def test_handler_entered_from_mid_body_sees_awaited_pendings(self):
        spans = spans_of(
            """
            async def f():
                try:
                    mut_a = 1
                    await g()
                except OSError:
                    mut_b = 2
            """
        )
        assert len(spans) == 1
        assert spans[0].second_label == "mut_b"


class TestNestedScopes:
    def test_nested_defs_do_not_leak_awaits_or_mutations(self):
        spans = spans_of(
            """
            async def f():
                mut_a = 1
                async def inner():
                    await g()
                    mut_b = 2
                mut_c = 3
            """
        )
        assert spans == []

    def test_iter_awaits_skips_nested_functions(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                async def f():
                    await g()
                    async def inner():
                        await h()
                """
            )
        )
        fn = tree.body[0]
        assert len(list(iter_awaits(fn))) == 1


class TestLockRecognition:
    def _expr(self, text):
        return ast.parse(text, mode="eval").body

    def test_conventional_lock_spellings(self):
        for text in (
            "lock",
            "self._lock",
            "self._link_locks[peer_id]",
            "self._link_locks.setdefault(peer_id, asyncio.Lock())",
            "mutex",
            "self._semaphore",
        ):
            assert is_lock_expression(self._expr(text)), text

    def test_non_lock_contexts(self):
        for text in ("conn", "self.session", "open_connection(host)"):
            assert not is_lock_expression(self._expr(text)), text
