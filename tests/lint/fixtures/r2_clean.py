"""R2 clean counterparts: every sanctioned way to handle both faults."""

from repro.errors import MessageLostError, NodeDownError, ReplicationError


def pull_tuple(nodes, dst, src, network):
    try:
        nodes[dst].sync_with(nodes[src], network)
    except (NodeDownError, MessageLostError):
        pass


def pull_sibling(nodes, dst, src, network):
    try:
        nodes[dst].sync_with(nodes[src], network)
    except NodeDownError:
        pass
    except MessageLostError:
        pass


def pull_base_class(nodes, dst, src, network):
    try:
        nodes[dst].sync_with(nodes[src], network)
    except ReplicationError:
        pass
