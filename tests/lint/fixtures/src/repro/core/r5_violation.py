"""R5 fixture: the PR 1 tautology, verbatim shape.

``max_seqno <= max(dbvv[k], max_seqno)`` holds for every value of both
sides, so the invariant it was meant to express could never fail.
"""

from repro.errors import InvariantViolation


def check_invariants(dbvv, log):
    for k in range(len(dbvv)):
        max_seqno = log.max_seqno(k)
        if not max_seqno <= max(dbvv[k], max_seqno):
            raise InvariantViolation(f"log component {k} claims seqno {max_seqno}")
