"""R8 fixture: a wire message with no codec in the type registry.

The class is a perfectly formed R6 message (frozen, slotted dataclass)
— the *only* defect is that ``repro.wire.codecs`` knows nothing about
it, so encoded mode would die with ``WireFormatError`` the first time
the protocol ships one.
"""

from dataclasses import dataclass

WORD_SIZE = 8


@dataclass(frozen=True, slots=True)
class UnregisteredProbe:
    source: int

    def wire_size(self) -> int:
        return WORD_SIZE
