"""R1 fixture: a bare assert guarding a protocol invariant in core.

Under ``python -O`` this check vanishes and a corrupt replica keeps
propagating.
"""


class Store:
    def __init__(self) -> None:
        self.size = 0

    def check_invariants(self) -> None:
        assert self.size >= 0, "size must be non-negative"
