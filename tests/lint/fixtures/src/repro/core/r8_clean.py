"""R8 clean counterpart: the shapes R8 must leave alone.

A ``Protocol`` describing the sized-message interface is not a wire
message (it is never instantiated, so it needs no codec), and a class
without ``wire_size`` is not on the wire at all — neither may require a
registry entry.  The positive case — registered real messages passing —
is covered by linting the live tree, which the self-check test does.
"""

from typing import Protocol


class SizedMessage(Protocol):
    def wire_size(self) -> int: ...


class CodecCacheStats:
    def __init__(self) -> None:
        self.streams = 0

    def note_stream(self) -> None:
        self.streams += 1
