"""R1 clean counterpart: the invariant raises, so it survives ``-O``."""

from repro.errors import InvariantViolation


class Store:
    def __init__(self) -> None:
        self.size = 0

    def check_invariants(self) -> None:
        if self.size < 0:
            raise InvariantViolation(f"size must be non-negative, got {self.size}")
