"""R5 clean counterpart: the comparison the tautology was meant to be."""

from repro.errors import InvariantViolation


def check_invariants(dbvv, log):
    for k in range(len(dbvv)):
        max_seqno = log.max_seqno(k)
        if not max_seqno <= dbvv[k]:
            raise InvariantViolation(
                f"log component {k} claims seqno {max_seqno} beyond DBVV "
                f"{dbvv[k]}"
            )
