"""R7 clean counterpart: session-path code iterates *message content*
(the O(m) shape), and the one inherent full scan carries a reasoned
``# pragma: full-scan`` annotation."""


class TailShippingNode:
    def __init__(self, node_id, n_nodes, items):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self._values = {name: b"" for name in items}
        self._log = []

    def sync_with(self, peer, transport):
        message = transport.deliver(self.node_id, peer.node_id, object())
        applied = 0
        for record in message.records:
            self._values[record.item] = record.value
            applied += 1
        return applied

    def _serve_fetch(self, fetch):
        return tuple(self._values[name] for name in fetch.names)

    def _build_gossip(self, requester):
        return [record for record in self._log]  # pragma: full-scan fixture stand-in for an inherent whole-log scan
