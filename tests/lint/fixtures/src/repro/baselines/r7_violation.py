"""R7 fixture: session-path functions that scan the full item or node
space — the O(N) shape the paper's protocol exists to avoid."""


class ScanHappyNode:
    def __init__(self, node_id, n_nodes, items):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self._values = {name: b"" for name in items}
        self._ivvs = {name: () for name in items}
        self._log = []
        self._table = [[0] * n_nodes for _ in range(n_nodes)]

    def sync_with(self, peer, transport):
        changed = []
        for name in self._values:
            changed.append(name)
        for k in range(self.n_nodes):
            changed.append(k)
        return changed

    def _serve_ivv_list(self, request):
        return tuple((name, ivv) for name, ivv in self._ivvs.items())

    def _build_gossip(self, requester):
        selected = [record for record in self._log]
        rows = tuple(tuple(row) for row in self._table)
        return selected, rows
