"""R15 violation: validation failures silently dropped or clamped
instead of surfacing as typed errors."""


def swallow_bad_frame(codec, frame):
    try:
        return codec.decode(frame)
    except ValueError:
        pass


def clamp_count(codec, frame, max_items):
    message = codec.decode(frame)
    return min(message.count, max_items)
