"""R15 clean twin: decode and validation failures either propagate or
are logged — never silently discarded, never clamped into range."""

import logging

from repro.errors import WireFormatError

logger = logging.getLogger(__name__)


def surface_bad_frame(codec, frame):
    try:
        return codec.decode(frame)
    except WireFormatError as exc:
        logger.warning("dropping malformed frame: %s", exc)
        raise


def reject_over_cap(codec, frame, max_items):
    message = codec.decode(frame)
    if message.count > max_items:
        raise WireFormatError(
            f"element count {message.count} exceeds {max_items}"
        )
    return message.count
