"""R10 fixture: shared-state transitions split by an await point.

Every method mutates shared node state twice with an await between the
mutations and no ``async with`` lock around them — the half-applied
transition is visible to every other coroutine on the loop.
"""

import asyncio


class RacyReplica:
    def __init__(self) -> None:
        self.frames_sent = 0
        self.bytes_sent = 0
        self._links: dict[int, object] = {}
        self._link_locks: dict[int, asyncio.Lock] = {}

    async def publish(self, frame: bytes, writer) -> None:
        self.frames_sent += 1
        await writer.drain()
        self.bytes_sent += len(frame)  # counters disagree while suspended

    async def rebuild_link(self, peer_id: int, link: object) -> None:
        self._links.pop(peer_id, None)
        await asyncio.sleep(0)
        self._links[peer_id] = link  # link table empty across the await
