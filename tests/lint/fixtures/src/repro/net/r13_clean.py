"""R13 clean twin: the same flows, with every decoded value passing
through a sanctioned validator before it reaches a state sink.

Sanitizers are value-passing: only the *result* of the ``validate_*``
call is clean, so the wiring style is ``x = validate_...(x, ...)``.
"""

from repro.core.validate import (
    validate_propagation_request,
    validate_session_answer,
)


def serve_request(node, codec, frame):
    request = codec.decode(frame)
    checked = validate_propagation_request(request, node)
    return node.send_propagation(checked)


def adopt_answer(node, peer_id, answer):
    answer = validate_session_answer(answer, peer_id, node)
    node.accept_propagation(answer)
