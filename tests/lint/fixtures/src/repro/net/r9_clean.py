"""R9 clean fixture: async-native waiting, bounded or annotated."""

import asyncio


class PatientReplica:
    async def nap(self) -> None:
        await asyncio.sleep(0.5)

    async def dial(self, host: str, port: int) -> None:
        await asyncio.open_connection(host, port)

    async def wait_bounded(self, event: asyncio.Event) -> None:
        await asyncio.wait_for(event.wait(), timeout=5.0)

    async def wait_for_shutdown(self, stopped: asyncio.Event) -> None:
        await stopped.wait()  # pragma: blocking serving until shutdown is the job
