"""R9 fixture: blocking calls and unbounded waits inside ``async def``."""

import asyncio
import socket
import subprocess
import time


class SlowReplica:
    async def nap(self) -> None:
        time.sleep(0.5)  # blocks the whole event loop

    async def dial(self, host: str, port: int) -> None:
        socket.create_connection((host, port))  # sync connect

    async def shell(self) -> None:
        subprocess.run(["true"])  # sync process spawn

    async def read_config(self, path: str) -> bytes:
        with open(path, "rb") as fh:  # sync file I/O
            return fh.read()

    async def wait_forever(self, event: asyncio.Event) -> None:
        await event.wait()  # unbounded wait, no deadline
