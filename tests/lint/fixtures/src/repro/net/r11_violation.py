"""R11 fixture: fire-and-forget tasks via raw asyncio spawns."""

import asyncio


class FireAndForget:
    async def kick(self) -> None:
        asyncio.create_task(self._work())  # dropped: weakly referenced
        asyncio.ensure_future(self._cleanup())  # exception never retrieved

    async def _work(self) -> None:
        await asyncio.sleep(0)

    async def _cleanup(self) -> None:
        await asyncio.sleep(0)
