"""R13 violation: wire-decoded values reach protocol-state mutation
without passing through a ``repro.core.validate`` sanitizer."""


def apply_frame_directly(node, codec, frame):
    # decode() marks its result untrusted; .name/.op inherit the taint.
    message = codec.decode(frame)
    node.update(message.name, message.op)


def adopt_answer(node, answer):
    # ``answer`` names a trust-boundary parameter: tainted on entry.
    node.accept_propagation(answer)
