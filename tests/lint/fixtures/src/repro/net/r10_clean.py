"""R10 clean fixture: transitions finish before awaiting, or sit
inside an ``async with`` lock region."""

import asyncio


class DisciplinedReplica:
    def __init__(self) -> None:
        self.frames_sent = 0
        self.bytes_sent = 0
        self._links: dict[int, object] = {}
        self._link_locks: dict[int, asyncio.Lock] = {}

    async def publish(self, frame: bytes, writer) -> None:
        # Both counters advance in the same atomic segment.
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        await writer.drain()

    async def rebuild_link(self, peer_id: int, link: object) -> None:
        lock = self._link_locks.setdefault(peer_id, asyncio.Lock())
        async with lock:
            self._links.pop(peer_id, None)
            await asyncio.sleep(0)
            self._links[peer_id] = link

    async def branchy(self, frame: bytes, writer) -> None:
        # A mutation in one arm never pairs with the other arm's await.
        if frame:
            self.frames_sent += 1
        else:
            await writer.drain()
        return None
