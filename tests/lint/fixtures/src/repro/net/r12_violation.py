"""R12 fixture: handlers that swallow cancellation or erase types."""

import asyncio


async def poll_forever(queue) -> None:
    while True:
        try:
            await queue.get()
        except asyncio.CancelledError:  # cancelled task keeps running
            pass


async def serve(handler) -> None:
    try:
        await handler()
    except Exception:  # erases the typed repro.errors taxonomy
        pass


async def drain(writer) -> None:
    try:
        await writer.drain()
    except:  # noqa: E722 - the bare form of the same swallow
        pass
