"""R12 clean fixture: cancellation re-raised, broad catches converted."""

import asyncio

from repro.errors import NetworkSessionError, WireFormatError


async def cancel_and_reap(task: asyncio.Task) -> None:
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        if not task.cancelled():
            raise  # the cancellation was not ours; pass it on


async def serve(handler) -> None:
    try:
        await handler()
    except Exception as exc:
        raise NetworkSessionError(f"session failed: {exc}") from exc


async def typed_handlers(handler) -> None:
    try:
        await handler()
    except (WireFormatError, OSError):
        return None
