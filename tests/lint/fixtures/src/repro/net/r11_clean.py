"""R11 clean fixture: every task goes through the tracked spawner."""

import asyncio

from repro.net.tasks import TaskTracker, spawn


class Tracked:
    def __init__(self) -> None:
        self._tracker = TaskTracker(name="fixture")

    async def kick(self) -> None:
        self._tracker.spawn(self._work(), name="work")
        spawn(self._cleanup(), name="cleanup")

    async def _work(self) -> None:
        await asyncio.sleep(0)

    async def _cleanup(self) -> None:
        await asyncio.sleep(0)
