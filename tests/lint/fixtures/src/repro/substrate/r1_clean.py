"""R1 clean counterpart: malformed snapshot input raises, so the
validation survives ``python -O``."""

from repro.substrate.persistence import SnapshotError


def decode_patch(offset: int, data: bytes) -> tuple[int, bytes]:
    if offset < 0:
        raise SnapshotError("negative patch offset in operation line")
    return offset, data
