"""R1 fixture: a bare assert validating snapshot input in substrate.

Under ``python -O`` the malformed operation line sails through and
corrupts whatever replica the snapshot is loaded into.
"""


def decode_patch(offset: int, data: bytes) -> tuple[int, bytes]:
    assert offset >= 0, "patch offset must be non-negative"
    return offset, data
