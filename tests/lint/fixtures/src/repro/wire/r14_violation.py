"""R14 violation: wire-decoded integers size allocations with no cap
check first — a hostile length prefix becomes a memory bomb."""


def decode_names(dec):
    n = dec.uvarint()
    names = []
    for _ in range(n):
        names.append(dec.string())
    return names


def read_body(dec):
    length = dec.uvarint()
    return bytearray(length)


def pad(dec):
    n = dec.uvarint()
    return b"\x00" * n
