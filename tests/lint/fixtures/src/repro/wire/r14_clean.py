"""R14 clean twin: element counts go through the capped
``Decoder.count()`` reader, and raw lengths are bounds-checked (raising
a typed error) before they size any allocation."""

from repro.errors import WireFormatError


def decode_names(dec):
    names = []
    for _ in range(dec.count()):
        names.append(dec.string())
    return names


def read_body(dec, max_len):
    length = dec.uvarint()
    if length > max_len:
        raise WireFormatError(f"body length {length} exceeds {max_len}")
    return bytearray(length)


def pad(dec, max_pad):
    n = dec.uvarint()
    if n > max_pad:
        raise WireFormatError(f"pad length {n} exceeds {max_pad}")
    return b"\x00" * n
