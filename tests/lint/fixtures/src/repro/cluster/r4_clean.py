"""R4 clean counterpart: reads are free; writes go through the node API."""


def observe(node):
    return node.dbvv.dominates(node.store["x"].ivv)


def update_properly(node, item, op):
    node.user_update(item, op)


def self_mutation_is_fine(vector_owner):
    class Owner:
        def bump(self):
            self.dbvv.increment(0)

    return Owner
