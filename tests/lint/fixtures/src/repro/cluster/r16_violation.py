"""R16 violation fixture: fresh allocations on per-round hot paths."""

from repro.core.version_vector import VersionVector


class Sim:
    def run_round(self):
        for node_id, peer in self.schedule:
            scratch = VersionVector(self.n_nodes)  # flagged: fresh VV per session
            scratch.merge_from(self.nodes[node_id].dbvv)
            self._run_session(node_id, peer)

    def _run_session(self, node_id, peer):
        baseline = VersionVector.zero(self.n_nodes)  # flagged: fresh VV
        frame = bytearray()  # flagged: fresh buffer where the codec pool exists
        frame += b"\x00"
        return baseline, frame

    def _record_stamp(self, node_id, peer, session):
        copy = VersionVector.from_counts(session.counts)  # flagged: fresh VV
        self._stamps[(node_id, peer)] = copy
