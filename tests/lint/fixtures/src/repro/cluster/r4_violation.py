"""R4 fixture: driver code mutating core protocol state directly."""


def corrupt_vector(node):
    node.dbvv.increment(0)


def corrupt_log(node):
    node.log.add(0, "x", 1)


def replace_ivv(entry, vv):
    entry.ivv = vv


def poke_internals(node):
    return node.log._by_item
