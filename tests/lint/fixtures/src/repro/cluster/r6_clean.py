"""R6 clean counterpart: frozen+slotted messages; Protocols are exempt."""

from dataclasses import dataclass
from typing import Protocol

WORD_SIZE = 8


@dataclass(frozen=True, slots=True)
class Probe:
    src: int

    def wire_size(self) -> int:
        return WORD_SIZE


class SizedMessage(Protocol):
    def wire_size(self) -> int: ...
