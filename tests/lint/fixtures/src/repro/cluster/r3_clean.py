"""R3 clean counterpart: injected seeded RNG, simulated clock, sorted sets."""

import random


def make_rng(seed):
    return random.Random(seed)


def jitter(rng):
    return rng.random()


def now(clock):
    return clock.now()


def stable_order(node_ids):
    order = []
    for node_id in sorted({2, 0, 1}):
        order.append(node_id)
    return order


def session_id(node_id, counter):
    return (node_id, counter)


def stable_sort(nodes):
    return sorted(nodes, key=lambda node: node.node_id)
