"""R16 clean fixture: per-round hot paths reuse hoisted scratch state."""

from repro.core.version_vector import VersionVector


class Sim:
    def __init__(self, n_nodes):
        # Allocated once outside the round loop; every round reuses it
        # through the in-place APIs.
        self.n_nodes = n_nodes
        self._scratch = VersionVector(n_nodes)

    def run_round(self):
        for node_id, peer in self.schedule:
            self._scratch.merge_from(self.nodes[node_id].dbvv)
            self._run_session(node_id, peer)

    def _run_session(self, node_id, peer):
        encoder = self.codec.lease(node_id, peer)  # pooled buffer
        encoder.reset()
        return encoder

    def _record_stamp(self, node_id, peer, session):
        # Stamps hold references to already-materialized state; nothing
        # fresh is built per session.
        self._stamps[(node_id, peer)] = session.version
