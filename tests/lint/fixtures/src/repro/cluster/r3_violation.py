"""R3 fixture: every kind of nondeterminism the rule guards against."""

import os
import random
import time
import uuid


def jitter():
    return random.random()


def now():
    return time.time()


def unseeded_rng():
    return random.Random()


def leak_set_order(node_ids):
    order = []
    for node_id in {2, 0, 1}:
        order.append(node_id)
    return order


def fresh_session_id():
    return uuid.uuid4()


def fresh_nonce():
    return os.urandom(8)


def address_order(nodes):
    return sorted(nodes, key=id)
