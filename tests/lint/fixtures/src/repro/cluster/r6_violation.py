"""R6 fixture: wire messages that are mutable or unslotted."""

from dataclasses import dataclass

WORD_SIZE = 8


@dataclass
class MutableProbe:
    src: int

    def wire_size(self) -> int:
        return WORD_SIZE


@dataclass(frozen=True)
class FrozenButUnslotted:
    src: int

    def wire_size(self) -> int:
        return WORD_SIZE


class PlainMessage:
    def wire_size(self) -> int:
        return WORD_SIZE
