"""R2 fixture: catches NodeDownError but lets MessageLostError escape.

This is the exact shape of the PR 1 bug: best-effort code written for a
crash-only world, run against a lossy network.
"""

from repro.errors import NodeDownError


def pull(nodes, dst, src, network):
    try:
        nodes[dst].sync_with(nodes[src], network)
    except NodeDownError:
        pass
