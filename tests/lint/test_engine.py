"""Engine behavior: scoping, suppression pragmas, file discovery, CLI."""

import subprocess
import sys
from pathlib import Path

from repro.lint import ALL_RULES, lint_source, make_scope
from repro.lint.engine import audit_pragmas, collect_files
from repro.lint.rules import rules_by_id

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

BARE_ASSERT = "def f(x):\n    assert x > 0\n"


class TestScoping:
    def test_src_file_classifies_into_package(self):
        scope = make_scope("src/repro/core/node.py")
        assert scope.in_src
        assert scope.package == ("repro", "core", "node.py")
        assert scope.in_subpackage("core")
        assert not scope.in_subpackage("cluster")

    def test_test_file_is_outside_package(self):
        scope = make_scope("tests/core/test_node.py")
        assert not scope.in_src
        assert scope.package is None

    def test_last_src_repro_marker_wins(self):
        scope = make_scope("tests/lint/fixtures/src/repro/core/r1_violation.py")
        assert scope.in_subpackage("core")

    def test_absolute_paths_classify_too(self):
        scope = make_scope("/root/repo/src/repro/cluster/network.py")
        assert scope.in_subpackage("cluster")


class TestPragmas:
    def test_line_pragma_suppresses_named_rule(self):
        source = "def f(x):\n    assert x > 0  # lint: skip=R1\n"
        assert lint_source(source, "src/repro/core/m.py", ALL_RULES) == []

    def test_line_pragma_with_wrong_rule_does_not_suppress(self):
        source = "def f(x):\n    assert x > 0  # lint: skip=R3\n"
        findings = lint_source(source, "src/repro/core/m.py", ALL_RULES)
        assert any(v.rule_id == "R1" for v in findings)

    def test_line_pragma_suppresses_comma_separated_rules(self):
        source = "def f(n):\n    n.dbvv.increment(0)  # lint: skip=R4, R3\n"
        assert lint_source(source, "src/repro/experiments/e.py", ALL_RULES) == []

    def test_skip_file_pragma_suppresses_everything(self):
        source = "# lint: skip-file\n" + BARE_ASSERT
        assert lint_source(source, "src/repro/core/m.py", ALL_RULES) == []

    def test_skip_file_pragma_only_honoured_in_header(self):
        source = BARE_ASSERT + "\n\n\n\n\n# lint: skip-file\n"
        findings = lint_source(source, "src/repro/core/m.py", ALL_RULES)
        assert any(v.rule_id == "R1" for v in findings)


FULL_SCAN_LOOP = (
    "def sync_with(self, peer, transport):\n"
    "    for name in self._values:{comment}\n"
    "        pass\n"
)


class TestFullScanPragma:
    def test_reasoned_pragma_suppresses_r7(self):
        source = FULL_SCAN_LOOP.format(
            comment="  # pragma: full-scan inherent to this baseline"
        )
        assert lint_source(source, "src/repro/baselines/b.py", ALL_RULES) == []

    def test_bare_pragma_does_not_suppress(self):
        source = FULL_SCAN_LOOP.format(comment="  # pragma: full-scan")
        findings = lint_source(source, "src/repro/baselines/b.py", ALL_RULES)
        assert any(v.rule_id == "R7" for v in findings)


class TestPragmaAudit:
    def test_live_pragmas_pass_the_audit(self):
        source = FULL_SCAN_LOOP.format(
            comment="  # pragma: full-scan inherent to this baseline"
        )
        assert audit_pragmas(source, "src/repro/baselines/b.py", ALL_RULES) == []

    def test_stale_skip_pragma_is_flagged(self):
        source = "def f(x):\n    return x  # lint: skip=R1\n"
        findings = audit_pragmas(source, "src/repro/core/m.py", ALL_RULES)
        assert any("stale" in v.message for v in findings)
        assert all(v.rule_id == "PRAGMA" for v in findings)

    def test_stale_full_scan_pragma_is_flagged(self):
        source = (
            "def sync_with(self, message):\n"
            "    for record in message.records:  # pragma: full-scan old reason\n"
            "        pass\n"
        )
        findings = audit_pragmas(source, "src/repro/baselines/b.py", ALL_RULES)
        assert any("stale" in v.message for v in findings)

    def test_bare_full_scan_pragma_is_flagged(self):
        source = FULL_SCAN_LOOP.format(comment="  # pragma: full-scan")
        findings = audit_pragmas(source, "src/repro/baselines/b.py", ALL_RULES)
        assert any("without a reason" in v.message for v in findings)

    def test_stale_skip_file_pragma_is_flagged(self):
        source = "# lint: skip-file\ndef f(x):\n    return x\n"
        findings = audit_pragmas(source, "src/repro/core/m.py", ALL_RULES)
        assert any("skip-file" in v.message for v in findings)

    def test_pragma_text_inside_strings_is_ignored(self):
        source = 'DOC = "use # pragma: full-scan <reason> to annotate"\n'
        assert audit_pragmas(source, "src/repro/core/m.py", ALL_RULES) == []

    def test_unselected_rules_are_not_judged(self):
        source = "def f(x):\n    return x  # lint: skip=R1\n"
        rules = rules_by_id("R3")
        assert audit_pragmas(source, "src/repro/core/m.py", rules) == []


class TestParseFailures:
    def test_unparseable_file_reports_parse_violation(self):
        findings = lint_source("def f(:\n", "src/repro/core/broken.py", ALL_RULES)
        assert len(findings) == 1
        assert findings[0].rule_id == "PARSE"


class TestFileDiscovery:
    def test_fixture_directories_are_skipped_in_walks(self):
        files = collect_files([REPO_ROOT / "tests" / "lint"])
        assert not any("fixtures" in f.parts for f in files)

    def test_explicitly_named_fixture_file_is_still_collected(self):
        target = FIXTURES / "src" / "repro" / "core" / "r1_violation.py"
        assert target in collect_files([target])

    def test_non_python_files_are_ignored(self):
        assert collect_files([FIXTURES / "README.md"]) == []


class TestRegistry:
    def test_all_sixteen_rules_registered_in_order(self):
        assert [r.rule_id for r in ALL_RULES] == [f"R{i}" for i in range(1, 17)]

    def test_rule_ids_are_unique_and_documented(self):
        ids = [r.rule_id for r in ALL_RULES]
        assert len(ids) == len(set(ids))
        for rule in ALL_RULES:
            assert rule.summary, rule.rule_id
            assert rule.name != "abstract", rule.rule_id

    def test_rules_by_id_selects_subset(self):
        assert [r.rule_id for r in rules_by_id("R3", "R1")] == ["R1", "R3"]

    def test_rules_by_id_rejects_unknown(self):
        try:
            rules_by_id("R99")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_violating_file_exits_nonzero_and_reports(self):
        target = "tests/lint/fixtures/src/repro/core/r1_violation.py"
        result = self._run(target)
        assert result.returncode == 1
        assert "R1" in result.stdout

    def test_clean_file_exits_zero(self):
        result = self._run("tests/lint/fixtures/src/repro/core/r1_clean.py")
        assert result.returncode == 0

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in result.stdout

    def test_select_limits_rules(self):
        target = "tests/lint/fixtures/src/repro/core/r1_violation.py"
        result = self._run("--select", "R5", target)
        assert result.returncode == 0  # R1 violation invisible to R5

    def test_no_paths_is_a_usage_error(self):
        assert self._run().returncode == 2

    def test_summary_counts_per_rule(self):
        target = "tests/lint/fixtures/src/repro/cluster/r3_violation.py"
        result = self._run(target)
        assert result.returncode == 1
        assert "R3:" in result.stderr

    def test_stale_pragma_fails_the_run(self, tmp_path):
        target = tmp_path / "stale.py"
        target.write_text("def f(x):\n    return x  # lint: skip=R1\n")
        result = self._run(str(target))
        assert result.returncode == 1
        assert "PRAGMA" in result.stdout

    def test_no_audit_skips_the_pragma_pass(self, tmp_path):
        target = tmp_path / "stale.py"
        target.write_text("def f(x):\n    return x  # lint: skip=R1\n")
        result = self._run("--no-audit", str(target))
        assert result.returncode == 0
