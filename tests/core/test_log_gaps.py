"""Regression tests for imported log gaps (frozen-DBVV contagion).

A conflict freezes DBVV accounting on the replica that declares it:
the conflicting adoption is dropped, so later log records legitimately
run ahead of the DBVV there.  But the overhang does not stay put — any
replica that pulls from the frozen one imports the gapped records
along with perfectly clean adoptions, ending up with a log component
ahead of its DBVV while being conflict-free itself.

``check_invariants`` used to exempt only replicas with *local*
conflict evidence, so a clean third party tripped the log-seqno bound
(``log component k claims seqno m but DBVV[k] is only v``) on
histories it handled correctly.  The fix records every imported gap at
its single creation site (``accept_propagation``) and enforces the
bound against ``max(dbvv[k], gap bound)`` on every replica — which
also *tightens* the check on frozen replicas, previously exempt
entirely.
"""

import pytest

from repro.core.node import EpidemicNode
from repro.core.protocol import DBVVProtocolNode
from repro.errors import InvariantViolation
from repro.substrate.operations import Put
from repro.substrate.persistence import dump_node, load_node

ITEMS = ["alpha", "gamma"]


def build_contagion_triple():
    """Three replicas: A is the update source, B freezes on a conflict
    with A, and C — which never sees any conflict — imports B's gap.

    Returns ``(a, b, c)`` right after C's contaminating pull.
    """
    a = EpidemicNode(0, 3, ITEMS)
    b = EpidemicNode(1, 3, ITEMS)
    c = EpidemicNode(2, 3, ITEMS)

    a.update("alpha", Put(b"a1"))        # origin-0 seqno 1
    b.pull_from(a)                       # B reflects alpha@1
    a.update("alpha", Put(b"a2"))        # seqno 2
    a.update("gamma", Put(b"g1"))        # seqno 3
    b.update("alpha", Put(b"b1"))        # B forks alpha -> conflict brews

    # B pulls A: alpha is CONCURRENT (conflict declared, adoption and
    # records dropped), gamma is adopted — but gamma's record carries
    # seqno 3 while B's DBVV only accounts alpha@1 + gamma@3 = 2
    # origin-0 updates.  B is frozen, so it was always exempt.
    outcome, _ = b.pull_from(a)
    assert outcome.conflicted == ["alpha"]
    assert b.conflicts.count == 1

    # C pulls B: adopts B's alpha lineage and gamma — both dominating,
    # zero conflicts — yet imports the gapped record (gamma, 3).
    outcome, _ = c.pull_from(b)
    assert outcome.conflicted == []
    assert c.conflicts.count == 0
    return a, b, c


class TestGapContagion:
    def test_clean_third_party_passes_invariants(self):
        """The regression: C holds no conflict evidence at all but its
        origin-0 log runs ahead of its DBVV; this used to raise."""
        _, _, c = build_contagion_triple()
        assert not any(entry.in_conflict for entry in c.store)
        assert c.log[0].max_seqno == 3
        assert c.dbvv[0] == 2
        c.check_invariants()
        assert c.log_gaps == {0: 3}
        assert c.has_open_log_gaps()

    def test_frozen_replica_records_its_own_gap(self):
        _, b, _ = build_contagion_triple()
        b.check_invariants()
        assert b.log_gaps == {0: 3}
        assert b.has_open_log_gaps()

    def test_gapless_source_stays_tight(self):
        a, _, _ = build_contagion_triple()
        a.check_invariants()
        assert a.log_gaps == {}
        assert not a.has_open_log_gaps()

    def test_bound_is_enforced_beyond_the_recorded_gap(self):
        """The tightened check: even a frozen replica may not grow a
        log component past both the DBVV and the recorded gap bound —
        previously any conflict anywhere disabled the check entirely."""
        _, b, c = build_contagion_triple()
        b.log.add(0, "alpha", 99)
        with pytest.raises(InvariantViolation):
            b.check_invariants()
        c.log.add(0, "alpha", 99)
        with pytest.raises(InvariantViolation):
            c.check_invariants()

    def test_resolution_heals_the_gap_transitively(self):
        """Resolving the conflict at B advances the DBVV past the gap;
        C heals by pulling the resolved (dominating) copy."""
        _, b, c = build_contagion_triple()
        b.resolve_conflict("alpha", b"merged")
        assert not b.has_open_log_gaps()
        b.check_invariants()

        outcome, _ = c.pull_from(b)
        assert outcome.adopted == ["alpha"]
        assert c.read("alpha") == b"merged"
        assert not c.has_open_log_gaps()
        c.check_invariants()

    def test_gaps_survive_crash_and_restore(self):
        """``log_gaps`` is derived state: a restored snapshot of a
        clean-but-gapped replica must not trip the invariant checker."""
        _, _, c = build_contagion_triple()
        restored = load_node(dump_node(c))
        restored.check_invariants()
        assert restored.log_gaps == {0: 3}
        assert restored.has_open_log_gaps()


class TestCertificate:
    def make_adapters(self):
        return [DBVVProtocolNode(k, 3, ITEMS) for k in range(3)]

    def drive_contagion(self, adapters):
        a, b, c = (adapter.node for adapter in adapters)
        a.update("alpha", Put(b"a1"))
        b.pull_from(a)
        a.update("alpha", Put(b"a2"))
        a.update("gamma", Put(b"g1"))
        b.update("alpha", Put(b"b1"))
        b.pull_from(a)
        c.pull_from(b)

    def test_open_gap_voids_the_dbvv_certificate(self):
        """A clean-but-gapped replica's reflected update set is not a
        per-origin prefix, so equal DBVVs no longer imply equal state:
        the certificate must be withheld, exactly as for conflicts."""
        adapters = self.make_adapters()
        self.drive_contagion(adapters)
        a_version, b_version, c_version = (
            adapter.state_version() for adapter in adapters
        )
        assert a_version.certificate is not None
        assert b_version.certificate is None     # conflicted
        assert c_version.certificate is None     # clean but gapped

    def test_healed_gap_restores_the_certificate(self):
        adapters = self.make_adapters()
        self.drive_contagion(adapters)
        b, c = adapters[1].node, adapters[2].node
        b.resolve_conflict("alpha", b"merged")
        c.pull_from(b)
        assert not c.has_open_log_gaps()
        assert adapters[2].state_version().certificate is not None
