"""Property-based tests over random protocol interleavings.

A hypothesis-driven interpreter executes arbitrary sequences of the
protocol's operations — conflict-free user updates, anti-entropy pulls,
out-of-bound copies — over a small cluster, and asserts the
cross-structure invariants from DESIGN.md section 6 after every run:

* the DBVV equals the column sums of the regular IVVs (conflict-free
  histories never break rule 3);
* all log and auxiliary-log structural invariants hold;
* no conflicts are ever reported (single-writer updates cannot
  conflict — a report would be a protocol bug);
* a final full-mesh propagation phase converges every replica to the
  same state (criterion C3).
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import EpidemicNode
from repro.substrate.operations import Append

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(4)]


update_ops = st.tuples(
    st.just("update"),
    st.integers(min_value=0, max_value=N_NODES - 1),   # node
    st.integers(min_value=0, max_value=len(ITEMS) - 1),  # item index
)
pull_ops = st.tuples(
    st.just("pull"),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
)
oob_ops = st.tuples(
    st.just("oob"),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=len(ITEMS) - 1),
)
programs = st.lists(st.one_of(update_ops, pull_ops, oob_ops), max_size=40)


def owner_of(item_idx: int) -> int:
    """Static single-writer ownership keeps histories conflict-free."""
    return item_idx % N_NODES


def execute(program):
    nodes = [EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
    counter = 0
    for step in program:
        if step[0] == "update":
            _tag, _node, item_idx = step
            node = owner_of(item_idx)
            counter += 1
            nodes[node].update(ITEMS[item_idx], Append(f"{counter};".encode()))
        elif step[0] == "pull":
            _tag, dst, src = step
            if dst != src:
                nodes[dst].pull_from(nodes[src])
        else:
            _tag, dst, src, item_idx = step
            if dst != src:
                nodes[dst].copy_out_of_bound(ITEMS[item_idx], nodes[src])
    return nodes


@settings(max_examples=60, deadline=None)
@given(programs)
def test_invariants_after_any_interleaving(program):
    nodes = execute(program)
    for node in nodes:
        node.check_invariants()
        assert node.conflicts.count == 0, (
            "single-writer history must never produce conflicts"
        )


@settings(max_examples=60, deadline=None)
@given(programs)
def test_full_mesh_rounds_converge_everything(program):
    """Criterion C3: after updates stop, enough propagation converges
    all replicas (and drains every auxiliary copy)."""
    nodes = execute(program)
    for _round in range(N_NODES + 1):
        for dst in range(N_NODES):
            for src in range(N_NODES):
                if dst != src:
                    nodes[dst].pull_from(nodes[src])
    reference = nodes[0].state_fingerprint()
    for node in nodes[1:]:
        assert node.state_fingerprint() == reference
    for node in nodes:
        node.check_invariants()
        assert len(node.aux_log) == 0
        assert all(not entry.has_auxiliary for entry in node.store)
        assert node.conflicts.count == 0


@settings(max_examples=40, deadline=None)
@given(programs, st.integers(min_value=0, max_value=len(ITEMS) - 1))
def test_out_of_bound_reads_never_go_backwards(program, item_idx):
    """The user-visible value of an item at a node only ever grows
    (Append-only workload): adopting an 'older' OOB copy is forbidden
    by the protocol, so reads are monotone."""
    nodes = execute(program)
    item = ITEMS[item_idx]
    before = {node.node_id: node.read(item) for node in nodes}
    # A second wave of OOB copies in both directions.
    for dst in range(N_NODES):
        for src in range(N_NODES):
            if dst != src:
                nodes[dst].copy_out_of_bound(item, nodes[src])
    for node in nodes:
        after = node.read(item)
        assert after.startswith(before[node.node_id])
