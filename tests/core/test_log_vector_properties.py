"""Property-based tests for the log component (DESIGN.md invariant 3).

A log component fed any stream of (item, increasing-seqno) adds must
always hold at most one record per item, in increasing seqno order,
with its pointer map consistent — and its tails must name exactly the
items whose *latest* update exceeds the threshold.
"""

from hypothesis import given, strategies as st

from repro.core.log_vector import LogComponent

item_names = st.sampled_from([f"item-{k}" for k in range(8)])


@st.composite
def add_streams(draw):
    """A list of (item, seqno) with strictly increasing seqnos."""
    items = draw(st.lists(item_names, min_size=0, max_size=60))
    seqnos = sorted(
        draw(
            st.sets(
                st.integers(min_value=1, max_value=10_000),
                min_size=len(items),
                max_size=len(items),
            )
        )
    )
    return list(zip(items, seqnos))


@given(add_streams())
def test_structural_invariants_always_hold(stream):
    log = LogComponent(origin=0)
    for item, seqno in stream:
        log.add(item, seqno)
    log.check_invariants()


@given(add_streams())
def test_one_record_per_item_with_latest_seqno(stream):
    log = LogComponent(origin=0)
    latest: dict[str, int] = {}
    for item, seqno in stream:
        log.add(item, seqno)
        latest[item] = seqno
    assert dict(log.pairs()) == latest
    assert len(log) == len(latest)


@given(add_streams(), st.integers(min_value=0, max_value=10_000))
def test_tail_matches_brute_force(stream, threshold):
    """tail_after(t) == the retained records with seqno > t, in order."""
    log = LogComponent(origin=0)
    latest: dict[str, int] = {}
    for item, seqno in stream:
        log.add(item, seqno)
        latest[item] = seqno
    expected = sorted(
        ((s, i) for i, s in latest.items() if s > threshold)
    )
    tail = [(r.seqno, r.item) for r in log.tail_after(threshold)]
    assert tail == expected


@given(add_streams())
def test_tails_cover_exactly_items_updated_after_threshold(stream):
    """Sufficiency (DESIGN.md invariant 4, single-origin case): for any
    threshold, the tail names every item whose latest update is above
    it, and nothing else."""
    log = LogComponent(origin=0)
    latest: dict[str, int] = {}
    for item, seqno in stream:
        log.add(item, seqno)
        latest[item] = seqno
    if not stream:
        return
    for threshold in {0, stream[len(stream) // 2][1], stream[-1][1]}:
        tail_items = {r.item for r in log.tail_after(threshold)}
        expected = {i for i, s in latest.items() if s > threshold}
        assert tail_items == expected


@given(add_streams(), st.sets(item_names, max_size=4))
def test_discard_then_invariants(stream, to_discard):
    log = LogComponent(origin=0)
    for item, seqno in stream:
        log.add(item, seqno)
    for item in to_discard:
        log.discard_item(item)
    log.check_invariants()
    remaining = {r.item for r in log}
    assert remaining.isdisjoint(to_discard)
