"""Unit tests for version vectors (paper section 3, Theorem 3)."""

import pytest

from repro.core.version_vector import Ordering, VersionVector, compare, dominates, merge
from repro.errors import ReplicaSetMismatchError, UnknownNodeError


class TestConstruction:
    def test_zero_vector_has_all_zero_components(self):
        vv = VersionVector.zero(4)
        assert list(vv) == [0, 0, 0, 0]

    def test_from_counts_adopts_components(self):
        vv = VersionVector.from_counts([1, 2, 3])
        assert vv.as_tuple() == (1, 2, 3)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VersionVector.from_counts([1, -2])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            VersionVector(-1)

    def test_copy_is_independent(self):
        vv = VersionVector.from_counts([1, 2])
        other = vv.copy()
        other.increment(0)
        assert vv.as_tuple() == (1, 2)
        assert other.as_tuple() == (2, 2)

    def test_empty_vector_allowed(self):
        vv = VersionVector.zero(0)
        assert len(vv) == 0
        assert vv.total() == 0


class TestContainerProtocol:
    def test_len_matches_replica_set(self):
        assert len(VersionVector.zero(7)) == 7

    def test_getitem_returns_component(self):
        vv = VersionVector.from_counts([5, 9])
        assert vv[0] == 5
        assert vv[1] == 9

    def test_getitem_out_of_range_raises_unknown_node(self):
        with pytest.raises(UnknownNodeError):
            VersionVector.zero(2)[5]

    def test_setitem_updates_component(self):
        vv = VersionVector.zero(2)
        vv[1] = 4
        assert vv.as_tuple() == (0, 4)

    def test_setitem_negative_rejected(self):
        vv = VersionVector.zero(2)
        with pytest.raises(ValueError):
            vv[0] = -1

    def test_equality_is_by_value(self):
        assert VersionVector.from_counts([1, 2]) == VersionVector.from_counts([1, 2])
        assert VersionVector.from_counts([1, 2]) != VersionVector.from_counts([2, 1])

    def test_hash_consistent_with_equality(self):
        a = VersionVector.from_counts([1, 2])
        b = VersionVector.from_counts([1, 2])
        assert hash(a) == hash(b)

    def test_total_sums_components(self):
        assert VersionVector.from_counts([3, 4, 5]).total() == 12


class TestIncrement:
    def test_increment_own_entry(self):
        vv = VersionVector.zero(3)
        vv.increment(1)
        assert vv.as_tuple() == (0, 1, 0)

    def test_increment_by_amount(self):
        vv = VersionVector.zero(2)
        vv.increment(0, by=5)
        assert vv[0] == 5

    def test_increment_negative_amount_rejected(self):
        vv = VersionVector.zero(2)
        with pytest.raises(ValueError):
            vv.increment(0, by=-1)

    def test_increment_unknown_node_raises(self):
        vv = VersionVector.zero(2)
        with pytest.raises(UnknownNodeError):
            vv.increment(9)


class TestComparison:
    """The four-way classification of Theorem 3's corollaries."""

    def test_equal_vectors(self):
        a = VersionVector.from_counts([1, 2])
        b = VersionVector.from_counts([1, 2])
        assert a.compare(b) is Ordering.EQUAL

    def test_dominates_when_ahead_everywhere(self):
        a = VersionVector.from_counts([2, 3])
        b = VersionVector.from_counts([1, 2])
        assert a.compare(b) is Ordering.DOMINATES
        assert b.compare(a) is Ordering.DOMINATED

    def test_dominates_when_ahead_in_one_component(self):
        a = VersionVector.from_counts([1, 3])
        b = VersionVector.from_counts([1, 2])
        assert a.dominates(b)

    def test_concurrent_when_each_side_ahead_somewhere(self):
        a = VersionVector.from_counts([2, 0])
        b = VersionVector.from_counts([0, 2])
        assert a.compare(b) is Ordering.CONCURRENT
        assert a.concurrent_with(b)

    def test_dominates_or_equal_accepts_equality(self):
        a = VersionVector.from_counts([1, 2])
        assert a.dominates_or_equal(a.copy())

    def test_dominates_or_equal_rejects_concurrent(self):
        a = VersionVector.from_counts([2, 0])
        b = VersionVector.from_counts([0, 2])
        assert not a.dominates_or_equal(b)

    def test_strict_domination_is_not_reflexive(self):
        a = VersionVector.from_counts([1, 1])
        assert not a.dominates(a.copy())

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ReplicaSetMismatchError):
            VersionVector.zero(2).compare(VersionVector.zero(3))

    def test_flipped_ordering(self):
        assert Ordering.DOMINATES.flipped() is Ordering.DOMINATED
        assert Ordering.DOMINATED.flipped() is Ordering.DOMINATES
        assert Ordering.EQUAL.flipped() is Ordering.EQUAL
        assert Ordering.CONCURRENT.flipped() is Ordering.CONCURRENT

    def test_module_level_helpers(self):
        a = VersionVector.from_counts([2, 2])
        b = VersionVector.from_counts([1, 1])
        assert compare(a, b) is Ordering.DOMINATES
        assert dominates(a, b)


class TestMerge:
    def test_merge_takes_componentwise_max(self):
        a = VersionVector.from_counts([1, 5])
        b = VersionVector.from_counts([3, 2])
        assert merge(a, b).as_tuple() == (3, 5)

    def test_merge_does_not_mutate_operands(self):
        a = VersionVector.from_counts([1, 5])
        b = VersionVector.from_counts([3, 2])
        merge(a, b)
        assert a.as_tuple() == (1, 5)
        assert b.as_tuple() == (3, 2)

    def test_merge_from_mutates_in_place(self):
        a = VersionVector.from_counts([1, 5])
        a.merge_from(VersionVector.from_counts([3, 2]))
        assert a.as_tuple() == (3, 5)

    def test_merged_vector_dominates_or_equals_both(self):
        a = VersionVector.from_counts([2, 0, 1])
        b = VersionVector.from_counts([0, 3, 1])
        m = merge(a, b)
        assert m.dominates_or_equal(a)
        assert m.dominates_or_equal(b)

    def test_merge_mismatched_sizes_raise(self):
        with pytest.raises(ReplicaSetMismatchError):
            merge(VersionVector.zero(2), VersionVector.zero(4))


class TestMissingFrom:
    """Theorem 3 corollary 2: per-origin missing-update counts."""

    def test_reports_components_where_other_is_ahead(self):
        a = VersionVector.from_counts([1, 5, 0])
        b = VersionVector.from_counts([4, 5, 2])
        assert a.missing_from(b) == {0: 3, 2: 2}

    def test_empty_when_self_is_newer(self):
        a = VersionVector.from_counts([4, 5])
        b = VersionVector.from_counts([1, 2])
        assert a.missing_from(b) == {}

    def test_concurrent_vectors_report_only_their_gaps(self):
        a = VersionVector.from_counts([3, 0])
        b = VersionVector.from_counts([0, 3])
        assert a.missing_from(b) == {1: 3}
