"""Unit tests for the updating procedure (paper section 5.3)."""

import pytest

from repro.core.node import EpidemicNode
from repro.errors import UnknownItemError
from repro.substrate.operations import Append, CounterAdd, Put

ITEMS = ["x", "y", "z"]


def make_node(node_id=0, n_nodes=2):
    return EpidemicNode(node_id, n_nodes, ITEMS)


class TestRegularUpdates:
    def test_update_applies_operation_to_value(self):
        node = make_node()
        node.update("x", Put(b"hello"))
        node.update("x", Append(b" world"))
        assert node.read("x") == b"hello world"

    def test_update_increments_ivv_own_component(self):
        node = make_node(node_id=1)
        node.update("x", Put(b"v"))
        assert node.store["x"].ivv.as_tuple() == (0, 1)

    def test_update_increments_dbvv_own_component(self):
        node = make_node(node_id=1)
        node.update("x", Put(b"v"))
        node.update("y", Put(b"v"))
        assert node.dbvv.as_tuple() == (0, 2)

    def test_update_appends_log_record_with_dbvv_seqno(self):
        """The log record carries V_ii *including* this update — the
        update's sequence number at its origin."""
        node = make_node(node_id=0)
        node.update("x", Put(b"a"))
        node.update("y", Put(b"b"))
        node.update("x", Put(b"c"))
        assert node.log[0].pairs() == [("y", 2), ("x", 3)]

    def test_updates_to_unknown_item_raise(self):
        node = make_node()
        with pytest.raises(UnknownItemError):
            node.update("nope", Put(b"v"))

    def test_counter_semantics(self):
        node = make_node()
        node.update("x", CounterAdd(5))
        node.update("x", CounterAdd(-2))
        assert CounterAdd.read(node.read("x")) == 3

    def test_updates_never_touch_other_origins_log(self):
        node = make_node(node_id=0, n_nodes=3)
        node.update("x", Put(b"v"))
        assert len(node.log[1]) == 0
        assert len(node.log[2]) == 0

    def test_invariants_after_many_updates(self):
        node = make_node()
        for k in range(50):
            node.update(ITEMS[k % 3], Put(f"v{k}".encode()))
        node.check_invariants()


class TestAuxiliaryRouting:
    """With an auxiliary copy present, updates go to auxiliary state
    and leave every regular structure untouched."""

    @pytest.fixture
    def pair(self):
        source = make_node(node_id=0)
        node = make_node(node_id=1)
        source.update("x", Put(b"base"))
        assert node.copy_out_of_bound("x", source)
        return node, source

    def test_update_goes_to_auxiliary_value(self, pair):
        node, _source = pair
        node.update("x", Append(b"+local"))
        assert node.read("x") == b"base+local"
        # The regular copy is untouched.
        assert node.store["x"].value == b""

    def test_update_increments_auxiliary_ivv_only(self, pair):
        node, _source = pair
        node.update("x", Append(b"+local"))
        assert node.store["x"].aux_ivv.as_tuple() == (1, 1)
        assert node.store["x"].ivv.as_tuple() == (0, 0)

    def test_update_does_not_touch_dbvv_or_log(self, pair):
        node, _source = pair
        node.update("x", Append(b"+local"))
        assert node.dbvv.as_tuple() == (0, 0)
        assert len(node.log) == 0

    def test_update_is_recorded_in_auxiliary_log(self, pair):
        node, _source = pair
        node.update("x", Append(b"+1"))
        node.update("x", Append(b"+2"))
        assert len(node.aux_log) == 2
        earliest = node.aux_log.earliest("x")
        assert earliest.op == Append(b"+1")
        assert earliest.pre_ivv.as_tuple() == (1, 0)

    def test_reads_see_auxiliary_value(self, pair):
        node, _source = pair
        assert node.read("x") == b"base"
