"""Unit tests for the DBVV ProtocolNode adapter."""

import pytest

from repro.baselines.lotus import LotusNode
from repro.cluster.network import SimulatedNetwork
from repro.core.protocol import DBVVProtocolNode
from repro.interfaces import DirectTransport, SessionPhase
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = ["x", "y"]


def make_pair():
    ca, cb, ct = OverheadCounters(), OverheadCounters(), OverheadCounters()
    a = DBVVProtocolNode(0, 2, ITEMS, counters=ca)
    b = DBVVProtocolNode(1, 2, ITEMS, counters=cb)
    return a, b, DirectTransport(ct), ct


def make_networked_pair():
    a = DBVVProtocolNode(0, 2, ITEMS, counters=OverheadCounters())
    b = DBVVProtocolNode(1, 2, ITEMS, counters=OverheadCounters())
    return a, b, SimulatedNetwork(2, counters=OverheadCounters())


class TestSyncWith:
    def test_identical_replicas_report_identical(self):
        a, b, transport, _ = make_pair()
        stats = a.sync_with(b, transport)
        assert stats.identical
        assert stats.items_transferred == 0
        assert stats.messages == 2

    def test_transfer_counts_adopted_items(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert not stats.identical
        assert stats.items_transferred == 1
        assert a.read("x") == b"v"

    def test_traffic_charged_to_transport(self):
        a, b, transport, counters = make_pair()
        b.user_update("x", Put(b"v"))
        a.sync_with(b, transport)
        assert counters.messages_sent == 2
        assert counters.bytes_sent > 0

    def test_conflicts_surface_in_stats(self):
        a, b, transport, _ = make_pair()
        a.user_update("x", Put(b"a"))
        b.user_update("x", Put(b"b"))
        stats = a.sync_with(b, transport)
        assert stats.conflicts == 1
        assert a.conflict_count() == 1

    def test_cross_protocol_sync_rejected(self):
        a, _b, transport, _ = make_pair()
        lotus = LotusNode(1, 2, ITEMS)
        with pytest.raises(TypeError):
            a.sync_with(lotus, transport)

    def test_state_fingerprint_reports_regular_copies(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        a.fetch_out_of_bound("x", b, transport)
        # The OOB copy is auxiliary — the durable fingerprint is still
        # the (empty) regular copy until scheduled propagation runs.
        assert a.state_fingerprint()["x"] == b""
        a.sync_with(b, transport)
        assert a.state_fingerprint()["x"] == b"v"


class TestSyncWithUnderFaults:
    def test_lost_request_aborts_in_request_sent_phase(self):
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"v"))
        net.arm_message_drop(nth_message=1)
        stats = a.sync_with(b, net)
        assert stats.failed
        assert stats.aborted_phase is SessionPhase.REQUEST_SENT
        assert stats.messages == 1          # the lost request left a
        assert stats.bytes_sent > 0         # and its bytes are charged
        assert a.read("x") == b""           # nothing adopted
        a.check_invariants()
        b.check_invariants()

    def test_lost_reply_aborts_in_reply_in_flight_phase(self):
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"v"))
        net.arm_message_drop(nth_message=2)
        stats = a.sync_with(b, net)
        assert stats.failed
        assert stats.aborted_phase is SessionPhase.REPLY_IN_FLIGHT
        assert stats.messages == 2
        assert a.read("x") == b""           # reply lost: no adoption
        a.check_invariants()
        b.check_invariants()

    def test_crashed_peer_aborts_without_raising(self):
        a, b, net = make_networked_pair()
        net.set_down(1)
        stats = a.sync_with(b, net)
        assert stats.failed
        # The phase machine had advanced to request-sent, but the dead
        # endpoint was caught at connect time: no message moved.
        assert stats.messages == 0

    def test_aborted_session_recovers_on_retry(self):
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"v"))
        net.arm_message_drop(nth_message=2)
        assert a.sync_with(b, net).failed
        stats = a.sync_with(b, net)         # plain re-run succeeds
        assert not stats.failed
        assert a.read("x") == b"v"
        a.check_invariants()


class TestFetchOutOfBound:
    def test_fetch_installs_auxiliary_and_serves_reads(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"fresh"))
        assert a.fetch_out_of_bound("x", b, transport)
        assert a.read("x") == b"fresh"

    def test_fetch_of_stale_copy_returns_false(self):
        a, b, transport, _ = make_pair()
        a.user_update("x", Put(b"mine"))
        assert not a.fetch_out_of_bound("x", b, transport)

    def test_invariant_check_passes_through(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        a.sync_with(b, transport)
        a.check_invariants()
        b.check_invariants()

    def test_fetch_survives_lost_request(self):
        """Regression: under a lossy network the fetch used to catch
        only NodeDownError, so a MessageLostError escaped into whatever
        user operation triggered the fetch."""
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"fresh"))
        net.arm_message_drop(nth_message=1)
        assert a.fetch_out_of_bound("x", b, net) is False
        assert a.read("x") == b""

    def test_fetch_survives_lost_reply(self):
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"fresh"))
        net.arm_message_drop(nth_message=2)
        assert a.fetch_out_of_bound("x", b, net) is False
        # And the very next fetch works.
        assert a.fetch_out_of_bound("x", b, net) is True
        assert a.read("x") == b"fresh"

    def test_fetch_survives_dead_peer(self):
        a, b, net = make_networked_pair()
        b.user_update("x", Put(b"fresh"))
        net.set_down(1)
        assert a.fetch_out_of_bound("x", b, net) is False
