"""Unit tests for the DBVV ProtocolNode adapter."""

import pytest

from repro.baselines.lotus import LotusNode
from repro.core.protocol import DBVVProtocolNode
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = ["x", "y"]


def make_pair():
    ca, cb, ct = OverheadCounters(), OverheadCounters(), OverheadCounters()
    a = DBVVProtocolNode(0, 2, ITEMS, counters=ca)
    b = DBVVProtocolNode(1, 2, ITEMS, counters=cb)
    return a, b, DirectTransport(ct), ct


class TestSyncWith:
    def test_identical_replicas_report_identical(self):
        a, b, transport, _ = make_pair()
        stats = a.sync_with(b, transport)
        assert stats.identical
        assert stats.items_transferred == 0
        assert stats.messages == 2

    def test_transfer_counts_adopted_items(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        stats = a.sync_with(b, transport)
        assert not stats.identical
        assert stats.items_transferred == 1
        assert a.read("x") == b"v"

    def test_traffic_charged_to_transport(self):
        a, b, transport, counters = make_pair()
        b.user_update("x", Put(b"v"))
        a.sync_with(b, transport)
        assert counters.messages_sent == 2
        assert counters.bytes_sent > 0

    def test_conflicts_surface_in_stats(self):
        a, b, transport, _ = make_pair()
        a.user_update("x", Put(b"a"))
        b.user_update("x", Put(b"b"))
        stats = a.sync_with(b, transport)
        assert stats.conflicts == 1
        assert a.conflict_count() == 1

    def test_cross_protocol_sync_rejected(self):
        a, _b, transport, _ = make_pair()
        lotus = LotusNode(1, 2, ITEMS)
        with pytest.raises(TypeError):
            a.sync_with(lotus, transport)

    def test_state_fingerprint_reports_regular_copies(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        a.fetch_out_of_bound("x", b, transport)
        # The OOB copy is auxiliary — the durable fingerprint is still
        # the (empty) regular copy until scheduled propagation runs.
        assert a.state_fingerprint()["x"] == b""
        a.sync_with(b, transport)
        assert a.state_fingerprint()["x"] == b"v"


class TestFetchOutOfBound:
    def test_fetch_installs_auxiliary_and_serves_reads(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"fresh"))
        assert a.fetch_out_of_bound("x", b, transport)
        assert a.read("x") == b"fresh"

    def test_fetch_of_stale_copy_returns_false(self):
        a, b, transport, _ = make_pair()
        a.user_update("x", Put(b"mine"))
        assert not a.fetch_out_of_bound("x", b, transport)

    def test_invariant_check_passes_through(self):
        a, b, transport, _ = make_pair()
        b.user_update("x", Put(b"v"))
        a.sync_with(b, transport)
        a.check_invariants()
        b.check_invariants()
