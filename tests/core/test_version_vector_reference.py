"""Differential property tests: the ``array('Q')``-backed
:class:`VersionVector` against a pure-list reference model.

The dense-array representation buys its speed with three caches
(``_total``, ``_hash``, ``_tuple``) and fused C-level passes
(``map(max, ...)``, ``any(map(operator.lt, ...))``) — exactly the kind
of code where an invalidation bug or an early-exit mistake produces a
vector that is *mostly* right.  The reference model below is the
boring per-index implementation the algebra is defined by; hypothesis
drives both through the same operation sequences and every observable
must agree at every step.
"""

from hypothesis import given, settings, strategies as st

from repro.core.messages import PropagationRequest
from repro.core.version_vector import Ordering, VersionVector, merge
from repro.errors import ReplicaSetMismatchError, UnknownNodeError
from repro.wire import WireCodec

N_NODES = 5

components = st.integers(min_value=0, max_value=60)
count_lists = st.lists(components, min_size=N_NODES, max_size=N_NODES)


# -- the reference model ----------------------------------------------------


def ref_compare(a: list, b: list) -> Ordering:
    some_less = any(x < y for x, y in zip(a, b))
    some_greater = any(x > y for x, y in zip(a, b))
    if not some_less and not some_greater:
        return Ordering.EQUAL
    if some_less and some_greater:
        return Ordering.CONCURRENT
    return Ordering.DOMINATES if some_greater else Ordering.DOMINATED


def ref_merge(a: list, b: list) -> list:
    return [max(x, y) for x, y in zip(a, b)]


def ref_missing_from(a: list, b: list) -> dict:
    return {k: b[k] - a[k] for k in range(len(a)) if b[k] > a[k]}


# -- pure algebra -----------------------------------------------------------


@given(count_lists, count_lists)
def test_comparisons_match_reference(a, b):
    va, vb = VersionVector.from_counts(a), VersionVector.from_counts(b)
    expected = ref_compare(a, b)
    assert va.compare(vb) is expected
    assert va.dominates(vb) is (expected is Ordering.DOMINATES)
    assert va.dominates_or_equal(vb) is (
        expected in (Ordering.DOMINATES, Ordering.EQUAL)
    )
    assert va.concurrent_with(vb) is (expected is Ordering.CONCURRENT)
    assert (va == vb) is (expected is Ordering.EQUAL)


@given(count_lists, count_lists)
def test_merge_and_missing_from_match_reference(a, b):
    va, vb = VersionVector.from_counts(a), VersionVector.from_counts(b)
    assert list(merge(va, vb)) == ref_merge(a, b)
    assert va.missing_from(vb) == ref_missing_from(a, b)
    # merge() left its operands untouched.
    assert list(va) == a and list(vb) == b


@given(count_lists)
def test_observables_match_reference(a):
    vv = VersionVector.from_counts(a)
    assert len(vv) == len(a)
    assert list(vv) == a
    assert vv.as_tuple() == tuple(a)
    assert [vv[k] for k in range(len(a))] == a
    assert vv.total() == sum(a)
    assert vv.recompute_total() == sum(a)


@given(count_lists)
def test_equal_values_hash_equal_across_construction_paths(a):
    # Same components via tuple-decode path, list path, and mutation.
    via_tuple = VersionVector.from_counts(tuple(a))
    via_list = VersionVector.from_counts(a)
    mutated = VersionVector(len(a))
    for k, value in enumerate(a):
        mutated.increment(k, value)
    assert via_tuple == via_list == mutated
    assert hash(via_tuple) == hash(via_list) == hash(mutated)


# -- mutation sequences -----------------------------------------------------


_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("increment"),
            st.integers(0, N_NODES - 1),
            st.integers(0, 10),
        ),
        st.tuples(
            st.just("setitem"),
            st.integers(0, N_NODES - 1),
            st.integers(0, 100),
        ),
        st.tuples(st.just("merge_from"), count_lists),
        st.tuples(st.just("extend_to"), st.integers(0, 3)),
    ),
    max_size=12,
)


@settings(max_examples=200)
@given(count_lists, _operations)
def test_mutation_sequences_match_reference(initial, operations):
    vv = VersionVector.from_counts(initial)
    model = list(initial)
    for op in operations:
        if op[0] == "increment":
            _, node, by = op
            vv.increment(node, by)
            model[node] += by
        elif op[0] == "setitem":
            _, node, value = op
            vv[node] = value
            model[node] = value
        elif op[0] == "merge_from":
            other = list(op[1]) + [0] * (len(model) - N_NODES)
            vv.merge_from(VersionVector.from_counts(other))
            model = ref_merge(model, other)
        else:  # extend_to
            grow = op[1]
            vv.extend_to(len(model) + grow)
            model.extend([0] * grow)
        # Every cache-backed observable agrees after every mutation —
        # a stale _total/_hash/_tuple surfaces at the op that broke it.
        assert list(vv) == model
        assert vv.as_tuple() == tuple(model)
        assert vv.total() == sum(model)
        assert vv.total() == vv.recompute_total()
        assert vv == VersionVector.from_counts(model)
        assert hash(vv) == hash(VersionVector.from_counts(model))


@given(count_lists)
def test_copy_is_independent(a):
    vv = VersionVector.from_counts(a)
    dup = vv.copy()
    assert dup == vv and hash(dup) == hash(vv)
    dup.increment(0)
    assert list(vv) == a
    assert dup != vv or a[0] != dup[0] - 1  # vv untouched by the mutation


# -- error cases ------------------------------------------------------------


def test_from_counts_rejects_negative_components():
    for bad in ([-1, 0, 0], [0, 0, -7]):
        try:
            VersionVector.from_counts(bad)
        except ValueError as exc:
            assert "negative" in str(exc)
        else:
            raise AssertionError("negative component accepted")


def test_from_counts_rejects_oversized_and_non_int_components():
    try:
        VersionVector.from_counts([1 << 64])
    except ValueError as exc:
        assert "64-bit" in str(exc)
    else:
        raise AssertionError("2**64 component accepted")
    try:
        VersionVector.from_counts(["seven"])
    except TypeError:
        pass
    else:
        raise AssertionError("non-int component accepted")


def test_out_of_range_node_raises_unknown_node_error():
    vv = VersionVector(N_NODES)
    for access in (
        lambda: vv[N_NODES],
        lambda: vv.increment(N_NODES),
        lambda: vv.__setitem__(N_NODES, 1),
    ):
        try:
            access()
        except UnknownNodeError:
            pass
        else:
            raise AssertionError("out-of-range node accepted")


def test_negative_mutations_rejected():
    vv = VersionVector(N_NODES)
    for mutate in (
        lambda: vv.increment(0, -1),
        lambda: vv.__setitem__(0, -1),
    ):
        try:
            mutate()
        except ValueError:
            pass
        else:
            raise AssertionError("negative mutation accepted")
    assert list(vv) == [0] * N_NODES  # failed mutations left no trace


def test_mismatched_replica_sets_rejected():
    small, big = VersionVector(2), VersionVector(3)
    for operation in (
        lambda: small.compare(big),
        lambda: small.merge_from(big),
        lambda: small.dominates_or_equal(big),
        lambda: small.missing_from(big),
    ):
        try:
            operation()
        except ReplicaSetMismatchError:
            pass
        else:
            raise AssertionError("mismatched replica sets accepted")
    try:
        big.extend_to(2)
    except ValueError:
        pass
    else:
        raise AssertionError("shrinking extend_to accepted")


# -- wire round-trip --------------------------------------------------------


@given(st.lists(count_lists, min_size=1, max_size=4))
def test_wire_roundtrip_preserves_vectors(vector_batch):
    # Successive requests on one directed link exercise both the full
    # and the delta vector encodings against the same cache state.
    for delta in (False, True):
        sender = WireCodec(delta_vv=delta)
        receiver = WireCodec(delta_vv=delta)
        for counts in vector_batch:
            message = PropagationRequest(1, VersionVector.from_counts(counts))
            decoded = receiver.decode(0, 1, sender.encode(0, 1, message))
            assert decoded.dbvv == message.dbvv
            assert decoded.dbvv.as_tuple() == tuple(counts)
            assert decoded.dbvv.total() == sum(counts)
