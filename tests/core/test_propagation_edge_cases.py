"""Edge cases of the propagation procedures the main tests skim over."""

from repro.core.messages import PropagationReply, YouAreCurrent
from repro.core.node import EpidemicNode
from repro.substrate.operations import Append, Put

ITEMS = [f"item-{k}" for k in range(12)]


def make_nodes(n=3):
    return [EpidemicNode(k, n, ITEMS) for k in range(n)]


class TestMixedDominance:
    def test_tails_built_only_for_origins_where_source_is_ahead(self):
        """a ahead on origin 0, b ahead on origin 1: a pull from b must
        carry only origin-1 records, and vice versa."""
        a, b, _ = make_nodes()
        a.update(ITEMS[0], Put(b"from-a"))
        b.update(ITEMS[1], Put(b"from-b"))
        reply = b.send_propagation(a.make_propagation_request())
        assert isinstance(reply, PropagationReply)
        assert reply.tails[0] == ()
        assert reply.tails[1] == ((ITEMS[1], 1),)
        assert [p.name for p in reply.items] == [ITEMS[1]]

    def test_mutual_pulls_from_mixed_state_converge(self):
        a, b, _ = make_nodes()
        a.update(ITEMS[0], Put(b"from-a"))
        b.update(ITEMS[1], Put(b"from-b"))
        a.pull_from(b)
        b.pull_from(a)
        assert a.state_fingerprint() == b.state_fingerprint()
        assert a.dbvv == b.dbvv

    def test_item_with_updates_from_three_origins(self):
        """An item whose lineage passes through every node ships with
        one payload but three tail records (one per origin)."""
        a, b, c = make_nodes()
        a.update(ITEMS[0], Put(b"a;"))
        b.pull_from(a)
        b.update(ITEMS[0], Append(b"b;"))
        c.pull_from(b)
        c.update(ITEMS[0], Append(b"c;"))
        fresh = EpidemicNode(0, 3, ITEMS)
        reply = c.send_propagation(fresh.make_propagation_request())
        names = [p.name for p in reply.items]
        assert names == [ITEMS[0]]
        per_origin = [len(tail) for tail in reply.tails]
        assert per_origin == [1, 1, 1]
        fresh.accept_propagation(reply)
        assert fresh.read(ITEMS[0]) == b"a;b;c;"
        assert fresh.store[ITEMS[0]].ivv.as_tuple() == (1, 1, 1)


class TestIdempotence:
    def test_double_pull_is_a_noop(self):
        a, b, _ = make_nodes()
        b.update(ITEMS[0], Put(b"v"))
        a.pull_from(b)
        snapshot = a.state_fingerprint()
        dbvv = a.dbvv.copy()
        outcome, _ = a.pull_from(b)
        assert outcome.adopted == []
        assert a.state_fingerprint() == snapshot
        assert a.dbvv == dbvv

    def test_stale_reply_can_be_replayed_safely(self):
        """Accepting the same (old) reply twice must not double-count:
        the second application sees equal vectors and skips (C2)."""
        a, b, _ = make_nodes()
        b.update(ITEMS[0], Put(b"v"))
        reply = b.send_propagation(a.make_propagation_request())
        a.accept_propagation(reply)
        dbvv_after_first = a.dbvv.copy()
        outcome, _ = a.accept_propagation(reply)
        assert outcome.adopted == []
        assert outcome.skipped == [ITEMS[0]]
        assert a.dbvv == dbvv_after_first
        a.check_invariants()


class TestLongChains:
    def test_five_hop_relay_with_interleaved_updates(self):
        nodes = [EpidemicNode(k, 5, ITEMS) for k in range(5)]
        nodes[0].update(ITEMS[0], Put(b"h0;"))
        for hop in range(1, 5):
            nodes[hop].pull_from(nodes[hop - 1])
            nodes[hop].update(ITEMS[0], Append(f"h{hop};".encode()))
        assert nodes[4].read(ITEMS[0]) == b"h0;h1;h2;h3;h4;"
        # The tail end serves the full lineage to the origin in one pull.
        outcome, _ = nodes[0].pull_from(nodes[4])
        assert outcome.adopted == [ITEMS[0]]
        assert nodes[0].read(ITEMS[0]) == b"h0;h1;h2;h3;h4;"
        assert nodes[0].store[ITEMS[0]].ivv.as_tuple() == (1, 1, 1, 1, 1)
        for node in nodes:
            node.check_invariants()

    def test_you_are_current_after_full_relay(self):
        nodes = [EpidemicNode(k, 4, ITEMS) for k in range(4)]
        nodes[0].update(ITEMS[3], Put(b"v"))
        for hop in range(1, 4):
            nodes[hop].pull_from(nodes[hop - 1])
        answer = nodes[3].send_propagation(nodes[1].make_propagation_request())
        assert isinstance(answer, YouAreCurrent)
