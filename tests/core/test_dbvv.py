"""Unit tests for database version vectors (paper section 4.1)."""

import pytest

from repro.core.dbvv import DatabaseVersionVector
from repro.core.version_vector import VersionVector
from repro.metrics.counters import OverheadCounters


class TestMaintenanceRules:
    def test_rule1_initially_zero(self):
        dbvv = DatabaseVersionVector(3)
        assert dbvv.as_tuple() == (0, 0, 0)

    def test_rule2_local_update_increments_own_component(self):
        dbvv = DatabaseVersionVector(3)
        dbvv.record_local_update_by(1)
        dbvv.record_local_update_by(1)
        dbvv.record_local_update_by(2)
        assert dbvv.as_tuple() == (0, 2, 1)

    def test_record_local_update_without_node_is_rejected(self):
        dbvv = DatabaseVersionVector(2)
        with pytest.raises(TypeError):
            dbvv.record_local_update()

    def test_rule3_adds_per_origin_deltas(self):
        """V_il += v_jl(x) - v_il(x) for every l (the paper's formula)."""
        dbvv = DatabaseVersionVector(3)
        dbvv.record_local_update_by(0)  # V = (1, 0, 0)
        old_ivv = VersionVector.from_counts([1, 0, 0])
        new_ivv = VersionVector.from_counts([1, 2, 1])
        dbvv.absorb_item_copy(old_ivv, new_ivv)
        assert dbvv.as_tuple() == (1, 2, 1)

    def test_rule3_zero_delta_is_noop(self):
        dbvv = DatabaseVersionVector(2)
        ivv = VersionVector.from_counts([3, 1])
        dbvv.increment(0, 3)
        dbvv.increment(1, 1)
        dbvv.absorb_item_copy(ivv, ivv.copy())
        assert dbvv.as_tuple() == (3, 1)

    def test_rule3_rejects_non_dominating_new_copy(self):
        """Copying only happens source→recipient when the source is
        newer; a negative delta means the caller broke that and must
        fail loudly, not corrupt the DBVV."""
        dbvv = DatabaseVersionVector(2)
        with pytest.raises(ValueError):
            dbvv.absorb_item_copy(
                VersionVector.from_counts([2, 0]),
                VersionVector.from_counts([1, 5]),
            )

    def test_rule3_charges_component_touches(self):
        counters = OverheadCounters()
        dbvv = DatabaseVersionVector(4)
        dbvv.absorb_item_copy(
            VersionVector.zero(4),
            VersionVector.from_counts([1, 1, 0, 0]),
            counters,
        )
        assert counters.vv_components_touched == 4


class TestInheritedAlgebra:
    """DBVVs keep the full vector comparison algebra — the O(1)
    propagation-needed test is dominates_or_equal."""

    def test_dbvv_comparison_detects_identical_databases(self):
        a = DatabaseVersionVector(2)
        b = DatabaseVersionVector(2)
        a.record_local_update_by(0)
        b.record_local_update_by(0)
        assert a.dominates_or_equal(b)
        assert b.dominates_or_equal(a)

    def test_dbvv_detects_missing_updates(self):
        a = DatabaseVersionVector(2)
        b = DatabaseVersionVector(2)
        b.record_local_update_by(1)
        assert not a.dominates_or_equal(b)
        assert a.missing_from(b) == {1: 1}
