"""Unit and integration tests for operation-shipping propagation
(paper section 2's second propagation method; repro.core.delta)."""

import pytest

from repro.core.delta import (
    DeltaEpidemicNode,
    DeltaPayload,
    OpChainEntry,
    OpHistory,
)
from repro.core.messages import ItemPayload
from repro.core.node import EpidemicNode
from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.core.version_vector import VersionVector
from repro.interfaces import DIRECT_TRANSPORT, DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Append, BytePatch, Put

ITEMS = [f"item-{k}" for k in range(10)]


def make_pair(history_limit=64):
    return (
        DeltaEpidemicNode(0, 2, ITEMS, history_limit=history_limit),
        DeltaEpidemicNode(1, 2, ITEMS, history_limit=history_limit),
    )


class TestOpHistory:
    def test_records_in_order(self):
        history = OpHistory(2, limit=10)
        history.record(OpChainEntry(0, 1, Put(b"a")))
        history.record(OpChainEntry(0, 2, Append(b"b")))
        chain = history.chain_for(VersionVector.zero(2))
        assert [e.m for e in chain] == [1, 2]

    def test_chain_excludes_known_updates(self):
        history = OpHistory(2, limit=10)
        for m in range(1, 5):
            history.record(OpChainEntry(0, m, Append(b".")))
        chain = history.chain_for(VersionVector.from_counts([2, 0]))
        assert [e.m for e in chain] == [3, 4]

    def test_eviction_raises_floor_and_blocks_stale_recipients(self):
        history = OpHistory(2, limit=2)
        for m in range(1, 5):
            history.record(OpChainEntry(0, m, Append(b".")))
        assert len(history) == 2
        assert history.floor == (2, 0)
        assert not history.covers(VersionVector.from_counts([1, 0]))
        assert history.covers(VersionVector.from_counts([2, 0]))

    def test_forget_through_blocks_everyone_below_bound(self):
        history = OpHistory(2, limit=10)
        history.record(OpChainEntry(0, 1, Put(b"a")))
        history.forget_through(VersionVector.from_counts([5, 3]))
        assert len(history) == 0
        assert not history.covers(VersionVector.from_counts([4, 3]))
        assert history.covers(VersionVector.from_counts([5, 3]))

    def test_zero_limit_always_falls_back(self):
        history = OpHistory(2, limit=0)
        history.record(OpChainEntry(0, 1, Put(b"a")))
        assert len(history) == 0
        assert not history.covers(VersionVector.zero(2))

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            OpHistory(2, limit=-1)


class TestDeltaPropagation:
    def test_fresh_recipient_gets_ops_and_converges(self):
        a, b = make_pair()
        b.update("item-0", Put(b"base"))
        b.update("item-0", Append(b"+1"))
        outcome, _ = a.pull_from(b)
        assert outcome.adopted == ["item-0"]
        assert a.read("item-0") == b"base+1"
        assert a.store["item-0"].ivv == b.store["item-0"].ivv
        a.check_invariants()

    def test_delta_payload_used_when_history_covers(self):
        a, b = make_pair()
        b.update("item-0", Put(b"base"))
        request = a.make_propagation_request()
        reply = b.send_propagation(request)
        (payload,) = reply.items
        assert isinstance(payload, DeltaPayload)
        assert b.deltas_shipped == 1

    def test_full_fallback_when_history_evicted(self):
        a, b = make_pair(history_limit=2)
        b.update("item-0", Put(b"base"))
        for k in range(5):
            b.update("item-0", Append(f"+{k}".encode()))
        reply = b.send_propagation(a.make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, ItemPayload)
        assert b.full_copies_shipped == 1
        outcome, _ = a.pull_from(b)
        assert a.read("item-0") == b.read("item-0")

    def test_partial_chain_for_partially_current_recipient(self):
        a, b = make_pair()
        b.update("item-0", Put(b"base"))
        a.pull_from(b)
        b.update("item-0", Append(b"+new"))
        reply = b.send_propagation(a.make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, DeltaPayload)
        assert len(payload.ops) == 1
        a.accept_propagation(reply)
        assert a.read("item-0") == b"base+new"

    def test_ops_smaller_than_values_on_wire(self):
        """The point of the mode: small patches on big items ship as
        patches."""
        a, b = make_pair()
        big = b"x" * 10_000
        b.update("item-0", Put(big))
        a.pull_from(b)  # recipient now has the big value
        b.update("item-0", BytePatch(17, b"Y"))
        reply = b.send_propagation(a.make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, DeltaPayload)
        assert payload.wire_size() < 200  # vs ~10 KiB for the full copy
        a.accept_propagation(reply)
        assert a.read("item-0") == b.read("item-0")

    def test_adopted_chains_are_forwardable(self):
        """Entries adopted by delta enter the recipient's own history
        with their original origin/m, so they forward onwards."""
        nodes = [DeltaEpidemicNode(k, 3, ITEMS) for k in range(3)]
        nodes[0].update("item-0", Put(b"base"))
        nodes[1].pull_from(nodes[0])
        reply = nodes[1].send_propagation(nodes[2].make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, DeltaPayload)
        assert payload.ops[0].origin == 0
        nodes[2].accept_propagation(reply)
        assert nodes[2].read("item-0") == b"base"

    def test_full_adoption_gaps_the_history(self):
        """After adopting a whole value, the node must not serve chains
        spanning the gap — it falls back to full copies."""
        a, b = make_pair(history_limit=2)
        b.update("item-0", Put(b"base"))
        for k in range(5):
            b.update("item-0", Append(f"+{k}".encode()))
        a.pull_from(b)  # forced full copy (history evicted at source)
        c = DeltaEpidemicNode(1, 2, ITEMS)  # fresh replica in a's seat's peer role
        reply = a.send_propagation(c.make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, ItemPayload)  # gap forces full

    def test_mixed_full_and_delta_payloads_in_one_reply(self):
        a, b = make_pair(history_limit=2)
        b.update("item-0", Put(b"small"))      # covered by history
        b.update("item-1", Put(b"base"))
        for k in range(5):
            b.update("item-1", Append(b"."))   # evicts item-1's history
        reply = b.send_propagation(a.make_propagation_request())
        kinds = {p.name: type(p).__name__ for p in reply.items}
        assert kinds["item-0"] == "DeltaPayload"
        assert kinds["item-1"] == "ItemPayload"
        a.accept_propagation(reply)
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_conflicts_still_detected(self):
        a, b = make_pair()
        a.update("item-0", Put(b"from-a"))
        b.update("item-0", Put(b"from-b"))
        outcome, _ = a.pull_from(b)
        assert outcome.conflicted == ["item-0"]
        assert a.read("item-0") == b"from-a"

    def test_out_of_bound_and_replay_interoperate(self):
        a, b = make_pair()
        b.update("item-0", Put(b"base"))
        a.copy_out_of_bound("item-0", b)
        a.update("item-0", Append(b"+a"))
        _, intra = a.pull_from(b)
        assert intra.replayed == 1
        assert a.read("item-0") == b"base+a"
        # The replayed update is in a's history and forwards by chain.
        reply = a.send_propagation(b.make_propagation_request())
        (payload,) = reply.items
        assert isinstance(payload, DeltaPayload)
        b.accept_propagation(reply)
        assert b.read("item-0") == b"base+a"

    def test_resolution_gaps_history(self):
        a, b = make_pair()
        a.update("item-0", Put(b"from-a"))
        b.update("item-0", Put(b"from-b"))
        a.pull_from(b)
        a.resolve_conflict("item-0", b"merged")
        # Resolution rewrote the value: chains spanning it are barred.
        reply = a.send_propagation(b.make_propagation_request())
        payload = next(p for p in reply.items if p.name == "item-0")
        assert isinstance(payload, ItemPayload)
        b.accept_propagation(reply)
        assert b.read("item-0") == b"merged"


class TestAdapter:
    def test_delta_cluster_converges(self):
        transport = DirectTransport(OverheadCounters())
        nodes = [DeltaProtocolNode(k, 3, ITEMS) for k in range(3)]
        nodes[0].user_update("item-0", Put(b"v"))
        nodes[1].sync_with(nodes[0], transport)
        nodes[2].sync_with(nodes[1], transport)
        assert nodes[2].read("item-0") == b"v"

    def test_mixed_modes_rejected(self):
        plain = DBVVProtocolNode(0, 2, ITEMS)
        delta = DeltaProtocolNode(1, 2, ITEMS)
        with pytest.raises(TypeError):
            plain.sync_with(delta, DIRECT_TRANSPORT)
        with pytest.raises(TypeError):
            delta.sync_with(plain, DIRECT_TRANSPORT)

    def test_protocol_name(self):
        assert DeltaProtocolNode(0, 2, ITEMS).protocol_name == "dbvv-delta"


class TestRandomizedEquivalence:
    def test_delta_and_whole_value_modes_converge_identically(self):
        """Both modes must produce the same replica contents from the
        same conflict-free history — the mode is a transport detail."""
        import random

        rng = random.Random(5)
        plain = [EpidemicNode(k, 3, ITEMS) for k in range(3)]
        delta = [DeltaEpidemicNode(k, 3, ITEMS, history_limit=4) for k in range(3)]
        counter = 0
        for _step in range(120):
            action = rng.random()
            if action < 0.6:
                item_idx = rng.randrange(len(ITEMS))
                node = item_idx % 3
                counter += 1
                op = Append(f"{counter};".encode())
                plain[node].update(ITEMS[item_idx], op)
                delta[node].update(ITEMS[item_idx], op)
            else:
                dst = rng.randrange(3)
                src = (dst + 1 + rng.randrange(2)) % 3
                plain[dst].pull_from(plain[src])
                delta[dst].pull_from(delta[src])
        for _round in range(4):
            for dst in range(3):
                for src in range(3):
                    if dst != src:
                        plain[dst].pull_from(plain[src])
                        delta[dst].pull_from(delta[src])
        for p_node, d_node in zip(plain, delta):
            assert p_node.state_fingerprint() == d_node.state_fingerprint()
            d_node.check_invariants()
