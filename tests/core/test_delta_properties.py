"""Property-based tests: operation shipping is transparent.

For any conflict-free program of updates and pulls, the operation-
shipping cluster must end in exactly the state of the whole-value
cluster (values AND vectors), for any history limit — small limits just
shift more payloads to the whole-value fallback.
"""

from hypothesis import given, settings, strategies as st

from repro.core.delta import DeltaEpidemicNode
from repro.core.node import EpidemicNode
from repro.substrate.operations import Append

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(4)]

steps = st.one_of(
    st.tuples(st.just("update"), st.integers(0, len(ITEMS) - 1)),
    st.tuples(st.just("pull"), st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1)),
)
programs = st.lists(steps, max_size=40)
limits = st.sampled_from([0, 1, 3, 64])


def run(cluster, program):
    counter = 0
    for step in program:
        if step[0] == "update":
            _tag, item_idx = step
            counter += 1
            cluster[item_idx % N_NODES].update(
                ITEMS[item_idx], Append(f"{counter};".encode())
            )
        else:
            _tag, dst, src = step
            if dst != src:
                cluster[dst].pull_from(cluster[src])
    # Deterministic closing schedule so both clusters fully converge.
    for _round in range(N_NODES + 1):
        for dst in range(N_NODES):
            for src in range(N_NODES):
                if dst != src:
                    cluster[dst].pull_from(cluster[src])
    return cluster


@settings(max_examples=50, deadline=None)
@given(programs, limits)
def test_delta_mode_is_state_equivalent(program, limit):
    plain = run([EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)], program)
    delta = run(
        [DeltaEpidemicNode(k, N_NODES, ITEMS, history_limit=limit) for k in range(N_NODES)],
        program,
    )
    for p_node, d_node in zip(plain, delta):
        assert p_node.state_fingerprint() == d_node.state_fingerprint()
        assert p_node.dbvv == d_node.dbvv
        for name in ITEMS:
            assert p_node.store[name].ivv == d_node.store[name].ivv
        d_node.check_invariants()


@settings(max_examples=30, deadline=None)
@given(programs)
def test_zero_history_limit_always_falls_back_and_still_converges(program):
    cluster = run(
        [DeltaEpidemicNode(k, N_NODES, ITEMS, history_limit=0) for k in range(N_NODES)],
        program,
    )
    reference = cluster[0].state_fingerprint()
    for node in cluster[1:]:
        assert node.state_fingerprint() == reference
    # With no history, every shipped payload was a whole-value copy.
    assert all(node.deltas_shipped == 0 for node in cluster)
