"""Unit tests for SendPropagation (paper Figure 2)."""

from repro.core.messages import PropagationReply, YouAreCurrent
from repro.core.node import EpidemicNode
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(20)]


def make_pair():
    return EpidemicNode(0, 3, ITEMS), EpidemicNode(1, 3, ITEMS)


class TestYouAreCurrent:
    def test_identical_replicas_answer_you_are_current(self):
        a, b = make_pair()
        answer = b.send_propagation(a.make_propagation_request())
        assert isinstance(answer, YouAreCurrent)
        assert answer.source == 1

    def test_recipient_ahead_answers_you_are_current(self):
        a, b = make_pair()
        a.update("item-0", Put(b"v"))
        answer = b.send_propagation(a.make_propagation_request())
        assert isinstance(answer, YouAreCurrent)

    def test_identical_detection_is_one_vector_comparison(self):
        """The paper's O(1) claim: detecting 'nothing to do' costs one
        DBVV comparison regardless of item count or update history."""
        counters = OverheadCounters()
        a = EpidemicNode(0, 3, ITEMS)
        b = EpidemicNode(1, 3, ITEMS, counters=counters)
        for k in range(10):
            b.update(ITEMS[k], Put(b"v"))
        a.pull_from(b)
        counters.reset()
        answer = b.send_propagation(a.make_propagation_request())
        assert isinstance(answer, YouAreCurrent)
        assert counters.vv_comparisons == 1
        assert counters.items_scanned == 0
        assert counters.log_records_examined == 0


class TestTailVector:
    def test_reply_contains_missing_records_per_origin(self):
        a, b = make_pair()
        b.update("item-1", Put(b"v1"))
        b.update("item-2", Put(b"v2"))
        reply = b.send_propagation(a.make_propagation_request())
        assert isinstance(reply, PropagationReply)
        assert reply.tails[1] == (("item-1", 1), ("item-2", 2))
        assert reply.tails[0] == ()
        assert reply.tails[2] == ()

    def test_tail_excludes_records_recipient_already_has(self):
        a, b = make_pair()
        b.update("item-1", Put(b"v1"))
        a.pull_from(b)
        b.update("item-2", Put(b"v2"))
        reply = b.send_propagation(a.make_propagation_request())
        assert reply.tails[1] == (("item-2", 2),)

    def test_item_set_deduplicates_across_origins(self):
        """An item updated by several origins appears once in S."""
        a = EpidemicNode(0, 3, ITEMS)
        b = EpidemicNode(1, 3, ITEMS)
        c = EpidemicNode(2, 3, ITEMS)
        b.update("item-5", Put(b"from-b"))
        c.pull_from(b)
        c.update("item-5", Put(b"from-c"))
        reply = c.send_propagation(a.make_propagation_request())
        names = [payload.name for payload in reply.items]
        assert names.count("item-5") == 1
        # But both origins' records are in the tails.
        assert reply.tails[1] == (("item-5", 1),)
        assert reply.tails[2] == (("item-5", 1),)

    def test_is_selected_flags_are_restored(self):
        a, b = make_pair()
        b.update("item-3", Put(b"v"))
        b.send_propagation(a.make_propagation_request())
        assert all(not entry.is_selected for entry in b.store)

    def test_payloads_carry_item_ivvs(self):
        a, b = make_pair()
        b.update("item-3", Put(b"v"))
        reply = b.send_propagation(a.make_propagation_request())
        (payload,) = reply.items
        assert payload.name == "item-3"
        assert payload.value == b"v"
        assert payload.ivv.as_tuple() == (0, 1, 0)

    def test_payload_ivv_is_a_snapshot(self):
        """Mutating the source after the reply must not change the
        shipped IVV (messages are values, not views)."""
        a, b = make_pair()
        b.update("item-3", Put(b"v"))
        reply = b.send_propagation(a.make_propagation_request())
        b.update("item-3", Put(b"v2"))
        (payload,) = reply.items
        assert payload.ivv.as_tuple() == (0, 1, 0)


class TestCostModel:
    def test_work_is_linear_in_m_not_n(self):
        """Source-side cost touches only the m selected records/items."""
        counters = OverheadCounters()
        a = EpidemicNode(0, 2, ITEMS)
        b = EpidemicNode(1, 2, ITEMS, counters=counters)
        b.update("item-0", Put(b"v"))
        b.update("item-1", Put(b"v"))
        counters.reset()
        b.send_propagation(a.make_propagation_request())
        assert counters.log_records_examined == 2
        assert counters.items_scanned == 2

    def test_auxiliary_copies_never_ship_in_propagation(self):
        """Only regular copies enter S (paper section 5.1)."""
        a = EpidemicNode(0, 3, ITEMS)
        b = EpidemicNode(1, 3, ITEMS)
        c = EpidemicNode(2, 3, ITEMS)
        c.update("item-0", Put(b"newest"))
        b.copy_out_of_bound("item-0", c)   # b now has a newer AUX copy
        b.update("item-1", Put(b"regular"))
        reply = b.send_propagation(a.make_propagation_request())
        names = {payload.name for payload in reply.items}
        assert names == {"item-1"}
        for payload in reply.items:
            if payload.name == "item-0":
                assert payload.value == b""  # regular copy, not aux
