"""Unit tests for protocol messages and the wire-size model."""

from repro.core.log_vector import LOG_RECORD_WIRE_SIZE
from repro.core.messages import (
    WORD_SIZE,
    ItemPayload,
    OutOfBoundReply,
    OutOfBoundRequest,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
    string_wire_size,
    vv_wire_size,
)
from repro.core.version_vector import VersionVector


def vv(*counts):
    return VersionVector.from_counts(list(counts))


class TestSizes:
    def test_vv_size_scales_with_replica_set(self):
        assert vv_wire_size(vv(0, 0)) == 2 * WORD_SIZE
        assert vv_wire_size(vv(0, 0, 0, 0)) == 4 * WORD_SIZE

    def test_request_is_one_vector_plus_identity(self):
        request = PropagationRequest(0, vv(1, 2, 3))
        assert request.wire_size() == WORD_SIZE + 3 * WORD_SIZE

    def test_you_are_current_is_constant_size(self):
        """The 'nothing to do' answer must not scale with anything —
        that is the O(1) traffic claim."""
        assert YouAreCurrent(0).wire_size() == WORD_SIZE

    def test_string_size_charges_actual_name_length(self):
        """Names are variable-length data: a length word plus the UTF-8
        bytes, not a flat 8-byte reference."""
        assert string_wire_size("x") == WORD_SIZE + 1
        assert string_wire_size("item/0042") == WORD_SIZE + 9
        assert string_wire_size("é") == WORD_SIZE + 2  # UTF-8, not chars

    def test_item_payload_size(self):
        payload = ItemPayload("x", b"12345", vv(0, 1))
        assert payload.wire_size() == string_wire_size("x") + 5 + 2 * WORD_SIZE

    def test_reply_size_sums_tails_and_payloads(self):
        reply = PropagationReply(
            source=1,
            tails=((("x", 1),), ()),
            items=(ItemPayload("x", b"abc", vv(1, 0)),),
        )
        expected = (
            WORD_SIZE
            + 1 * LOG_RECORD_WIRE_SIZE
            + (string_wire_size("x") + 3 + 2 * WORD_SIZE)
        )
        assert reply.wire_size() == expected

    def test_reply_record_count(self):
        reply = PropagationReply(
            source=0,
            tails=((("x", 1), ("y", 2)), (("z", 3),)),
            items=(),
        )
        assert reply.record_count() == 3

    def test_metadata_per_item_is_constant(self):
        """Reply size minus payload bytes grows by a constant per item
        (one record + one IVV + a name ref) — paper section 6."""
        def reply_with(m):
            tails = (tuple((f"i{k}", k + 1) for k in range(m)), ())
            items = tuple(ItemPayload(f"i{k}", b"v" * 10, vv(k + 1, 0)) for k in range(m))
            return PropagationReply(0, tails, items)

        size_1 = reply_with(1).wire_size()
        size_2 = reply_with(2).wire_size()
        size_5 = reply_with(5).wire_size()
        per_item = size_2 - size_1
        assert size_5 == size_1 + 4 * per_item

    def test_oob_messages(self):
        request = OutOfBoundRequest(2, "x")
        reply = OutOfBoundReply(1, "x", b"valu", vv(0, 3))
        assert request.wire_size() == WORD_SIZE + string_wire_size("x")
        assert reply.wire_size() == (
            WORD_SIZE + string_wire_size("x") + 4 + 2 * WORD_SIZE
        )


class TestValueSemantics:
    def test_messages_are_frozen(self):
        request = PropagationRequest(0, vv(1))
        try:
            request.recipient = 9  # type: ignore[misc]
        except AttributeError:
            pass
        else:
            raise AssertionError("messages must be immutable")

    def test_payload_equality(self):
        a = ItemPayload("x", b"v", vv(1, 0))
        b = ItemPayload("x", b"v", vv(1, 0))
        assert a == b
