"""Unit tests for the sans-I/O session driver (repro.core.session).

The driver is the piece both deployments share: the simulator's
protocol adapter and the networked node must drive identical protocol
logic, so these tests pin its contract without any transport at all.
"""

import pytest

from repro.core.messages import PropagationReply, YouAreCurrent
from repro.core.node import EpidemicNode
from repro.core.session import PullOutcome, PullSession, respond
from repro.errors import ProtocolStateError
from repro.substrate.operations import Put

ITEMS = ["a", "b"]


def make_pair():
    return (
        EpidemicNode(0, 2, ITEMS),
        EpidemicNode(1, 2, ITEMS),
    )


class TestPullSession:
    def test_identical_replicas_exchange_you_are_current(self):
        recipient, source = make_pair()
        pull = PullSession(recipient)
        answer = respond(source, pull.request())
        assert isinstance(answer, YouAreCurrent)
        outcome = pull.conclude(answer)
        assert outcome == PullOutcome(identical=True, adopted=(), conflicts=0)

    def test_pull_adopts_missing_updates(self):
        recipient, source = make_pair()
        source.update("a", Put(b"fresh"))
        pull = PullSession(recipient)
        answer = respond(source, pull.request())
        assert isinstance(answer, PropagationReply)
        outcome = pull.conclude(answer)
        assert outcome.identical is False
        assert outcome.adopted == ("a",)
        assert outcome.conflicts == 0
        assert recipient.read("a") == b"fresh"
        assert recipient.dbvv.as_tuple() == source.dbvv.as_tuple()

    def test_driver_round_trip_reaches_you_are_current(self):
        recipient, source = make_pair()
        source.update("b", Put(b"v1"))
        first = PullSession(recipient)
        first.conclude(respond(source, first.request()))
        second = PullSession(recipient)
        assert second.conclude(
            respond(source, second.request())
        ).identical

    def test_conflicts_are_counted_per_session(self):
        recipient, source = make_pair()
        recipient.update("a", Put(b"mine"))
        source.update("a", Put(b"theirs"))
        pull = PullSession(recipient)
        outcome = pull.conclude(respond(source, pull.request()))
        assert outcome.conflicts == recipient.conflicts.count
        assert outcome.conflicts > 0

    def test_illegal_answer_type_raises(self):
        recipient, _ = make_pair()
        pull = PullSession(recipient)
        pull.request()
        with pytest.raises(ProtocolStateError):
            pull.conclude("not a protocol message")

    def test_dropped_session_leaves_node_untouched(self):
        """Abandoning a session after request() must not disturb the
        node — the request side is read-only."""
        recipient, source = make_pair()
        source.update("a", Put(b"x"))
        before = recipient.dbvv.as_tuple()
        PullSession(recipient).request()   # transport "loses" the rest
        assert recipient.dbvv.as_tuple() == before
        recipient.check_invariants()
