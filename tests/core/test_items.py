"""Unit tests for data items and the item store."""

import pytest

from repro.core.items import DataItem, ItemStore
from repro.core.version_vector import VersionVector
from repro.errors import UnknownItemError


class TestDataItem:
    def test_fresh_item_state(self):
        item = DataItem("x", n_nodes=3)
        assert item.value == b""
        assert item.ivv.as_tuple() == (0, 0, 0)
        assert not item.has_auxiliary
        assert not item.is_selected
        assert not item.in_conflict

    def test_current_value_prefers_auxiliary(self):
        item = DataItem("x", n_nodes=2, value=b"regular")
        assert item.current_value() == b"regular"
        item.install_auxiliary(b"aux", VersionVector.from_counts([0, 1]))
        assert item.current_value() == b"aux"
        assert item.current_ivv().as_tuple() == (0, 1)

    def test_install_auxiliary_copies_the_ivv(self):
        item = DataItem("x", n_nodes=2)
        ivv = VersionVector.from_counts([0, 1])
        item.install_auxiliary(b"aux", ivv)
        ivv.increment(0)
        assert item.aux_ivv.as_tuple() == (0, 1)

    def test_drop_auxiliary_restores_regular_view(self):
        item = DataItem("x", n_nodes=2, value=b"regular")
        item.install_auxiliary(b"aux", VersionVector.from_counts([0, 1]))
        item.drop_auxiliary()
        assert not item.has_auxiliary
        assert item.current_value() == b"regular"
        assert item.current_ivv() is item.ivv

    def test_repr_mentions_auxiliary(self):
        item = DataItem("x", n_nodes=2)
        assert "+aux" not in repr(item)
        item.install_auxiliary(b"a", VersionVector.zero(2))
        assert "+aux" in repr(item)


class TestItemStore:
    def test_registration_and_lookup(self):
        store = ItemStore(2, ["x", "y"])
        assert len(store) == 2
        assert "x" in store
        assert store["x"].name == "x"

    def test_duplicate_registration_rejected(self):
        store = ItemStore(2, ["x"])
        with pytest.raises(ValueError):
            store.register("x")

    def test_unknown_item_raises(self):
        store = ItemStore(2, ["x"])
        with pytest.raises(UnknownItemError):
            store["nope"]
        assert store.get("nope") is None

    def test_iteration_yields_items(self):
        store = ItemStore(2, ["x", "y", "z"])
        assert sorted(item.name for item in store) == ["x", "y", "z"]
        assert set(store.names()) == {"x", "y", "z"}

    def test_register_with_initial_value(self):
        store = ItemStore(2)
        store.register("x", b"seed")
        assert store["x"].value == b"seed"
