"""Property tests: ``check_invariants`` actually detects corruption.

The invariant checker used to contain a tautology — the log-seqno bound
was written as ``max_seqno <= max(dbvv[k], max_seqno)``, which can never
fail.  These tests prove the fixed checks have teeth: deliberately
corrupting a replica (a log record the DBVV never accounted, or a DBVV
component with no backing IVVs) must raise, for *any* prior conflict-free
history the replica accumulated honestly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.node import EpidemicNode
from repro.substrate.operations import Put

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(4)]

# A program is a list of item indices; the updater is derived from the
# item (single writer per item) so honest histories are conflict-free —
# conflicts legitimately freeze the checks we are trying to trip.
programs = st.lists(st.integers(0, len(ITEMS) - 1), max_size=10)


def build_replica(program):
    nodes = [EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
    for counter, item_idx in enumerate(program):
        writer = item_idx % N_NODES
        nodes[writer].update(ITEMS[item_idx], Put(f"{counter};".encode()))
    # Fold the peers' updates into node 0 so its log has components for
    # every origin, then make sure the honest state is sound.
    nodes[0].pull_from(nodes[1])
    nodes[0].pull_from(nodes[2])
    nodes[0].check_invariants()
    return nodes[0]


class TestLogSeqnoCorruption:
    @settings(max_examples=50, deadline=None)
    @given(programs, st.integers(0, N_NODES - 1), st.integers(1, 5))
    def test_unaccounted_log_record_is_detected(self, program, origin, gap):
        """A record ``(item, m)`` with ``m > dbvv[origin]`` claims updates
        the DBVV never absorbed.  It passes every *structural* log check
        (it is a well-formed in-order tail append), so only the
        cross-structure seqno bound can catch it — the check the old
        tautology silently skipped."""
        node = build_replica(program)
        bogus = max(node.dbvv[origin], node.log[origin].max_seqno) + gap
        node.log.add(origin, ITEMS[0], bogus)
        node.log.check_invariants()  # structurally fine: that's the point
        with pytest.raises(AssertionError, match="log component"):
            node.check_invariants()

    def test_regression_tautology_example(self):
        """The concrete shape the tautology used to wave through: a fresh
        replica whose log claims a seqno its all-zero DBVV never saw."""
        node = EpidemicNode(0, N_NODES, ITEMS)
        node.log.add(1, ITEMS[2], 7)
        with pytest.raises(AssertionError):
            node.check_invariants()


class TestDBVVCorruption:
    @settings(max_examples=50, deadline=None)
    @given(programs, st.integers(0, N_NODES - 1))
    def test_phantom_dbvv_increment_is_detected(self, program, origin):
        """Bumping a DBVV component without any matching IVV change
        breaks rule 3 (DBVV == IVV column sums) and must be caught."""
        node = build_replica(program)
        node.dbvv.record_local_update_by(origin)
        with pytest.raises(AssertionError, match="column sums"):
            node.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(programs)
    def test_honest_history_always_passes(self, program):
        """Control: without corruption the same histories never trip."""
        build_replica(program).check_invariants()
