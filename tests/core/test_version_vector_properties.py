"""Property-based tests: the version-vector lattice (DESIGN.md inv. 1).

Version vectors under component-wise max form a join-semilattice whose
partial order is exactly the dominates-or-equal relation; Theorem 3's
machinery rests on these algebraic facts, so they get hypothesis
coverage rather than a few examples.
"""

from hypothesis import given, strategies as st

from repro.core.version_vector import Ordering, VersionVector, merge

N_NODES = 4

components = st.integers(min_value=0, max_value=50)
vectors = st.builds(
    VersionVector.from_counts,
    st.lists(components, min_size=N_NODES, max_size=N_NODES),
)


@given(vectors, vectors)
def test_comparison_is_antisymmetric(a, b):
    assert a.compare(b) is b.compare(a).flipped()


@given(vectors)
def test_comparison_is_reflexive_equal(a):
    assert a.compare(a.copy()) is Ordering.EQUAL


@given(vectors, vectors, vectors)
def test_domination_is_transitive(a, b, c):
    if a.dominates_or_equal(b) and b.dominates_or_equal(c):
        assert a.dominates_or_equal(c)


@given(vectors, vectors)
def test_merge_is_commutative(a, b):
    assert merge(a, b) == merge(b, a)


@given(vectors, vectors, vectors)
def test_merge_is_associative(a, b, c):
    assert merge(merge(a, b), c) == merge(a, merge(b, c))


@given(vectors)
def test_merge_is_idempotent(a):
    assert merge(a, a) == a


@given(vectors, vectors)
def test_merge_is_least_upper_bound(a, b):
    m = merge(a, b)
    assert m.dominates_or_equal(a)
    assert m.dominates_or_equal(b)
    # Least: anything above both is above the merge.
    upper = VersionVector.from_counts(
        [max(x, y) + 1 for x, y in zip(a, b)]
    )
    assert upper.dominates_or_equal(m)


@given(vectors, vectors)
def test_merge_preserves_absorption(a, b):
    # a join (a join b) == a join b  (absorption over the same pair)
    m = merge(a, b)
    assert merge(a, m) == m


@given(vectors, vectors)
def test_exactly_one_ordering_holds(a, b):
    ordering = a.compare(b)
    checks = {
        Ordering.EQUAL: a == b,
        Ordering.DOMINATES: a.dominates(b),
        Ordering.DOMINATED: b.dominates(a),
        Ordering.CONCURRENT: a.concurrent_with(b),
    }
    assert checks[ordering]
    assert sum(bool(v) for v in checks.values()) == 1


@given(vectors, vectors)
def test_missing_from_matches_merge_delta(a, b):
    """The per-origin gaps are exactly what merging would add."""
    gaps = a.missing_from(b)
    merged = merge(a, b)
    for k in range(N_NODES):
        assert merged[k] - a[k] == gaps.get(k, 0)


@given(vectors, st.integers(min_value=0, max_value=N_NODES - 1))
def test_increment_strictly_dominates(a, node):
    bumped = a.copy()
    bumped.increment(node)
    assert bumped.dominates(a)
