"""Property-based tests: interrupted sessions never corrupt a replica.

The tentpole safety property of mid-session fault injection.  For any
workload and any scripted fault — a message dropped in flight at either
fault point of the DBVV session (the request or the reply), or either
endpoint crashing between two messages — the session aborts cleanly:

* both endpoints still satisfy every cross-structure invariant
  (``check_invariants``);
* criterion C2 holds — no replica ever adopted a non-dominating copy
  (every item IVV moves monotonically, and an aborted session changes
  no durable state at all);
* after the fault clears, ordinary retry re-runs the session and the
  pair converges — an interruption delays propagation, never poisons it.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.network import SimulatedNetwork
from repro.core.protocol import DBVVProtocolNode
from repro.core.version_vector import VersionVector
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Append

N_NODES = 2
ITEMS = [f"item-{k}" for k in range(4)]

# One update: (node, item index).  Counter-stamped payloads are applied
# in program order, so every program is conflict-prone only through
# genuine concurrency (same item updated on both sides between syncs).
updates = st.lists(
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, len(ITEMS) - 1)),
    max_size=12,
)

# Every fault point of the two-message DBVV session, on both endpoints:
#   ("drop", n)      — the n-th session message is lost in flight
#                      (n=1: request-sent, n=2: reply-in-flight);
#   ("crash", who, n) — endpoint `who` dies after the n-th message,
#                      i.e. between two messages of the session.
faults = st.sampled_from([
    ("drop", 1),
    ("drop", 2),
    ("crash", 0, 1),
    ("crash", 1, 1),
    ("crash", 0, 2),
    ("crash", 1, 2),
])


def build_pair(program):
    nodes = [
        DBVVProtocolNode(k, N_NODES, ITEMS, counters=OverheadCounters())
        for k in range(N_NODES)
    ]
    net = SimulatedNetwork(N_NODES, counters=OverheadCounters())
    for counter, (who, item_idx) in enumerate(program):
        nodes[who].user_update(ITEMS[item_idx], Append(f"{counter};".encode()))
    return nodes, net


def ivv_snapshot(node):
    return {
        entry.name: entry.ivv.copy() for entry in node.node.store
    }


def assert_c2_monotone(node, before):
    """No non-dominating adoption: every IVV moved forward (or stayed),
    never sideways or back."""
    for entry in node.node.store:
        old = before[entry.name]
        assert entry.ivv.dominates_or_equal(old), (
            f"C2 violated on node {node.node_id}: {entry.name} went "
            f"{old.as_tuple()} -> {entry.ivv.as_tuple()}"
        )


@settings(max_examples=60, deadline=None)
@given(updates, faults)
def test_faulted_session_aborts_cleanly_and_recovers(program, fault):
    nodes, net = build_pair(program)
    a, b = nodes
    before_a = ivv_snapshot(a)
    before_b = ivv_snapshot(b)
    fp_a = a.state_fingerprint()
    fp_b = b.state_fingerprint()

    if fault[0] == "drop":
        net.arm_message_drop(nth_message=fault[1])
    else:
        _tag, who, after = fault
        net.arm_mid_session_crash(who, after_messages=after)

    stats = a.sync_with(b, net)

    # Whatever happened, both replicas must still be internally sound.
    a.check_invariants()
    b.check_invariants()
    # C2: nothing moved backwards or sideways.
    assert_c2_monotone(a, before_a)
    assert_c2_monotone(b, before_b)

    if stats.failed:
        # The abort names the phase the session died in, and an aborted
        # pull changes no durable state on either side (the reply is
        # fully received before any adoption).
        assert stats.aborted_phase is not None
        assert a.state_fingerprint() == fp_a
        assert b.state_fingerprint() == fp_b

    # Recovery: clear the fault and retry until the pair converges.
    net.set_up(0)
    net.set_up(1)
    for _attempt in range(3):
        a.sync_with(b, net)
        b.sync_with(a, net)
    a.check_invariants()
    b.check_invariants()
    if a.conflict_count() == 0 and b.conflict_count() == 0:
        assert a.state_fingerprint() == b.state_fingerprint(), (
            "conflict-free pair failed to converge after the fault cleared"
        )


@settings(max_examples=40, deadline=None)
@given(updates, st.sampled_from([1, 2]))
def test_lossy_session_wastes_bytes_but_not_state(program, nth):
    """The wasted traffic of an aborted session is observable (the
    scope accounted it) and buys exactly zero state change."""
    nodes, net = build_pair(program)
    a, b = nodes
    fp_a = a.state_fingerprint()
    net.arm_message_drop(nth_message=nth)
    stats = a.sync_with(b, net)
    assert stats.failed
    assert stats.messages == nth
    assert stats.bytes_sent > 0
    assert a.state_fingerprint() == fp_a


@settings(max_examples=40, deadline=None)
@given(updates)
def test_crash_between_messages_leaves_responder_sound(program):
    """The responder has already processed the request when the crash
    fires (source-processed is a real intermediate state) — its
    invariants must hold even though the initiator never got the reply."""
    nodes, net = build_pair(program)
    a, b = nodes
    net.arm_mid_session_crash(0, after_messages=1)
    a.sync_with(b, net)
    b.check_invariants()
    # The responder's DBVV/log were read, not written: serving a request
    # must never change the source's durable state.
    assert isinstance(b.node.dbvv, VersionVector)
    a.check_invariants()
