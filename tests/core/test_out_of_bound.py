"""Unit tests for out-of-bound copying (paper section 5.2)."""

from repro.core.node import EpidemicNode
from repro.substrate.operations import Append, Put

ITEMS = ["x", "y"]


def make_nodes(n=3):
    return [EpidemicNode(k, n, ITEMS) for k in range(n)]


class TestServingOOBRequests:
    def test_source_serves_regular_copy_by_default(self):
        a, b, _ = make_nodes()
        b.update("x", Put(b"v"))
        reply = b.handle_oob_request(a.make_oob_request("x"))
        assert reply.value == b"v"
        assert reply.ivv.as_tuple() == (0, 1, 0)

    def test_source_prefers_auxiliary_copy(self):
        """The auxiliary copy is never older than the regular copy, so
        it is served when present (an optimization, section 5.2)."""
        a, b, c = make_nodes()
        c.update("x", Put(b"newest"))
        b.copy_out_of_bound("x", c)
        b.update("x", Append(b"+b"))
        reply = b.handle_oob_request(a.make_oob_request("x"))
        assert reply.value == b"newest+b"
        assert reply.ivv.as_tuple() == (0, 1, 1)


class TestAdoptingOOBReplies:
    def test_newer_copy_becomes_auxiliary(self):
        a, b, _ = make_nodes()
        b.update("x", Put(b"v"))
        assert a.copy_out_of_bound("x", b)
        entry = a.store["x"]
        assert entry.has_auxiliary
        assert entry.aux_value == b"v"
        assert entry.aux_ivv.as_tuple() == (0, 1, 0)
        # Regular copy untouched.
        assert entry.value == b""
        assert entry.ivv.as_tuple() == (0, 0, 0)

    def test_oob_copy_leaves_dbvv_and_logs_alone(self):
        a, b, _ = make_nodes()
        b.update("x", Put(b"v"))
        a.copy_out_of_bound("x", b)
        assert a.dbvv.as_tuple() == (0, 0, 0)
        assert len(a.log) == 0
        assert len(a.aux_log) == 0

    def test_older_copy_is_ignored(self):
        a, b, _ = make_nodes()
        a.update("x", Put(b"local"))
        assert not a.copy_out_of_bound("x", b)
        assert a.read("x") == b"local"
        assert not a.store["x"].has_auxiliary

    def test_equal_copy_is_ignored(self):
        a, b, _ = make_nodes()
        b.update("x", Put(b"v"))
        a.pull_from(b)
        assert not a.copy_out_of_bound("x", b)
        assert not a.store["x"].has_auxiliary

    def test_concurrent_copy_declares_conflict(self):
        a, b, _ = make_nodes()
        a.update("x", Put(b"from-a"))
        b.update("x", Put(b"from-b"))
        assert not a.copy_out_of_bound("x", b)
        assert a.conflicts.count == 1
        assert a.read("x") == b"from-a"

    def test_repeated_oob_refreshes_auxiliary(self):
        a, b, _ = make_nodes()
        b.update("x", Put(b"v1"))
        a.copy_out_of_bound("x", b)
        b.update("x", Put(b"v2"))
        assert a.copy_out_of_bound("x", b)
        assert a.read("x") == b"v2"

    def test_refreshing_auxiliary_keeps_pending_aux_log(self):
        """Overwriting an older auxiliary copy does not modify the
        auxiliary log (section 5.2): pending records still replay."""
        a, b, _ = make_nodes()
        b.update("x", Put(b"v1"))
        a.copy_out_of_bound("x", b)
        a.update("x", Append(b"+a"))       # one pending aux record
        b.update("x", Put(b"v2"))
        b_ivv_before = b.store["x"].ivv.copy()
        # b's new copy does not dominate a's aux (a made its own update),
        # so the fetch is rejected as concurrent — build the dominating
        # case instead: a pulls nothing; b must first see a's update.
        assert len(a.aux_log) == 1
        assert not a.copy_out_of_bound("x", b)  # concurrent now
        assert len(a.aux_log) == 1              # aux log untouched
        assert b.store["x"].ivv == b_ivv_before

    def test_oob_comparison_uses_auxiliary_ivv_when_present(self):
        a, b, c = make_nodes()
        b.update("x", Put(b"v1"))
        a.copy_out_of_bound("x", b)           # aux ivv (0,1,0)
        c.update("x", Put(b"other"))          # ivv (0,0,1) — concurrent
        assert not a.copy_out_of_bound("x", c)
        assert a.conflicts.count == 1

    def test_oob_from_node_that_is_behind_regular_copy(self):
        """Received IVV dominated by the *regular* copy (no aux yet):
        no action, no auxiliary created."""
        a, b, _ = make_nodes()
        b.update("x", Put(b"v1"))
        a.pull_from(b)
        a.update("x", Append(b"+a"))
        assert not a.copy_out_of_bound("x", b)
        assert not a.store["x"].has_auxiliary
