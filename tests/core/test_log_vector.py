"""Unit tests for the log vector (paper section 4.2, Figure 1)."""

import pytest

from repro.core.log_vector import LogComponent, LogVector
from repro.errors import UnknownNodeError
from repro.metrics.counters import OverheadCounters


class TestAddLogRecord:
    """The paper's AddLogRecord: append + O(1) eviction of the previous
    record for the same item."""

    def test_records_append_in_order(self):
        log = LogComponent(origin=0)
        log.add("y", 1)
        log.add("x", 3)
        log.add("z", 4)
        assert log.pairs() == [("y", 1), ("x", 3), ("z", 4)]

    def test_figure_1_scenario(self):
        """Figure 1: adding (x,5) to [y:1, x:3, z:4] yields [y:1, z:4, x:5]."""
        log = LogComponent(origin=0)
        log.add("y", 1)
        log.add("x", 3)
        log.add("z", 4)
        log.add("x", 5)
        assert log.pairs() == [("y", 1), ("z", 4), ("x", 5)]

    def test_at_most_one_record_per_item(self):
        log = LogComponent(origin=0)
        for seqno in range(1, 100):
            log.add("x", seqno)
        assert len(log) == 1
        assert log.pairs() == [("x", 99)]

    def test_eviction_counted(self):
        counters = OverheadCounters()
        log = LogComponent(origin=0)
        log.add("x", 1, counters)
        log.add("x", 2, counters)
        log.add("y", 3, counters)
        assert counters.log_records_added == 3
        assert counters.log_records_evicted == 1

    def test_out_of_order_add_rejected(self):
        log = LogComponent(origin=0)
        log.add("x", 5)
        with pytest.raises(ValueError):
            log.add("y", 5)
        with pytest.raises(ValueError):
            log.add("y", 3)

    def test_evicting_head_keeps_list_intact(self):
        log = LogComponent(origin=0)
        log.add("x", 1)
        log.add("y", 2)
        log.add("x", 3)  # evicts the head record
        assert log.pairs() == [("y", 2), ("x", 3)]
        log.check_invariants()

    def test_evicting_middle_keeps_list_intact(self):
        log = LogComponent(origin=0)
        log.add("a", 1)
        log.add("b", 2)
        log.add("c", 3)
        log.add("b", 4)
        assert log.pairs() == [("a", 1), ("c", 3), ("b", 4)]
        log.check_invariants()

    def test_record_for_is_the_pointer_lookup(self):
        log = LogComponent(origin=0)
        log.add("x", 1)
        record = log.add("x", 2)
        assert log.record_for("x") is record
        assert log.record_for("missing") is None

    def test_max_seqno_tracks_tail(self):
        log = LogComponent(origin=0)
        assert log.max_seqno == 0
        log.add("x", 7)
        assert log.max_seqno == 7


class TestTailExtraction:
    def test_tail_after_returns_suffix_oldest_first(self):
        log = LogComponent(origin=0)
        for seqno, item in enumerate(["a", "b", "c", "d"], start=1):
            log.add(item, seqno)
        tail = log.tail_after(2)
        assert [r.pair() for r in tail] == [("c", 3), ("d", 4)]

    def test_tail_after_zero_returns_everything(self):
        log = LogComponent(origin=0)
        log.add("a", 1)
        log.add("b", 2)
        assert len(log.tail_after(0)) == 2

    def test_tail_after_max_returns_nothing(self):
        log = LogComponent(origin=0)
        log.add("a", 1)
        assert log.tail_after(1) == []

    def test_tail_cost_is_linear_in_suffix_not_log_size(self):
        """The backwards walk touches only returned records — the O(m)
        guarantee of SendPropagation (paper section 6)."""
        log = LogComponent(origin=0)
        for seqno in range(1, 1001):
            log.add(f"item-{seqno}", seqno)
        counters = OverheadCounters()
        tail = log.tail_after(997, counters)
        assert len(tail) == 3
        assert counters.log_records_examined == 3

    def test_tail_of_empty_log(self):
        assert LogComponent(origin=0).tail_after(0) == []


class TestDiscardItem:
    def test_discard_removes_items_record(self):
        log = LogComponent(origin=0)
        log.add("x", 1)
        log.add("y", 2)
        assert log.discard_item("x")
        assert log.pairs() == [("y", 2)]
        log.check_invariants()

    def test_discard_missing_item_returns_false(self):
        log = LogComponent(origin=0)
        assert not log.discard_item("x")

    def test_discarded_item_can_be_readded(self):
        log = LogComponent(origin=0)
        log.add("x", 1)
        log.discard_item("x")
        log.add("x", 5)
        assert log.pairs() == [("x", 5)]


class TestLogVector:
    def test_one_component_per_origin(self):
        vector = LogVector(3)
        assert vector.n_nodes == 3
        assert vector[0].origin == 0
        assert vector[2].origin == 2

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            LogVector(0)

    def test_unknown_origin_raises(self):
        with pytest.raises(UnknownNodeError):
            LogVector(2)[5]

    def test_len_sums_components(self):
        vector = LogVector(2)
        vector.add(0, "x", 1)
        vector.add(1, "x", 1)
        vector.add(1, "y", 2)
        assert len(vector) == 3

    def test_total_records_bounded_by_n_times_items(self):
        """The n·N bound (paper section 4.2) under heavy updates."""
        vector = LogVector(3)
        items = [f"i{k}" for k in range(10)]
        seqnos = [0, 0, 0]
        for step in range(500):
            origin = step % 3
            seqnos[origin] += 1
            vector.add(origin, items[step % len(items)], seqnos[origin])
        assert len(vector) <= 3 * len(items)
        vector.check_invariants()

    def test_discard_item_across_components(self):
        vector = LogVector(3)
        vector.add(0, "x", 1)
        vector.add(1, "x", 1)
        vector.add(2, "y", 1)
        assert vector.discard_item("x") == 2
        assert len(vector) == 1

    def test_components_listing(self):
        vector = LogVector(2)
        assert [c.origin for c in vector.components()] == [0, 1]
