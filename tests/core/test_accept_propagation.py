"""Unit tests for AcceptPropagation (paper Figure 3)."""

import pytest

from repro.core.conflicts import ConflictPolicy, ConflictReporter, ConflictSite
from repro.core.messages import PropagationReply, YouAreCurrent
from repro.core.node import EpidemicNode
from repro.errors import ConflictError
from repro.substrate.operations import Put

ITEMS = [f"item-{k}" for k in range(10)]


def make_pair(n_nodes=2):
    return (
        EpidemicNode(0, n_nodes, ITEMS),
        EpidemicNode(1, n_nodes, ITEMS),
    )


class TestAdoption:
    def test_dominating_copies_are_adopted(self):
        a, b = make_pair()
        b.update("item-1", Put(b"v1"))
        outcome, _ = a.pull_from(b)
        assert outcome.adopted == ["item-1"]
        assert a.read("item-1") == b"v1"
        assert a.store["item-1"].ivv == b.store["item-1"].ivv

    def test_dbvv_updated_per_rule_3(self):
        a, b = make_pair()
        b.update("item-1", Put(b"v1"))
        b.update("item-1", Put(b"v2"))
        b.update("item-2", Put(b"v3"))
        a.pull_from(b)
        assert a.dbvv.as_tuple() == (0, 3)

    def test_log_tails_are_appended(self):
        a, b = make_pair()
        b.update("item-1", Put(b"v1"))
        b.update("item-2", Put(b"v2"))
        outcome, _ = a.pull_from(b)
        assert outcome.records_appended == 2
        assert a.log[1].pairs() == [("item-1", 1), ("item-2", 2)]

    def test_adopted_state_enables_onward_propagation(self):
        """After catching up, the recipient can serve the same updates
        to a third node (forwarding — what Oracle push can't do)."""
        a, b = make_pair(n_nodes=3)
        c = EpidemicNode(2, 3, ITEMS)
        b.update("item-1", Put(b"v1"))
        a.pull_from(b)
        outcome, _ = c.pull_from(a)
        assert outcome.adopted == ["item-1"]
        assert c.read("item-1") == b"v1"

    def test_convergent_dbvvs_after_mutual_pulls(self):
        a, b = make_pair()
        a.update("item-0", Put(b"a"))
        b.update("item-1", Put(b"b"))
        a.pull_from(b)
        b.pull_from(a)
        assert a.dbvv == b.dbvv
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_invariants_hold_after_propagation(self):
        a, b = make_pair()
        for k in range(5):
            b.update(ITEMS[k], Put(f"v{k}".encode()))
        a.pull_from(b)
        a.check_invariants()
        b.check_invariants()


class TestConflictPath:
    def make_conflicting_pair(self):
        a, b = make_pair()
        a.update("item-1", Put(b"from-a"))
        b.update("item-1", Put(b"from-b"))
        return a, b

    def test_concurrent_copies_are_flagged_not_adopted(self):
        a, b = self.make_conflicting_pair()
        outcome, _ = a.pull_from(b)
        assert outcome.conflicted == ["item-1"]
        assert outcome.adopted == []
        assert a.read("item-1") == b"from-a"  # local copy intact (C2)

    def test_conflict_report_carries_both_vectors(self):
        a, b = self.make_conflicting_pair()
        a.pull_from(b)
        (report,) = a.conflicts.reports
        assert report.item == "item-1"
        assert report.site is ConflictSite.ACCEPT_PROPAGATION
        assert report.local_vv == (1, 0)
        assert report.remote_vv == (0, 1)
        assert report.origins == (0, 1)

    def test_conflicting_items_records_stripped_from_tails(self):
        """Records referring to conflicting items are removed from D
        (Fig. 3), so the broken lineage does not enter the local log."""
        a, b = self.make_conflicting_pair()
        b.update("item-2", Put(b"fine"))
        outcome, _ = a.pull_from(b)
        assert outcome.records_dropped == 1
        assert outcome.records_appended == 1
        assert [r.item for r in a.log[1]] == ["item-2"]

    def test_non_conflicting_items_still_adopted(self):
        a, b = self.make_conflicting_pair()
        b.update("item-2", Put(b"fine"))
        outcome, _ = a.pull_from(b)
        assert outcome.adopted == ["item-2"]
        assert a.read("item-2") == b"fine"

    def test_raise_policy_raises(self):
        reporter = ConflictReporter(policy=ConflictPolicy.RAISE)
        a = EpidemicNode(0, 2, ITEMS, conflict_reporter=reporter)
        b = EpidemicNode(1, 2, ITEMS)
        a.update("item-1", Put(b"from-a"))
        b.update("item-1", Put(b"from-b"))
        with pytest.raises(ConflictError):
            a.pull_from(b)

    def test_in_conflict_flag_set(self):
        a, b = self.make_conflicting_pair()
        a.pull_from(b)
        assert a.store["item-1"].in_conflict


class TestResolution:
    """The administrative resolution extension (not in the paper; the
    paper defers resolution to the application)."""

    def test_resolution_dominates_both_lineages(self):
        a, b = make_pair()
        a.update("item-1", Put(b"from-a"))
        b.update("item-1", Put(b"from-b"))
        a.pull_from(b)
        a.resolve_conflict("item-1", b"merged")
        assert a.read("item-1") == b"merged"
        assert not a.store["item-1"].in_conflict
        # Resolved copy dominates both originals, so it propagates.
        assert a.store["item-1"].ivv.dominates(b.store["item-1"].ivv)

    def test_resolution_propagates_to_other_replica(self):
        a, b = make_pair()
        a.update("item-1", Put(b"from-a"))
        b.update("item-1", Put(b"from-b"))
        a.pull_from(b)
        a.resolve_conflict("item-1", b"merged")
        outcome, _ = b.pull_from(a)
        assert outcome.adopted == ["item-1"]
        assert b.read("item-1") == b"merged"
        a.check_invariants()

    def test_resolution_keeps_dbvv_consistent(self):
        a, b = make_pair()
        a.update("item-1", Put(b"from-a"))
        b.update("item-1", Put(b"from-b"))
        a.pull_from(b)
        a.resolve_conflict("item-1", b"merged")
        b.pull_from(a)
        a.check_invariants()


class TestDegenerateReplies:
    def test_pull_from_identical_is_noop(self):
        a, b = make_pair()
        outcome, intra = a.pull_from(b)
        assert outcome.adopted == []
        assert intra.replayed == 0

    def test_empty_reply_is_handled(self):
        a, _b = make_pair()
        outcome, _ = a.accept_propagation(
            PropagationReply(source=1, tails=((), ()), items=())
        )
        assert outcome.adopted == []

    def test_you_are_current_message_fields(self):
        _a, b = make_pair()
        msg = YouAreCurrent(b.node_id)
        assert msg.wire_size() > 0
