"""Unit tests for the trust-boundary validators (repro.core.validate).

Two properties matter, and both are pinned here:

1. **Honest traffic passes.**  Everything the real protocol produces —
   requests, replies, session answers, WAL records — validates, so the
   validators can sit on the hot path without ever firing in a clean
   run.
2. **Dishonest values raise.**  Every documented check fires on a
   minimally-mutated variant, at its exact boundary where one exists.
"""

import dataclasses

import pytest

from repro.core.messages import (
    ItemPayload,
    OutOfBoundReply,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.node import EpidemicNode
from repro.core.session import PullSession, respond
from repro.core.validate import (
    MAX_ITEM_NAME_LEN,
    MAX_REPLICA_SET,
    MAX_SEQNO_GAP,
    MAX_VALUE_LEN,
    MAX_VV_COMPONENT,
    validate_item_name,
    validate_node_id,
    validate_oob_reply,
    validate_propagation_reply,
    validate_propagation_request,
    validate_session_answer,
    validate_value,
    validate_version_vector,
)
from repro.core.version_vector import VersionVector
from repro.durable.records import (
    WalAccept,
    WalExpand,
    WalResolve,
    WalUpdate,
    validate_record,
)
from repro.errors import ReplicationError, ValidationError
from repro.substrate.operations import Put

ITEMS = ["a", "b"]


def make_pair():
    return EpidemicNode(0, 2, ITEMS), EpidemicNode(1, 2, ITEMS)


def honest_reply(recipient, source):
    source.update("a", Put(b"fresh"))
    answer = respond(source, PullSession(recipient).request())
    assert isinstance(answer, PropagationReply)
    return answer


class TestScalarValidators:
    def test_node_id_bounds(self):
        assert validate_node_id(0, 3) == 0
        assert validate_node_id(2, 3) == 2
        for bad in (-1, 3, True, "1", None):
            with pytest.raises(ValidationError):
                validate_node_id(bad, 3)

    def test_item_name_boundary(self):
        assert validate_item_name("a") == "a"
        edge = "x" * MAX_ITEM_NAME_LEN
        assert validate_item_name(edge) is edge
        with pytest.raises(ValidationError):
            validate_item_name("x" * (MAX_ITEM_NAME_LEN + 1))
        with pytest.raises(ValidationError):
            validate_item_name(b"bytes-not-str")

    def test_value_boundary(self):
        assert validate_value(b"") == b""
        edge = bytes(MAX_VALUE_LEN)
        assert validate_value(edge) is edge
        with pytest.raises(ValidationError):
            validate_value(bytes(MAX_VALUE_LEN + 1))
        with pytest.raises(ValidationError):
            validate_value("str-not-bytes")

    def test_version_vector_shape_and_budget(self):
        vv = VersionVector.from_counts((1, MAX_VV_COMPONENT))
        assert validate_version_vector(vv, 2) is vv
        with pytest.raises(ValidationError):
            validate_version_vector(vv, 3)  # wrong replica-set size
        with pytest.raises(ValidationError):
            validate_version_vector((1, 2), 2)  # not a VersionVector
        over = VersionVector.from_counts((0, MAX_VV_COMPONENT + 1))
        with pytest.raises(ValidationError):
            validate_version_vector(over, 2)

    def test_validation_error_is_a_replication_error(self):
        # Client error paths catch ReplicationError; a validator firing
        # must land there, not escape as an unclassified exception.
        assert issubclass(ValidationError, ReplicationError)
        assert issubclass(ValidationError, ValueError)


class TestPropagationRequest:
    def test_honest_request_passes(self):
        recipient, source = make_pair()
        request = PullSession(recipient).request()
        assert validate_propagation_request(request, source) is request

    def test_wrong_type_rejected(self):
        _, source = make_pair()
        with pytest.raises(ValidationError):
            validate_propagation_request({"recipient": 0}, source)

    def test_recipient_outside_replica_set(self):
        recipient, source = make_pair()
        request = PullSession(recipient).request()
        forged = dataclasses.replace(request, recipient=7)
        with pytest.raises(ValidationError):
            validate_propagation_request(forged, source)

    def test_wrong_size_dbvv(self):
        recipient, source = make_pair()
        request = PullSession(recipient).request()
        forged = dataclasses.replace(
            request, dbvv=VersionVector.from_counts((0, 0, 0))
        )
        with pytest.raises(ValidationError):
            validate_propagation_request(forged, source)


class TestPropagationReply:
    def test_honest_reply_passes(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        assert validate_propagation_reply(reply, recipient) is reply

    def test_source_outside_replica_set(self):
        recipient, source = make_pair()
        forged = dataclasses.replace(honest_reply(recipient, source), source=9)
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)

    def test_tail_vector_arity_must_match_replica_set(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        forged = dataclasses.replace(reply, tails=reply.tails[:1])
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)

    def test_tail_naming_unknown_item(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        forged = dataclasses.replace(reply, tails=(((("zz", 1)),), ()))
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)

    def test_tail_seqnos_must_strictly_increase(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        forged = dataclasses.replace(
            reply, tails=((("a", 2), ("a", 2)), ())
        )
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)

    def test_tail_seqno_gap_budget_boundary(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        # recipient.dbvv[0] == 0, so the ceiling is exactly MAX_SEQNO_GAP.
        at_cap = dataclasses.replace(
            reply, tails=((("a", MAX_SEQNO_GAP),), ())
        )
        assert validate_propagation_reply(at_cap, recipient) is at_cap
        past = dataclasses.replace(
            reply, tails=((("a", MAX_SEQNO_GAP + 1),), ())
        )
        with pytest.raises(ValidationError):
            validate_propagation_reply(past, recipient)

    def test_payload_naming_unknown_item(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        rogue = ItemPayload("zz", b"x", VersionVector.from_counts((0, 1)))
        forged = dataclasses.replace(reply, items=reply.items + (rogue,))
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)

    def test_payload_ivv_sized_to_wrong_replica_set(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        rogue = ItemPayload("b", b"x", VersionVector.from_counts((0, 1, 5)))
        forged = dataclasses.replace(reply, items=reply.items + (rogue,))
        with pytest.raises(ValidationError):
            validate_propagation_reply(forged, recipient)


class TestSessionAnswer:
    def test_you_are_current_source_must_match_peer(self):
        recipient, _ = make_pair()
        answer = YouAreCurrent(1)
        assert validate_session_answer(answer, 1, recipient) is answer
        with pytest.raises(ValidationError):
            validate_session_answer(answer, 0, recipient)

    def test_reply_source_must_match_peer(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        assert validate_session_answer(reply, 1, recipient) is reply
        with pytest.raises(ValidationError):
            validate_session_answer(reply, 0, recipient)

    def test_junk_answer_rejected(self):
        recipient, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_session_answer(b"not-a-message", 1, recipient)


class TestOutOfBoundReply:
    def _reply(self, **overrides):
        fields = dict(
            source=1,
            item="a",
            value=b"copy",
            ivv=VersionVector.from_counts((0, 1)),
        )
        fields.update(overrides)
        return OutOfBoundReply(**fields)

    def test_honest_reply_passes(self):
        recipient, _ = make_pair()
        reply = self._reply()
        assert validate_oob_reply(reply, recipient) is reply

    def test_unknown_item_rejected(self):
        recipient, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_oob_reply(self._reply(item="zz"), recipient)

    def test_wrong_size_ivv_rejected(self):
        recipient, _ = make_pair()
        bad = self._reply(ivv=VersionVector.from_counts((0, 1, 2)))
        with pytest.raises(ValidationError):
            validate_oob_reply(bad, recipient)

    def test_source_outside_replica_set(self):
        recipient, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_oob_reply(self._reply(source=5), recipient)


class TestWalRecordValidation:
    def test_honest_records_pass(self):
        recipient, source = make_pair()
        reply = honest_reply(recipient, source)
        node = recipient
        for record in (
            WalUpdate("a", Put(b"v")),
            WalAccept(reply),
            WalResolve("b", b"winner"),
            WalExpand(node.n_nodes),
            WalExpand(node.n_nodes + 1),
        ):
            assert validate_record(record, node) is record

    def test_update_for_unknown_item_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(WalUpdate("zz", Put(b"v")), node)

    def test_update_with_non_operation_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(WalUpdate("a", b"raw-bytes"), node)

    def test_resolve_for_unknown_item_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(WalResolve("zz", b"v"), node)

    def test_shrinking_expand_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(WalExpand(node.n_nodes - 1), node)

    def test_expand_past_replica_cap_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(WalExpand(MAX_REPLICA_SET + 1), node)

    def test_accept_with_forged_reply_rejected(self):
        recipient, source = make_pair()
        forged = dataclasses.replace(honest_reply(recipient, source), source=9)
        with pytest.raises(ValidationError):
            validate_record(WalAccept(forged), recipient)

    def test_unknown_record_type_rejected(self):
        node, _ = make_pair()
        with pytest.raises(ValidationError):
            validate_record(object(), node)
