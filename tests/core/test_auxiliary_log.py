"""Unit tests for the auxiliary log (paper section 4.4)."""

import pytest

from repro.core.auxiliary import AuxiliaryLog
from repro.core.version_vector import VersionVector
from repro.substrate.operations import Append, Put


def vv(*counts):
    return VersionVector.from_counts(list(counts))


class TestAppendAndEarliest:
    def test_earliest_returns_oldest_record_for_item(self):
        log = AuxiliaryLog()
        log.append("x", vv(0, 0), Put(b"1"))
        log.append("x", vv(0, 1), Put(b"2"))
        earliest = log.earliest("x")
        assert earliest is not None
        assert earliest.op == Put(b"1")

    def test_earliest_for_unknown_item_is_none(self):
        assert AuxiliaryLog().earliest("x") is None

    def test_pre_ivv_is_snapshotted(self):
        """The caller increments the live IVV right after appending; the
        record must keep the pre-update value."""
        log = AuxiliaryLog()
        live = vv(1, 0)
        log.append("x", live, Put(b"v"))
        live.increment(1)
        record = log.earliest("x")
        assert record.pre_ivv.as_tuple() == (1, 0)

    def test_records_interleave_items_in_global_order(self):
        log = AuxiliaryLog()
        log.append("x", vv(0, 0), Put(b"1"))
        log.append("y", vv(0, 0), Put(b"2"))
        log.append("x", vv(0, 1), Put(b"3"))
        assert [r.item for r in log] == ["x", "y", "x"]

    def test_len_counts_all_records(self):
        log = AuxiliaryLog()
        for k in range(5):
            log.append("x", vv(0, k), Append(b"."))
        assert len(log) == 5
        assert log.pending_count("x") == 5


class TestPopEarliest:
    def test_pop_consumes_in_fifo_order_per_item(self):
        log = AuxiliaryLog()
        log.append("x", vv(0, 0), Put(b"1"))
        log.append("x", vv(0, 1), Put(b"2"))
        assert log.pop_earliest("x").op == Put(b"1")
        assert log.pop_earliest("x").op == Put(b"2")
        assert not log.has_records("x")

    def test_pop_from_middle_of_global_list(self):
        """An item's earliest record can sit mid-list globally — removal
        must still be O(1) and leave both chains intact."""
        log = AuxiliaryLog()
        log.append("a", vv(0, 0), Put(b"1"))
        log.append("b", vv(0, 0), Put(b"2"))
        log.append("a", vv(0, 1), Put(b"3"))
        log.pop_earliest("b")
        assert [r.item for r in log] == ["a", "a"]
        log.check_invariants()

    def test_pop_missing_item_raises(self):
        with pytest.raises(KeyError):
            AuxiliaryLog().pop_earliest("x")

    def test_pop_updates_global_head_and_tail(self):
        log = AuxiliaryLog()
        log.append("a", vv(0, 0), Put(b"1"))
        log.append("b", vv(0, 0), Put(b"2"))
        log.pop_earliest("a")
        log.pop_earliest("b")
        assert len(log) == 0
        log.check_invariants()


class TestDiscardItem:
    def test_discard_drops_all_records_for_item(self):
        log = AuxiliaryLog()
        log.append("x", vv(0, 0), Put(b"1"))
        log.append("y", vv(0, 0), Put(b"2"))
        log.append("x", vv(0, 1), Put(b"3"))
        assert log.discard_item("x") == 2
        assert [r.item for r in log] == ["y"]
        log.check_invariants()

    def test_discard_missing_item_returns_zero(self):
        assert AuxiliaryLog().discard_item("x") == 0


class TestInvariants:
    def test_seq_numbers_are_monotonic(self):
        log = AuxiliaryLog()
        records = [log.append("x", vv(0, k), Put(b"v")) for k in range(4)]
        seqs = [r.seq for r in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_heavy_interleaving_keeps_chains_consistent(self):
        log = AuxiliaryLog()
        items = ["a", "b", "c"]
        for k in range(60):
            log.append(items[k % 3], vv(0, k), Append(b"."))
        for _ in range(10):
            log.pop_earliest("b")
        log.discard_item("a")
        log.check_invariants()
        assert log.pending_count("a") == 0
        assert log.pending_count("b") == 10
        assert log.pending_count("c") == 20
