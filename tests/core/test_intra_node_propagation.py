"""Unit tests for IntraNodePropagation (paper Figure 4)."""

from repro.core.conflicts import ConflictSite
from repro.core.node import EpidemicNode
from repro.substrate.operations import Append, Put

ITEMS = ["x", "y"]


def make_pair():
    return EpidemicNode(0, 2, ITEMS), EpidemicNode(1, 2, ITEMS)


def setup_oob_with_deferred(node, source, deferred):
    """Source updates x; node copies it out-of-bound and applies
    ``deferred`` local updates to the auxiliary copy."""
    source.update("x", Put(b"base"))
    assert node.copy_out_of_bound("x", source)
    for k in range(deferred):
        node.update("x", Append(f"+{k}".encode()))


class TestReplay:
    def test_replay_applies_deferred_updates_to_regular_copy(self):
        a, b = make_pair()
        setup_oob_with_deferred(a, b, deferred=2)
        _, intra = a.pull_from(b)
        assert intra.replayed == 2
        assert a.store["x"].value == b"base+0+1"

    def test_replayed_updates_count_as_local_updates(self):
        """Each replayed op increments v_ii(x), V_ii, and appends to
        L_ii — exactly like a user update (Fig. 4)."""
        a, b = make_pair()
        setup_oob_with_deferred(a, b, deferred=2)
        a.pull_from(b)
        assert a.store["x"].ivv.as_tuple() == (2, 1)
        assert a.dbvv.as_tuple() == (2, 1)
        assert a.log[0].pairs() == [("x", 2)]

    def test_auxiliary_discarded_after_catchup(self):
        a, b = make_pair()
        setup_oob_with_deferred(a, b, deferred=3)
        _, intra = a.pull_from(b)
        assert intra.auxiliaries_discarded == ["x"]
        assert not a.store["x"].has_auxiliary
        assert len(a.aux_log) == 0

    def test_zero_deferred_updates_still_discards_auxiliary(self):
        a, b = make_pair()
        setup_oob_with_deferred(a, b, deferred=0)
        _, intra = a.pull_from(b)
        assert intra.replayed == 0
        assert intra.auxiliaries_discarded == ["x"]
        assert a.read("x") == b"base"

    def test_replayed_updates_propagate_onwards(self):
        """After replay, the deferred updates are regular history and
        flow to other replicas through normal propagation."""
        a, b = make_pair()
        setup_oob_with_deferred(a, b, deferred=2)
        a.pull_from(b)
        outcome, _ = b.pull_from(a)
        assert outcome.adopted == ["x"]
        assert b.read("x") == b"base+0+1"
        a.check_invariants()
        b.check_invariants()

    def test_user_reads_consistent_throughout_episode(self):
        """The user-visible value never goes backwards during the
        OOB → defer → replay → discard cycle."""
        a, b = make_pair()
        b.update("x", Put(b"base"))
        a.copy_out_of_bound("x", b)
        assert a.read("x") == b"base"
        a.update("x", Append(b"+1"))
        assert a.read("x") == b"base+1"
        a.pull_from(b)
        assert a.read("x") == b"base+1"


class TestDeferredReplay:
    def test_replay_waits_until_regular_copy_catches_up(self):
        """If the regular copy is still behind the auxiliary record's
        pre-IVV, nothing replays yet (DOMINATED branch of Fig. 4)."""
        a, b = make_pair()
        b.update("x", Put(b"v1"))
        b.update("x", Put(b"v2"))
        a.copy_out_of_bound("x", b)          # aux ivv (0,2)
        a.update("x", Append(b"+a"))         # record pre-ivv (0,2)
        # Regular copy never caught up (no propagation) — replay by hand:
        outcome = a.intra_node_propagation(["x"])
        assert outcome.replayed == 0
        assert a.store["x"].has_auxiliary
        assert len(a.aux_log) == 1

    def test_partial_catchup_does_not_replay(self):
        """Regular copy behind by one update: the pre-IVV comparison is
        DOMINATED, replay defers to the next propagation."""
        a, b = make_pair()
        b.update("x", Put(b"v1"))
        a.pull_from(b)                       # regular at (0,1)
        b.update("x", Put(b"v2"))
        a.copy_out_of_bound("x", b)          # aux at (0,2)
        a.update("x", Append(b"+a"))
        outcome = a.intra_node_propagation(["x"])
        assert outcome.replayed == 0
        # Now the scheduled propagation arrives and replay completes.
        _, intra = a.pull_from(b)
        assert intra.replayed == 1
        assert a.read("x") == b"v2+a"
        assert not a.store["x"].has_auxiliary

    def test_multi_episode_interleaving(self):
        """Two OOB refreshes with deferred updates in between still
        produce the auxiliary lineage on the regular copy."""
        a, b = make_pair()
        b.update("x", Put(b"v1:"))
        a.copy_out_of_bound("x", b)
        a.update("x", Append(b"a1;"))
        _, intra1 = a.pull_from(b)
        assert intra1.replayed == 1
        # Second episode.
        b.pull_from(a)
        b.update("x", Append(b"b1;"))
        a.copy_out_of_bound("x", b)
        a.update("x", Append(b"a2;"))
        _, intra2 = a.pull_from(b)
        assert intra2.replayed == 1
        assert a.read("x") == b"v1:a1;b1;a2;"
        a.check_invariants()


class TestConflictDetectionDuringReplay:
    def test_conflicting_pre_ivv_declares_inconsistency(self):
        """Fig. 4: a replayed record whose pre-IVV conflicts with the
        regular IVV proves inconsistent replicas exist."""
        a, b = make_pair()
        b.update("x", Put(b"remote"))
        a.copy_out_of_bound("x", b)          # aux ivv (0,1)
        a.update("x", Append(b"+a"))         # pre-ivv (0,1)
        # Meanwhile a's regular copy gets a *conflicting* history: a
        # local regular update would need no aux... simulate the race by
        # writing at a third party and pulling it — build it with a
        # fresh concurrent lineage at a itself before the pull:
        # The regular copy gains an update concurrent with (0,1):
        entry = a.store["x"]
        entry.value = b"concurrent"
        entry.ivv.increment(0)               # regular ivv now (1,0)
        a.dbvv.record_local_update_by(0)
        a.log.add(0, "x", a.dbvv[0])
        outcome = a.intra_node_propagation(["x"])
        assert outcome.conflicts == ["x"]
        (report,) = a.conflicts.reports
        assert report.site is ConflictSite.INTRA_NODE
        # Nothing was replayed or lost.
        assert len(a.aux_log) == 1
        assert entry.value == b"concurrent"
