"""Constructor validation and representation tests for the node types."""

import pytest

from repro.core.delta import DeltaEpidemicNode
from repro.core.node import EpidemicNode
from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.substrate.operations import Put

ITEMS = ["x", "y"]


class TestConstruction:
    @pytest.mark.parametrize("bad_id", [-1, 2, 99])
    def test_node_id_outside_replica_set_rejected(self, bad_id):
        with pytest.raises(ValueError):
            EpidemicNode(bad_id, 2, ITEMS)

    def test_duplicate_item_names_rejected(self):
        with pytest.raises(ValueError):
            EpidemicNode(0, 2, ["x", "x"])

    def test_empty_schema_is_allowed(self):
        """A database with no items is degenerate but legal — every
        session is trivially you-are-current."""
        a = EpidemicNode(0, 2, [])
        b = EpidemicNode(1, 2, [])
        outcome, _ = a.pull_from(b)
        assert outcome.adopted == []

    def test_single_node_replica_set(self):
        node = EpidemicNode(0, 1, ITEMS)
        node.update("x", Put(b"v"))
        assert node.dbvv.as_tuple() == (1,)
        node.check_invariants()

    def test_delta_negative_history_limit_rejected(self):
        with pytest.raises(ValueError):
            DeltaEpidemicNode(0, 2, ITEMS, history_limit=-1)

    def test_repr_is_informative(self):
        node = EpidemicNode(1, 3, ITEMS)
        node.update("x", Put(b"v"))
        text = repr(node)
        assert "id=1" in text
        assert "items=2" in text


class TestAdapterConstruction:
    def test_adapter_node_classes(self):
        assert DBVVProtocolNode.node_class is EpidemicNode
        assert DeltaProtocolNode.node_class is DeltaEpidemicNode

    def test_adapter_shares_counters_with_inner_node(self):
        from repro.metrics.counters import OverheadCounters

        counters = OverheadCounters()
        adapter = DBVVProtocolNode(0, 2, ITEMS, counters=counters)
        assert adapter.node.counters is counters

    def test_adapter_shares_conflict_reporter(self):
        from repro.core.conflicts import ConflictReporter

        reporter = ConflictReporter()
        adapter = DBVVProtocolNode(0, 2, ITEMS, conflict_reporter=reporter)
        assert adapter.node.conflicts is reporter
