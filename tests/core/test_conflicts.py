"""Unit tests for conflict reporting and origin pinpointing."""

import pytest

from repro.core.conflicts import (
    ConflictPolicy,
    ConflictReporter,
    ConflictSite,
    pinpoint_conflicting_origins,
)
from repro.core.version_vector import VersionVector
from repro.errors import ConflictError


def vv(*counts):
    return VersionVector.from_counts(list(counts))


class TestPinpointing:
    """Paper Fig. 4 footnote: vectors conflicting in components k and l
    pinpoint servers k and l as holding inconsistent replicas."""

    def test_simple_two_way_conflict(self):
        assert pinpoint_conflicting_origins(vv(1, 0), vv(0, 1)) == (0, 1)

    def test_multi_component_conflict(self):
        assert pinpoint_conflicting_origins(vv(2, 0, 5, 1), vv(0, 3, 5, 2)) == (0, 1, 3)

    def test_non_conflicting_vectors_pinpoint_nothing(self):
        assert pinpoint_conflicting_origins(vv(2, 2), vv(1, 1)) == ()
        assert pinpoint_conflicting_origins(vv(1, 1), vv(1, 1)) == ()


class TestReporter:
    def test_declare_records_report(self):
        reporter = ConflictReporter()
        report = reporter.declare(
            "x", 0, ConflictSite.ACCEPT_PROPAGATION, vv(1, 0), vv(0, 1)
        )
        assert reporter.count == 1
        assert report.item == "x"
        assert report.origins == (0, 1)
        assert "inconsistent" in report.describe()

    def test_raise_policy(self):
        reporter = ConflictReporter(policy=ConflictPolicy.RAISE)
        with pytest.raises(ConflictError):
            reporter.declare(
                "x", 0, ConflictSite.OUT_OF_BOUND, vv(1, 0), vv(0, 1)
            )
        # The report is still recorded before raising.
        assert reporter.count == 1

    def test_conflicts_for_filters_by_item(self):
        reporter = ConflictReporter()
        reporter.declare("x", 0, ConflictSite.INTRA_NODE, vv(1, 0), vv(0, 1))
        reporter.declare("y", 1, ConflictSite.INTRA_NODE, vv(1, 0), vv(0, 1))
        assert len(reporter.conflicts_for("x")) == 1
        assert reporter.conflicts_for("z") == []

    def test_clear(self):
        reporter = ConflictReporter()
        reporter.declare("x", 0, ConflictSite.INTRA_NODE, vv(1, 0), vv(0, 1))
        reporter.clear()
        assert reporter.count == 0

    def test_reports_snapshot_vectors_as_tuples(self):
        reporter = ConflictReporter()
        local = vv(1, 0)
        reporter.declare("x", 0, ConflictSite.ACCEPT_PROPAGATION, local, vv(0, 1))
        local.increment(0)
        assert reporter.reports[0].local_vv == (1, 0)

    def test_shared_reporter_aggregates_across_nodes(self):
        """One reporter can serve a whole cluster (how the simulation
        collects a global conflict history)."""
        from repro.core.node import EpidemicNode
        from repro.substrate.operations import Put

        reporter = ConflictReporter()
        a = EpidemicNode(0, 2, ["x"], conflict_reporter=reporter)
        b = EpidemicNode(1, 2, ["x"], conflict_reporter=reporter)
        a.update("x", Put(b"a"))
        b.update("x", Put(b"b"))
        a.pull_from(b)
        b.pull_from(a)
        assert reporter.count == 2
        assert {r.detected_by for r in reporter.reports} == {0, 1}
