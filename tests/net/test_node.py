"""In-process tests for the asyncio replica (repro.net.node).

NetNode is just asyncio servers plus the shared session driver, so a
whole cluster can run inside one event loop — no subprocesses needed
to exercise sessions, reconnects, the client operations, and the
anti-entropy scheduler.  The multi-process path is covered by
``test_cluster.py`` and the parity suite.
"""

import asyncio

import pytest

from repro.errors import NetworkSessionError
from repro.net.config import NodeConfig, PeerAddress
from repro.net.harness import _free_ports
from repro.net.node import NetNode
from repro.substrate.operations import Put

ITEMS = ("a", "b")


async def start_nodes(
    n, items=ITEMS, reconnect_attempts=1, anti_entropy_period=0.0, seed=0
):
    ports = _free_ports(n)
    nodes = []
    for node_id in range(n):
        peers = tuple(
            PeerAddress(k, "127.0.0.1", ports[k])
            for k in range(n)
            if k != node_id
        )
        nodes.append(
            NetNode(
                NodeConfig(
                    node_id=node_id,
                    items=items,
                    peer_port=ports[node_id],
                    peers=peers,
                    reconnect_attempts=reconnect_attempts,
                    anti_entropy_period=anti_entropy_period,
                    seed=seed,
                )
            )
        )
    for node in nodes:
        await node.start()
    return nodes


async def stop_nodes(nodes):
    for node in nodes:
        await node.stop()


class TestSessions:
    def test_pull_adopts_and_second_pull_is_identical(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                nodes[0].node.update("a", Put(b"payload"))
                first = await nodes[1].sync_with(0)
                second = await nodes[1].sync_with(0)
                return nodes[1].node.read("a"), first, second
            finally:
                await stop_nodes(nodes)

        value, first, second = asyncio.run(run())
        assert value == b"payload"
        assert first.adopted == ("a",)
        assert second.identical

    def test_census_counts_sent_frames_per_process(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                nodes[0].node.update("a", Put(b"x"))
                await nodes[1].sync_with(0)
                await nodes[1].sync_with(0)
                return nodes[0].census, nodes[1].census
            finally:
                await stop_nodes(nodes)

        server_census, client_census = asyncio.run(run())
        # The initiator sent two requests; the serving node answered
        # once with data and once with you-are-current.
        assert client_census == {"PropagationRequest": 2}
        assert server_census == {"PropagationReply": 1, "YouAreCurrent": 1}

    def test_three_node_relay_converges(self):
        async def run():
            nodes = await start_nodes(3)
            try:
                nodes[0].node.update("b", Put(b"relay"))
                await nodes[1].sync_with(0)
                await nodes[2].sync_with(1)
                return nodes[2].node.read("b")
            finally:
                await stop_nodes(nodes)

        assert asyncio.run(run()) == b"relay"

    def test_sync_with_illegal_peer_raises(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                with pytest.raises(NetworkSessionError):
                    await nodes[1].sync_with(1)
                with pytest.raises(NetworkSessionError):
                    await nodes[1].sync_with(9)
            finally:
                await stop_nodes(nodes)

        asyncio.run(run())


class TestReconnects:
    def test_torn_connection_is_redialed_and_session_retried(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                await nodes[1].sync_with(0)          # establish the link
                # Tear the transport under the node without telling it.
                nodes[1]._links[0].writer.close()
                await asyncio.sleep(0.05)
                nodes[0].node.update("a", Put(b"after-tear"))
                outcome = await nodes[1].sync_with(0)
                return outcome, nodes[1]
            finally:
                await stop_nodes(nodes)

        outcome, puller = asyncio.run(run())
        assert outcome.adopted == ("a",)
        assert puller.reconnects == 1
        assert puller.sync_retries == 1

    def test_fresh_connection_restarts_delta_caches(self):
        """After a reconnect the codec is new — the first frame must be
        a full vector, and it must decode (no stale-delta error)."""

        async def run():
            nodes = await start_nodes(2)
            try:
                await nodes[1].sync_with(0)
                old_codec = nodes[1]._links[0].codec
                assert old_codec.cache_size() > 0
                nodes[1]._drop_link(0)
                await nodes[1].sync_with(0)
                new_codec = nodes[1]._links[0].codec
                return old_codec is new_codec, new_codec.cache_size()
            finally:
                await stop_nodes(nodes)

        same_codec, cache_after = asyncio.run(run())
        assert not same_codec
        assert cache_after > 0    # the new connection built its own caches

    def test_unreachable_peer_raises_after_attempts(self):
        async def run():
            nodes = await start_nodes(2, reconnect_attempts=0)
            try:
                await nodes[0].stop()
                with pytest.raises(NetworkSessionError):
                    await nodes[1].sync_with(0)
            finally:
                await stop_nodes(nodes[1:])

        asyncio.run(run())


class TestClientOps:
    def test_put_get_status_ping(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                assert (await nodes[0]._handle_client_op({"op": "ping"})) == {
                    "ok": True,
                    "node": 0,
                }
                await nodes[0]._handle_client_op(
                    {"op": "put", "item": "a", "value": b"hey".hex()}
                )
                got = await nodes[0]._handle_client_op(
                    {"op": "get", "item": "a"}
                )
                assert bytes.fromhex(got["value"]) == b"hey"
                synced = await nodes[1]._handle_client_op(
                    {"op": "sync", "peer": 0}
                )
                assert synced["adopted"] == ["a"]
                status = await nodes[1]._handle_client_op({"op": "status"})
                assert status["store"]["a"] == b"hey".hex()
                assert status["dbvv"] == [1, 0]
                assert status["conflicts"] == 0
                assert status["census"] == {"PropagationRequest": 1}
            finally:
                await stop_nodes(nodes)

        asyncio.run(run())

    def test_unknown_op_reports_error(self):
        async def run():
            nodes = await start_nodes(2)
            try:
                return await nodes[0]._handle_client_op({"op": "frobnicate"})
            finally:
                await stop_nodes(nodes)

        response = asyncio.run(run())
        assert response["ok"] is False
        assert "frobnicate" in response["error"]


class TestScheduler:
    def test_background_anti_entropy_converges_two_nodes(self):
        async def run():
            nodes = await start_nodes(2, anti_entropy_period=0.02)
            try:
                nodes[0].node.update("a", Put(b"gossip"))
                for _ in range(200):
                    if nodes[1].node.read("a") == b"gossip":
                        return True
                    await asyncio.sleep(0.02)
                return False
            finally:
                await stop_nodes(nodes)

        assert asyncio.run(run())
