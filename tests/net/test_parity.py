"""Differential parity: the networked cluster vs the simulator.

Each case records a seeded workload through ``ClusterSimulation(
wire=True, sanitize=True)``, replays it through a real 4-process
localhost cluster, and requires identical converged stores, per-item
version vectors, DBVVs, conflict counts, and (with zero reconnects)
an identical frame-type traffic census.

The quick cases keep tier-1 runtime sane; the 25-seed soak is the
acceptance sweep, gated behind ``REPRO_NET_SOAK=1`` (the CI
``net-parity`` job runs the 5-seed harness CLI instead).
"""

import os

import pytest

from repro.net.harness import run_parity

QUICK_SEEDS = [101, 202]


@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_parity_quick(seed, tmp_path):
    report = run_parity(seed, rounds=4, log_dir=tmp_path)
    assert report.ok, report.summary()
    assert report.sessions > 0
    assert report.net_census.get("PropagationRequest", 0) == report.sessions


def test_parity_census_shape(tmp_path):
    """Every session is exactly one request plus one answer."""
    report = run_parity(303, rounds=3, log_dir=tmp_path)
    assert report.ok, report.summary()
    census = report.net_census
    answers = census.get("PropagationReply", 0) + census.get(
        "YouAreCurrent", 0
    )
    assert census.get("PropagationRequest", 0) == answers == report.sessions


def test_parity_soak_25_seeds(tmp_path):
    if not os.environ.get("REPRO_NET_SOAK"):
        pytest.skip("set REPRO_NET_SOAK=1 to run the 25-seed parity soak")
    failures = []
    for seed in range(1, 26):
        report = run_parity(seed, rounds=5, log_dir=tmp_path / str(seed))
        if not report.ok:
            failures.append(report.summary())
    assert not failures, "\n".join(failures)
