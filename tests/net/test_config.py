"""Unit tests for the networked deployment configuration."""

import pytest

from repro.errors import SimulationError
from repro.net.config import NodeConfig, PeerAddress, parse_peer, parse_peers


class TestParsePeer:
    def test_parses_id_host_port(self):
        assert parse_peer("2@127.0.0.1:9000") == PeerAddress(2, "127.0.0.1", 9000)

    def test_ipv6_style_host_keeps_colons(self):
        # rsplit on the last colon: everything before it is the host.
        assert parse_peer("1@::1:9000") == PeerAddress(1, "::1", 9000)

    @pytest.mark.parametrize(
        "spec",
        [
            "nonsense",
            "1@host",          # no port
            "@host:1",         # no id
            "x@host:1",        # non-numeric id
            "1@host:x",        # non-numeric port
            "-1@host:9000",    # negative id
            "1@:9000",         # empty host
            "1@host:0",        # port out of range
            "1@host:70000",
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(SimulationError):
            parse_peer(spec)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError):
            parse_peers(["1@h:1", "1@h:2"])


class TestNodeConfig:
    def _peers(self, *ids):
        return tuple(PeerAddress(k, "127.0.0.1", 9000 + k) for k in ids)

    def test_contiguous_id_range_required(self):
        config = NodeConfig(node_id=1, items=("a",), peers=self._peers(0, 2))
        assert config.n_nodes == 3
        assert config.peer_ids() == (0, 2)

    def test_gap_in_ids_rejected(self):
        with pytest.raises(SimulationError):
            NodeConfig(node_id=0, items=("a",), peers=self._peers(2))

    def test_own_id_in_peer_list_rejected(self):
        with pytest.raises(SimulationError):
            NodeConfig(node_id=0, items=("a",), peers=self._peers(0, 1))

    def test_negative_period_rejected(self):
        with pytest.raises(SimulationError):
            NodeConfig(
                node_id=0,
                items=("a",),
                peers=self._peers(1),
                anti_entropy_period=-1.0,
            )

    def test_address_lookup(self):
        config = NodeConfig(node_id=0, items=("a",), peers=self._peers(1, 2))
        assert config.address_of(2).port == 9002
        with pytest.raises(SimulationError):
            config.address_of(0)
