"""Unit tests for the async TCP framing layer.

Each test runs a real loopback socket pair inside ``asyncio.run`` —
the framing functions take StreamReader/StreamWriter, and a genuine
transport is the only honest way to exercise EOF and mid-frame tears.
"""

import asyncio

import pytest

from repro.core.messages import PropagationRequest
from repro.core.version_vector import VersionVector
from repro.errors import WireFormatError
from repro.net import framing
from repro.net.framing import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    read_blob,
    read_frame,
    receive_preamble,
    send_preamble,
    write_blob,
    write_frame,
)
from repro.wire import WireCodec


class _Pipe:
    """A connected loopback socket pair with stream wrappers."""

    async def __aenter__(self):
        self._ready: asyncio.Queue = asyncio.Queue()

        async def on_connect(reader, writer):
            await self._ready.put((reader, writer))

        self._server = await asyncio.start_server(
            on_connect, "127.0.0.1", 0
        )
        port = self._server.sockets[0].getsockname()[1]
        self.client_reader, self.client_writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        self.server_reader, self.server_writer = await self._ready.get()
        return self

    async def __aexit__(self, *exc_info):
        self.client_writer.close()
        self.server_writer.close()
        self._server.close()
        await self._server.wait_closed()


class TestBlobs:
    @pytest.mark.parametrize(
        "payload", [b"", b"x", b"hello", b"\x00" * 200, b"\xff" * 5000]
    )
    def test_round_trip(self, payload):
        async def run():
            async with _Pipe() as pipe:
                await write_blob(pipe.client_writer, payload)
                return await read_blob(pipe.server_reader)

        assert asyncio.run(run()) == payload

    def test_many_blobs_keep_boundaries(self):
        payloads = [b"a", b"bb" * 100, b"", b"ccc"]

        async def run():
            async with _Pipe() as pipe:
                for payload in payloads:
                    await write_blob(pipe.client_writer, payload)
                return [
                    await read_blob(pipe.server_reader) for _ in payloads
                ]

        assert asyncio.run(run()) == payloads

    def test_eof_between_blobs_is_connection_closed(self):
        async def run():
            async with _Pipe() as pipe:
                pipe.client_writer.close()
                await read_blob(pipe.server_reader)

        with pytest.raises(ConnectionClosed):
            asyncio.run(run())

    def test_tear_mid_blob_is_connection_closed(self):
        async def run():
            async with _Pipe() as pipe:
                # Length prefix promises 10 bytes; only 3 arrive.
                pipe.client_writer.write(bytes([10]) + b"abc")
                await pipe.client_writer.drain()
                pipe.client_writer.close()
                await read_blob(pipe.server_reader)

        with pytest.raises(ConnectionClosed):
            asyncio.run(run())

    def test_oversize_length_rejected_without_allocating(self):
        async def run():
            async with _Pipe() as pipe:
                buf = bytearray()
                value = MAX_FRAME_BYTES + 1
                while True:
                    byte = value & 0x7F
                    value >>= 7
                    if value:
                        buf.append(byte | 0x80)
                    else:
                        buf.append(byte)
                        break
                pipe.client_writer.write(bytes(buf))
                await pipe.client_writer.drain()
                await read_blob(pipe.server_reader)

        with pytest.raises(WireFormatError):
            asyncio.run(run())

    def test_unterminated_varint_rejected(self):
        async def run():
            async with _Pipe() as pipe:
                pipe.client_writer.write(b"\x80" * 10)
                await pipe.client_writer.drain()
                await read_blob(pipe.server_reader)

        with pytest.raises(WireFormatError):
            asyncio.run(run())


class TestFrames:
    def test_codec_frame_round_trips_the_socket(self):
        """A frame off the socket is byte-identical to what the codec
        produced — prefix included — so decode() works unchanged."""
        codec_out = WireCodec()
        codec_in = WireCodec()
        message = PropagationRequest(1, VersionVector.from_counts((3, 0, 7)))
        frame = codec_out.encode(0, 1, message)

        async def run():
            async with _Pipe() as pipe:
                await write_frame(pipe.client_writer, frame)
                return await read_frame(pipe.server_reader)

        received = asyncio.run(run())
        assert received == frame
        assert codec_in.decode(0, 1, received) == message

    def test_delta_frames_survive_the_stream(self):
        """Consecutive frames on one connection decode through the
        connection-scoped delta caches in order."""
        sender = WireCodec()
        receiver = WireCodec()
        first = PropagationRequest(
            1, VersionVector.from_counts((1, 0, 0, 0, 0, 0, 0, 0))
        )
        second = PropagationRequest(
            1, VersionVector.from_counts((2, 0, 0, 0, 0, 0, 0, 0))
        )

        async def run():
            async with _Pipe() as pipe:
                for message in (first, second):
                    await write_frame(
                        pipe.client_writer, sender.encode(0, 1, message)
                    )
                return [
                    await read_frame(pipe.server_reader) for _ in range(2)
                ]

        frames = asyncio.run(run())
        assert receiver.decode(0, 1, frames[0]) == first
        assert receiver.decode(0, 1, frames[1]) == second
        # The second frame actually used the delta path: it is smaller
        # than a full two-component vector frame could be.
        assert len(frames[1]) < len(frames[0])


class TestPreamble:
    def test_round_trip_returns_node_id(self):
        async def run():
            async with _Pipe() as pipe:
                await send_preamble(pipe.client_writer, 3)
                return await receive_preamble(pipe.server_reader)

        assert asyncio.run(run()) == 3

    def test_bad_magic_rejected(self):
        async def run():
            async with _Pipe() as pipe:
                pipe.client_writer.write(b"\x00\x01\x02")
                await pipe.client_writer.drain()
                await receive_preamble(pipe.server_reader)

        with pytest.raises(WireFormatError):
            asyncio.run(run())

    def test_version_mismatch_rejected(self, monkeypatch):
        async def run():
            async with _Pipe() as pipe:
                monkeypatch.setattr(framing, "PROTOCOL_VERSION", 99)
                await send_preamble(pipe.client_writer, 0)
                monkeypatch.undo()
                await receive_preamble(pipe.server_reader)

        with pytest.raises(WireFormatError):
            asyncio.run(run())
