"""Durable restart: a killed ``repro.net`` process recovers from disk.

The acceptance scenario for the durable substrate's networked side: a
node that acknowledged updates, was killed with SIGKILL (no checkpoint,
no clean close), and was restarted from the same ``--data-dir`` must
come back with exactly its pre-kill protocol state and re-converge with
the cluster through ordinary anti-entropy.
"""

import pytest

from repro.net.harness import LocalCluster

ITEMS = ("a", "b")


@pytest.fixture()
def durable_cluster(tmp_path):
    cluster = LocalCluster(
        3,
        ITEMS,
        tmp_path / "logs",
        seed=11,
        data_dir=tmp_path / "data",
    )
    with cluster as running:
        yield running


class TestKillRestart:
    def test_killed_node_recovers_its_acknowledged_state(self, durable_cluster):
        cluster = durable_cluster
        cluster.client(0).put("a", b"first")
        cluster.client(1).sync(0)
        cluster.client(1).put("b", b"second")
        before = cluster.client(1).status()
        assert before["durable"]["wal_records"] >= 2

        cluster.kill(1)
        # The rest of the cluster keeps serving while node 1 is down.
        cluster.client(0).put("a", b"third")

        cluster.restart(1)
        after = cluster.client(1).status()
        # Exact pre-kill protocol state: store, IVVs, DBVV.
        assert after["store"] == before["store"]
        assert after["ivvs"] == before["ivvs"]
        assert after["dbvv"] == before["dbvv"]
        # It really came off the disk, not out of thin air.
        assert after["durable"]["records_replayed"] >= 2

        # ...and re-converges through ordinary anti-entropy.
        cluster.client(1).sync(0)
        assert cluster.client(1).get("a") == b"third"
        assert cluster.client(1).get("b") == b"second"
        cluster.client(2).sync(1)
        assert cluster.client(2).get("b") == b"second"

    def test_journal_directories_exist_per_node(self, durable_cluster):
        cluster = durable_cluster
        cluster.client(0).put("a", b"present")
        assert (cluster.data_dir / "node-0" / "wal.log").exists()

    def test_clean_shutdown_folds_the_wal_into_a_checkpoint(
        self, durable_cluster
    ):
        cluster = durable_cluster
        cluster.client(2).put("b", b"checkpointed")
        client = cluster.client(2)
        client.shutdown()
        client.close()
        cluster.clients[2] = None
        cluster.processes[2].wait(timeout=10)

        cluster.restart(2)
        status = cluster.client(2).status()
        # The checkpoint absorbed the log: nothing left to replay.
        assert status["durable"]["records_replayed"] == 0
        assert status["store"]["b"] == b"checkpointed".hex()
