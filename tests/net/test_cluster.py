"""Multi-process tests: LocalCluster spawns real ``python -m repro.net``
processes and drives them through the blocking client API."""

import pytest

from repro.errors import NetworkSessionError
from repro.net.harness import LocalCluster

ITEMS = ("a", "b")


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    log_dir = tmp_path_factory.mktemp("cluster-logs")
    with LocalCluster(3, ITEMS, log_dir, seed=7) as running:
        yield running


class TestLocalCluster:
    def test_every_node_answers_ping_with_its_id(self, cluster):
        assert [cluster.client(k).ping() for k in range(3)] == [0, 1, 2]

    def test_put_propagates_through_explicit_syncs(self, cluster):
        cluster.client(0).put("a", b"spread me")
        cluster.client(1).sync(0)
        cluster.client(2).sync(1)
        assert cluster.client(2).get("a") == b"spread me"

    def test_status_reports_converged_state(self, cluster):
        cluster.client(0).put("b", b"status check")
        cluster.client(1).sync(0)
        status = cluster.client(1).status()
        assert status["store"]["b"] == b"status check".hex()
        assert status["conflicts"] == 0
        assert len(status["dbvv"]) == 3
        assert status["census"]["PropagationRequest"] >= 1

    def test_sync_against_identical_peer_reports_identical(self, cluster):
        cluster.client(1).sync(0)
        assert cluster.client(1).sync(0)["identical"] is True

    def test_unknown_item_is_a_clean_error(self, cluster):
        with pytest.raises(NetworkSessionError):
            cluster.client(0).get("no-such-item")

    def test_per_process_logs_exist(self, cluster):
        for node_id in range(3):
            log = cluster.log_dir / f"node-{node_id}.log"
            assert log.exists()
            assert "READY" in log.read_text()
