"""Unit tests for the tracked task-spawning primitives (R11/R12).

Same in-process pattern as test_node.py: each scenario is one
``asyncio.run`` — no event-loop fixture plugins needed.
"""

import asyncio
import logging

import pytest

from repro.net.tasks import TaskTracker, cancel_and_wait, spawn


def run(coro):
    return asyncio.run(coro)


class TestTaskTracker:
    def test_spawn_retains_and_reaps(self):
        async def scenario():
            tracker = TaskTracker(name="t")
            done = []

            async def work():
                done.append(1)

            task = tracker.spawn(work(), name="work")
            assert len(tracker) == 1
            await task
            await asyncio.sleep(0)  # let the done-callback run
            return len(tracker), done

        remaining, done = run(scenario())
        assert done == [1]
        assert remaining == 0

    def test_task_names_carry_the_tracker_name(self):
        async def scenario():
            tracker = TaskTracker(name="node3")

            async def work():
                return None

            task = tracker.spawn(work(), name="anti-entropy")
            name = task.get_name()
            await task
            return name

        assert run(scenario()) == "node3:anti-entropy"

    def test_failed_task_exception_is_logged(self, caplog):
        async def scenario():
            tracker = TaskTracker(name="t")

            async def boom():
                raise RuntimeError("kaput")

            task = tracker.spawn(boom(), name="boom")
            with pytest.raises(RuntimeError):
                await task
            await asyncio.sleep(0)
            return len(tracker)

        with caplog.at_level(logging.ERROR, logger="repro.net"):
            remaining = run(scenario())
        assert remaining == 0
        assert any("kaput" in record.getMessage() for record in caplog.records)
        assert any("boom" in record.getMessage() for record in caplog.records)

    def test_cancelled_task_is_reaped_silently(self, caplog):
        async def scenario():
            tracker = TaskTracker(name="t")
            task = tracker.spawn(asyncio.sleep(3600), name="sleeper")
            await asyncio.sleep(0)
            await cancel_and_wait(task)
            await asyncio.sleep(0)
            return len(tracker)

        with caplog.at_level(logging.ERROR, logger="repro.net"):
            remaining = run(scenario())
        assert remaining == 0
        assert caplog.records == []

    def test_aclose_cancels_stragglers(self):
        async def scenario():
            tracker = TaskTracker(name="t")
            started = asyncio.Event()

            async def forever():
                started.set()
                await asyncio.sleep(3600)

            tracker.spawn(forever(), name="forever")
            await started.wait()
            await tracker.aclose()
            return len(tracker)

        assert run(scenario()) == 0

    def test_aclose_spares_the_calling_task(self):
        # The shutdown op spawns stop() through the tracker; stop()
        # calls aclose() — it must not cancel itself mid-teardown.
        async def scenario():
            tracker = TaskTracker(name="t")
            result = []

            async def closer():
                await tracker.aclose()
                result.append("survived")

            task = tracker.spawn(closer(), name="closer")
            await task
            return result

        assert run(scenario()) == ["survived"]

    def test_module_level_spawn(self):
        async def scenario():
            async def work():
                return 5

            return await spawn(work(), name="w")

        assert run(scenario()) == 5


class TestCancelAndWait:
    def test_cancels_and_waits(self):
        async def scenario():
            task = asyncio.create_task(asyncio.sleep(3600))
            await asyncio.sleep(0)
            await cancel_and_wait(task)
            return task.cancelled()

        assert run(scenario()) is True

    def test_completed_task_is_a_no_op(self):
        async def scenario():
            async def quick():
                return 7

            task = asyncio.create_task(quick())
            await task
            await cancel_and_wait(task)
            return task.result()

        assert run(scenario()) == 7

    def test_cancelling_the_waiter_cancels_the_target_too(self):
        # asyncio routes a waiter's cancel into the future it awaits:
        # cancelling cancel_and_wait() lands a (second) cancel on the
        # target, which then genuinely ends cancelled — the swallow is
        # then correct and the waiter unwinds cleanly.
        async def scenario():
            async def stubborn():
                try:
                    await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    pass  # shrugs off the first cancel
                await asyncio.sleep(3600)

            inner = asyncio.create_task(stubborn())
            await asyncio.sleep(0)
            waiter = asyncio.create_task(cancel_and_wait(inner))
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            assert not inner.cancelled()  # first cancel was shrugged off
            waiter.cancel()
            await waiter
            return inner.cancelled()

        assert run(scenario()) is True

    def test_foreign_cancellation_re_raises(self):
        # A CancelledError that arrives while the target is NOT
        # cancelled is not ours to swallow; drive the coroutine by hand
        # to inject one deterministically.
        async def scenario():
            async def stubborn():
                try:
                    await asyncio.sleep(3600)
                except asyncio.CancelledError:
                    pass
                await asyncio.sleep(3600)

            inner = asyncio.create_task(stubborn())
            await asyncio.sleep(0)
            coro = cancel_and_wait(inner)
            coro.send(None)  # run to the `await task` suspension
            await asyncio.sleep(0)  # inner swallows the first cancel
            with pytest.raises(asyncio.CancelledError):
                coro.throw(asyncio.CancelledError())
            inner.cancel()  # the second cancel lands for real
            # Reap via wait(): hand-driving the coroutine above left
            # the task's internal await-bookkeeping mid-flight, so a
            # direct `await inner` is off the table.
            await asyncio.wait({inner})
            return inner.cancelled()

        assert run(scenario()) is True
