"""Unit tests for workload generators."""

import pytest

from repro.substrate.operations import Put
from repro.workload.generators import (
    ConflictingWorkload,
    HotColdWorkload,
    OutOfBoundStream,
    SingleWriterWorkload,
    UniformWorkload,
    ZipfWorkload,
)

ITEMS = [f"item-{k:03d}" for k in range(50)]


class TestDeterminism:
    @pytest.mark.parametrize("cls", [UniformWorkload, HotColdWorkload, ZipfWorkload, SingleWriterWorkload])
    def test_same_seed_same_stream(self, cls):
        a = cls(ITEMS, 4, seed=9).generate(50)
        b = cls(ITEMS, 4, seed=9).generate(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = UniformWorkload(ITEMS, 4, seed=1).generate(50)
        b = UniformWorkload(ITEMS, 4, seed=2).generate(50)
        assert a != b


class TestPayloads:
    def test_payloads_are_unique_per_item_update(self):
        workload = UniformWorkload(ITEMS, 2, seed=0)
        events = workload.generate(200)
        values = [e.op.value for e in events]
        assert len(set(values)) == len(values)

    def test_payloads_honor_value_size(self):
        workload = UniformWorkload(ITEMS, 2, seed=0, value_size=128)
        event = workload.generate(1)[0]
        assert isinstance(event.op, Put)
        assert len(event.op.value) == 128

    def test_touched_items_tracks_actual_m(self):
        workload = UniformWorkload(ITEMS, 2, seed=0)
        events = workload.generate(30)
        assert workload.touched_items() == {e.item for e in events}


class TestValidation:
    def test_empty_item_set_rejected(self):
        with pytest.raises(ValueError):
            UniformWorkload([], 2)

    def test_bad_node_count_rejected(self):
        with pytest.raises(ValueError):
            UniformWorkload(ITEMS, 0)

    def test_bad_hot_fraction_rejected(self):
        with pytest.raises(ValueError):
            HotColdWorkload(ITEMS, 2, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdWorkload(ITEMS, 2, hot_weight=1.5)

    def test_bad_zipf_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfWorkload(ITEMS, 2, s=0.0)


class TestSkew:
    def test_hot_cold_concentrates_updates(self):
        workload = HotColdWorkload(
            ITEMS, 2, seed=3, hot_fraction=0.1, hot_weight=0.9
        )
        events = workload.generate(1000)
        hot = set(workload.hot_items)
        hot_hits = sum(1 for e in events if e.item in hot)
        assert hot_hits > 800

    def test_zipf_head_dominates(self):
        workload = ZipfWorkload(ITEMS, 2, seed=3, s=1.5)
        events = workload.generate(2000)
        head_hits = sum(1 for e in events if e.item == ITEMS[0])
        tail_hits = sum(1 for e in events if e.item == ITEMS[-1])
        assert head_hits > 10 * max(tail_hits, 1)

    def test_uniform_touches_most_items(self):
        workload = UniformWorkload(ITEMS, 2, seed=3)
        workload.generate(1000)
        assert len(workload.touched_items()) > 40


class TestSingleWriter:
    def test_each_item_has_one_writer(self):
        workload = SingleWriterWorkload(ITEMS, 3, seed=0)
        events = workload.generate(500)
        writer_of: dict[str, int] = {}
        for event in events:
            assert writer_of.setdefault(event.item, event.node) == event.node
            assert event.node == workload.owner_of(event.item)


class TestConflicting:
    def test_pairs_target_same_item_different_nodes(self):
        workload = ConflictingWorkload(ITEMS, 4, seed=0)
        for event_a, event_b in workload.conflicting_pairs(20):
            assert event_a.item == event_b.item
            assert event_a.node != event_b.node

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ConflictingWorkload(ITEMS, 1)

    def test_plain_events_unsupported(self):
        workload = ConflictingWorkload(ITEMS, 2, seed=0)
        with pytest.raises(NotImplementedError):
            workload.generate(1)


class TestOutOfBoundStream:
    def test_requests_are_well_formed(self):
        stream = OutOfBoundStream(ITEMS, 4, seed=0, hot_items=ITEMS[:3])
        for node, item, source in stream.requests(50):
            assert 0 <= node < 4
            assert 0 <= source < 4
            assert node != source
            assert item in ITEMS[:3]

    def test_defaults_to_all_items(self):
        stream = OutOfBoundStream(ITEMS, 2, seed=0)
        items = {item for _n, item, _s in stream.requests(200)}
        assert len(items) > 20


class TestBurstWorkload:
    def test_bursts_hammer_one_item(self):
        from repro.workload.generators import BurstWorkload

        workload = BurstWorkload(
            ITEMS, 2, seed=1, burst_every=10, burst_length=8
        )
        events = workload.generate(100)
        # Find a run of >= 8 identical (node, item) pairs.
        best_run, run = 1, 1
        for prev, curr in zip(events, events[1:]):
            run = run + 1 if (prev.node, prev.item) == (curr.node, curr.item) else 1
            best_run = max(best_run, run)
        assert best_run >= 8

    def test_deterministic(self):
        from repro.workload.generators import BurstWorkload

        a = BurstWorkload(ITEMS, 2, seed=4).generate(60)
        b = BurstWorkload(ITEMS, 2, seed=4).generate(60)
        assert a == b

    def test_bad_parameters_rejected(self):
        from repro.workload.generators import BurstWorkload

        with pytest.raises(ValueError):
            BurstWorkload(ITEMS, 2, burst_every=0)
        with pytest.raises(ValueError):
            BurstWorkload(ITEMS, 2, burst_length=0)


class TestReadWriteMix:
    def test_fraction_respected(self):
        from repro.workload.generators import ReadEvent, ReadWriteMix

        mix = ReadWriteMix(ITEMS, 3, seed=2, read_fraction=0.8)
        events = mix.generate(1000)
        reads = sum(1 for e in events if isinstance(e, ReadEvent))
        assert 700 < reads < 900

    def test_writes_are_single_writer(self):
        from repro.workload.generators import ReadWriteMix, UpdateEvent

        mix = ReadWriteMix(ITEMS, 3, seed=2, read_fraction=0.5)
        writer_of = {}
        for event in mix.generate(400):
            if isinstance(event, UpdateEvent):
                assert writer_of.setdefault(event.item, event.node) == event.node

    def test_bad_fraction_rejected(self):
        from repro.workload.generators import ReadWriteMix

        with pytest.raises(ValueError):
            ReadWriteMix(ITEMS, 2, read_fraction=1.5)

    def test_pure_read_stream(self):
        from repro.workload.generators import ReadEvent, ReadWriteMix

        mix = ReadWriteMix(ITEMS, 2, seed=3, read_fraction=1.0)
        assert all(isinstance(e, ReadEvent) for e in mix.generate(50))
