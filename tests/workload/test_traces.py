"""Unit tests for trace record/save/load/replay."""

import pytest

from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Append, Put
from repro.workload.generators import UniformWorkload, UpdateEvent
from repro.workload.traces import Trace

ITEMS = make_items(10)


class TestRecording:
    def test_from_events(self):
        events = UniformWorkload(ITEMS, 2, seed=0).generate(5)
        trace = Trace.from_events(events)
        assert len(trace) == 5
        assert list(trace) == events

    def test_non_put_rejected(self):
        trace = Trace()
        with pytest.raises(TypeError):
            trace.record(UpdateEvent(0, ITEMS[0], Append(b"x")))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        events = UniformWorkload(ITEMS, 3, seed=4).generate(20)
        trace = Trace.from_events(events)
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert list(loaded) == events

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.txt"
        Trace().save(path)
        assert len(Trace.load(path)) == 0

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 only-two-fields\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_binary_values_survive_roundtrip(self, tmp_path):
        trace = Trace()
        trace.record(UpdateEvent(0, ITEMS[0], Put(bytes(range(256)))))
        path = tmp_path / "bin.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.events[0].op.value == bytes(range(256))


class TestReplay:
    def make_sim(self):
        return ClusterSimulation(make_factory("dbvv", 3, ITEMS), 3, ITEMS, seed=0)

    def test_upfront_replay_applies_all_events(self):
        trace = Trace.from_events(
            [UpdateEvent(0, ITEMS[0], Put(b"a")), UpdateEvent(1, ITEMS[1], Put(b"b"))]
        )
        sim = self.make_sim()
        rounds = trace.replay(sim, updates_per_round=0)
        assert rounds == []
        assert sim.nodes[0].read(ITEMS[0]) == b"a"
        assert sim.nodes[1].read(ITEMS[1]) == b"b"

    def test_paced_replay_interleaves_rounds(self):
        events = [
            UpdateEvent(0, ITEMS[k % len(ITEMS)], Put(f"v{k}".encode()))
            for k in range(10)
        ]
        sim = self.make_sim()
        rounds = Trace.from_events(events).replay(sim, updates_per_round=3)
        assert len(rounds) == 4  # ceil(10 / 3)
        assert sim.round_no == 4

    def test_negative_pacing_rejected(self):
        with pytest.raises(ValueError):
            Trace().replay(self.make_sim(), updates_per_round=-1)

    def test_identical_trace_means_identical_ground_truth(self):
        events = UniformWorkload(ITEMS, 3, seed=7).generate(30)
        trace = Trace.from_events(events)
        sim_a, sim_b = self.make_sim(), self.make_sim()
        trace.replay(sim_a)
        trace.replay(sim_b)
        assert all(
            sim_a.ground_truth.value(i) == sim_b.ground_truth.value(i)
            for i in ITEMS
        )
