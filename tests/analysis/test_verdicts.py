"""Automated paper-claim verdicts on real experiment output.

These are the strongest shape tests in the suite: the measured series
from E1/E2/E7 are run through the curve classifier and must come out
as the paper's claimed growth laws, protocol by protocol.
"""

import pytest

from repro.analysis.verdicts import (
    verdict_e1,
    verdict_e2_m,
    verdict_e2_n,
    verdict_e7,
)
from repro.experiments.e1_identical_detection import run as run_e1
from repro.experiments.e2_propagation_cost import run_sweep_m, run_sweep_n
from repro.experiments.e7_convergence import run_convergence


@pytest.fixture(scope="module")
def e1_rows():
    return run_e1(sizes=(100, 400, 1_600, 6_400), updates=10)


@pytest.fixture(scope="module")
def e2_n_rows():
    return run_sweep_n(sizes=(200, 800, 3_200, 12_800))


@pytest.fixture(scope="module")
def e2_m_rows():
    return run_sweep_m(m_values=(1, 8, 64, 512), n_items=2_000)


@pytest.fixture(scope="module")
def e7_rows():
    return run_convergence(node_counts=(4, 8, 16, 32, 64), seeds=(1, 2, 3))


class TestE1Verdicts:
    def test_dbvv_is_constant(self, e1_rows):
        verdict = verdict_e1(e1_rows, "dbvv")
        assert verdict.matches, verdict.describe()
        assert verdict.fit.growth_exponent == pytest.approx(0.0, abs=0.01)

    @pytest.mark.parametrize("protocol", ["per-item-vv", "lotus"])
    def test_baselines_are_linear(self, e1_rows, protocol):
        verdict = verdict_e1(e1_rows, protocol)
        assert verdict.matches, verdict.describe()
        assert verdict.fit.growth_exponent > 0.85

    def test_wuu_bernstein_is_flat_in_n(self, e1_rows):
        verdict = verdict_e1(e1_rows, "wuu-bernstein")
        assert verdict.matches, verdict.describe()


class TestE2Verdicts:
    def test_dbvv_flat_in_n(self, e2_n_rows):
        verdict = verdict_e2_n(e2_n_rows, "dbvv")
        assert verdict.matches, verdict.describe()

    @pytest.mark.parametrize("protocol", ["per-item-vv", "lotus"])
    def test_baselines_linear_in_n(self, e2_n_rows, protocol):
        verdict = verdict_e2_n(e2_n_rows, protocol)
        assert verdict.matches, verdict.describe()

    def test_dbvv_linear_in_m(self, e2_m_rows):
        verdict = verdict_e2_m(e2_m_rows, "dbvv")
        assert verdict.matches, verdict.describe()
        assert verdict.fit.growth_exponent == pytest.approx(1.0, abs=0.1)


class TestE7Verdicts:
    def test_random_pull_is_logarithmic(self, e7_rows):
        verdict = verdict_e7(e7_rows, "random")
        assert verdict.matches, verdict.describe()

    def test_ring_is_linear(self, e7_rows):
        verdict = verdict_e7(e7_rows, "ring")
        assert verdict.matches, verdict.describe()

    def test_describe_is_informative(self, e7_rows):
        text = verdict_e7(e7_rows, "random").describe()
        assert "logarithmic" in text
        assert "MATCHES" in text


class TestVerdictNegativePath:
    def test_mismatch_is_reported_honestly(self):
        """A synthetic series that contradicts the claim must produce
        matches=False and a DIVERGES description — the verdict layer
        must be able to fail, or it proves nothing."""
        from repro.analysis.verdicts import ClaimVerdict
        from repro.analysis.fitting import classify_scaling

        xs = [100, 400, 1_600, 6_400]
        linear_ys = [5 * x for x in xs]
        fit = classify_scaling(xs, linear_ys)
        verdict = ClaimVerdict(
            claim="synthetic", protocol="dbvv",
            expected_model="constant", fit=fit,
        )
        assert not verdict.matches
        assert "DIVERGES" in verdict.describe()

    def test_verdict_on_tampered_rows(self, e1_rows):
        """Corrupting the measured data flips the verdict — the checks
        are sensitive, not vacuous."""
        from dataclasses import replace

        from repro.analysis.verdicts import verdict_e1

        tampered = [
            replace(row, work=row.work * row.n_items)  # make dbvv 'linear'
            if row.protocol == "dbvv" else row
            for row in e1_rows
        ]
        verdict = verdict_e1(tampered, "dbvv")
        assert not verdict.matches
