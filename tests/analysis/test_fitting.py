"""Tests for the scaling-law classifier."""

import math

import pytest

from repro.analysis.fitting import classify_scaling, fit_series, growth_exponent


XS = [100, 400, 1_600, 6_400, 25_600]


class TestGrowthExponent:
    def test_flat_series_has_zero_exponent(self):
        assert abs(growth_exponent(XS, [7] * 5)) < 1e-9

    def test_linear_series_has_unit_exponent(self):
        assert growth_exponent(XS, [3 * x for x in XS]) == pytest.approx(1.0)

    def test_quadratic_series_has_exponent_two(self):
        assert growth_exponent(XS, [x * x for x in XS]) == pytest.approx(2.0)

    def test_affine_series_approaches_one(self):
        exponent = growth_exponent(XS, [5 * x + 1_000 for x in XS])
        assert 0.7 < exponent <= 1.0

    def test_zero_values_read_as_flat(self):
        assert abs(growth_exponent(XS, [0] * 5)) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            growth_exponent([1, 2], [1, 2])          # too short
        with pytest.raises(ValueError):
            growth_exponent([3, 2, 1], [1, 2, 3])    # not increasing
        with pytest.raises(ValueError):
            growth_exponent([0, 1, 2], [1, 2, 3])    # non-positive x
        with pytest.raises(ValueError):
            growth_exponent([1, 2, 3], [1, -2, 3])   # negative y


class TestClassification:
    def test_constant(self):
        fit = classify_scaling(XS, [4, 4, 4, 4, 4])
        assert fit.model == "constant"
        assert fit.is_flat()

    def test_constant_with_jitter(self):
        fit = classify_scaling(XS, [40, 42, 39, 41, 40])
        assert fit.model == "constant"

    def test_linear(self):
        fit = classify_scaling(XS, [6 * x + 21 for x in XS])
        assert fit.model == "linear"
        assert fit.slope == pytest.approx(6.0, rel=1e-6)
        assert fit.r_squared > 0.999

    def test_logarithmic(self):
        ys = [3.5 * math.log(x) + 2 for x in XS]
        fit = classify_scaling(XS, ys)
        assert fit.model == "logarithmic"
        assert fit.slope == pytest.approx(3.5, rel=1e-6)

    def test_noisy_logarithmic(self):
        ys = [3.6, 6.2, 7.8, 9.2, 10.8]  # the actual E7 random series
        fit = classify_scaling(XS, ys)
        assert fit.model == "logarithmic"

    def test_superlinear(self):
        fit = classify_scaling(XS, [x ** 1.6 for x in XS])
        assert fit.model == "superlinear"
        assert fit.growth_exponent == pytest.approx(1.6, rel=1e-3)

    def test_fit_series_reports_all_models(self):
        fits = fit_series(XS, [2 * x for x in XS])
        assert set(fits) == {"constant", "logarithmic", "linear"}
        assert fits["linear"][1] > fits["logarithmic"][1]
