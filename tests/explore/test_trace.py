"""Trace artifacts: JSON round-trip, replay, format rejection."""

import json

import pytest

from repro.explore import (
    ExplorationConfig,
    OracleViolation,
    Originate,
    StartSession,
    Trace,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.explore.actions import SessionFault, TraceFormatError

CONFIG = ExplorationConfig(
    protocol="dbvv",
    n_nodes=2,
    items=("x0",),
    max_updates=2,
    max_faults=1,
    max_crashes=0,
    max_oob=0,
)

SCHEDULE = (
    Originate(0, "x0"),
    StartSession(1, 0, SessionFault("drop", after=2)),
    StartSession(1, 0),
)


class TestRoundTrip:
    def test_save_load_is_identity(self, tmp_path):
        trace = Trace(
            CONFIG,
            SCHEDULE,
            OracleViolation("convergence", "divergent fixpoint", 1),
            note="unit test",
        )
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.config == trace.config
        assert loaded.schedule == trace.schedule
        assert loaded.violation.check == "convergence"
        assert loaded.note == "unit test"

    def test_trace_json_is_versioned(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(Trace(CONFIG, SCHEDULE), path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-explore-trace"
        assert data["version"] == 1

    def test_wrong_format_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_invalid_json_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json")
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestReplay:
    def test_clean_schedule_reports_no_violation(self):
        report = replay_trace(Trace(CONFIG, SCHEDULE))
        assert not report.reproduced
        assert report.steps_consumed == len(SCHEDULE)
        assert report.summary() == "no violation reproduced"

    def test_expected_violation_is_compared_on_replay(self):
        trace = Trace(
            CONFIG, SCHEDULE, OracleViolation("convergence", "stale", 0)
        )
        report = replay_trace(trace)
        assert not report.matches_expected
