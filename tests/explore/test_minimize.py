"""Minimizer contract: refuses non-counterexamples, rejects broken
shrink candidates via InapplicableActionError."""

import pytest

from repro.explore import ExplorationConfig, Originate, StartSession
from repro.explore.actions import InapplicableActionError, Recover
from repro.explore.minimize import minimize_schedule, replay_schedule
from repro.explore.oracle import InvariantOracle

CONFIG = ExplorationConfig(
    protocol="dbvv",
    n_nodes=2,
    items=("x0",),
    max_updates=2,
    max_faults=0,
    max_crashes=0,
    max_oob=0,
    fault_variants=False,
)


def test_non_violating_schedule_is_refused():
    schedule = [Originate(0, "x0"), StartSession(1, 0)]
    with pytest.raises(ValueError):
        minimize_schedule(CONFIG, schedule)


def test_replay_rejects_disabled_actions():
    # A Recover without a preceding Crash is not enabled.
    with pytest.raises(InapplicableActionError):
        replay_schedule(CONFIG, [Recover(0)], InvariantOracle())


def test_replay_of_clean_schedule_consumes_everything():
    schedule = [Originate(0, "x0"), StartSession(1, 0)]
    violation, consumed = replay_schedule(
        CONFIG, schedule, InvariantOracle()
    )
    assert violation is None
    assert consumed == len(schedule)
