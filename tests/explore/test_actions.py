"""Action alphabet: JSON round-trips and the independence relation."""

import pytest

from repro.explore.actions import (
    Crash,
    FetchOutOfBound,
    Originate,
    Recover,
    SessionFault,
    StartSession,
    TraceFormatError,
    action_from_json,
    action_to_json,
    independent,
)

ALL_ACTION_SHAPES = [
    Originate(0, "x0"),
    StartSession(0, 1),
    StartSession(1, 0, SessionFault("drop", after=2)),
    StartSession(0, 1, SessionFault("crash", after=1, target=1)),
    Crash(1),
    Recover(1),
    FetchOutOfBound(0, "x1", 1),
]


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "action", ALL_ACTION_SHAPES, ids=lambda a: a.describe()
    )
    def test_round_trip_is_identity(self, action):
        assert action_from_json(action_to_json(action)) == action

    def test_unknown_kind_is_a_trace_format_error(self):
        with pytest.raises(TraceFormatError):
            action_from_json({"kind": "teleport"})

    def test_malformed_fault_is_rejected(self):
        with pytest.raises(TraceFormatError):
            SessionFault("drop", after=0)
        with pytest.raises(TraceFormatError):
            SessionFault("crash", after=1)  # no target


class TestIndependence:
    BUDGETS = {"updates": 5, "faults": 5, "crashes": 5, "oob": 5}

    def test_disjoint_sessions_commute(self):
        assert independent(
            StartSession(0, 1), StartSession(2, 3), self.BUDGETS
        )

    def test_sessions_sharing_a_node_conflict(self):
        assert not independent(
            StartSession(0, 1), StartSession(1, 2), self.BUDGETS
        )

    def test_update_at_uninvolved_node_commutes_with_session(self):
        assert independent(
            Originate(2, "x0"), StartSession(0, 1), self.BUDGETS
        )

    def test_update_at_initiator_conflicts_with_session(self):
        assert not independent(
            Originate(0, "x0"), StartSession(0, 1), self.BUDGETS
        )

    def test_independence_is_symmetric(self):
        for a in ALL_ACTION_SHAPES:
            for b in ALL_ACTION_SHAPES:
                assert independent(a, b, self.BUDGETS) == independent(
                    b, a, self.BUDGETS
                ), (a, b)

    def test_shared_budget_with_one_unit_left_conflicts(self):
        a, b = Originate(0, "x0"), Originate(1, "x0")
        assert independent(a, b, {"updates": 2})
        assert not independent(a, b, {"updates": 1})
