"""Engine behavior: exhaustiveness, truncation, POR soundness."""

import pytest

from repro.explore import ExplorationConfig, Explorer

SMALL = ExplorationConfig(
    protocol="dbvv",
    n_nodes=2,
    items=("x0",),
    max_updates=2,
    max_faults=1,
    max_crashes=1,
    max_oob=0,
)


class TestExploration:
    def test_unmodified_protocol_is_clean(self):
        result = Explorer(SMALL, depth=3).run()
        assert result.ok, result.violation.describe()
        assert result.complete
        assert not result.truncated
        assert result.stats.states_explored > 1

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            Explorer(SMALL, depth=0)

    def test_transition_cap_marks_truncated(self):
        result = Explorer(SMALL, depth=3, max_transitions=5).run()
        assert result.truncated
        assert not result.complete
        assert result.stats.transitions <= 5


class TestPartialOrderReduction:
    """Sleep sets prune *transitions*, never *states*: the reduced and
    unreduced searches must visit exactly the same state set (the
    classic sleep-set soundness property), with fewer branches taken."""

    CONFIG = ExplorationConfig(
        protocol="dbvv",
        n_nodes=3,
        items=("x0",),
        max_updates=2,
        max_faults=0,
        max_crashes=0,
        max_oob=0,
        fault_variants=False,
    )

    def test_same_states_as_unreduced_search(self):
        reduced = Explorer(self.CONFIG, depth=3, por=True)
        baseline = Explorer(self.CONFIG, depth=3, por=False)
        reduced_result = reduced.run()
        baseline_result = baseline.run()
        assert reduced_result.ok and baseline_result.ok
        assert reduced_result.complete and baseline_result.complete
        assert set(reduced._visited) == set(baseline._visited)
        assert reduced_result.stats.pruned_sleep > 0

    def test_por_prunes_most_of_the_raw_interleaving_tree(self):
        # The honest baseline is the *raw* schedule tree (no sleep sets,
        # no state cache): capping it at 2x the reduced transition count
        # and seeing it truncate proves > 50% of interleavings pruned —
        # the same argument `python -m repro.explore` prints.
        reduced = Explorer(self.CONFIG, depth=3).run()
        assert reduced.complete
        raw = Explorer(
            self.CONFIG,
            depth=3,
            por=False,
            visited_cache=False,
            oracle_checks=False,
            max_transitions=2 * reduced.stats.transitions + 1,
        ).run()
        assert raw.truncated, (
            f"raw tree finished within 2x the reduced search "
            f"({raw.stats.transitions} vs {reduced.stats.transitions})"
        )

    def test_por_finds_the_same_verdict_with_faults(self):
        config = ExplorationConfig(
            protocol="dbvv",
            n_nodes=2,
            items=("x0",),
            max_updates=1,
            max_faults=1,
            max_crashes=1,
            max_oob=1,
        )
        assert Explorer(config, depth=3, por=True).run().ok
        assert Explorer(config, depth=3, por=False).run().ok
