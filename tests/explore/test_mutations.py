"""Mutation smoke tests: the full find → minimize → save → replay loop.

Each known-bug mutation must be (re-)found by a small bounded
exploration, shrink to a minimal schedule, survive a JSON round-trip,
and reproduce on replay — the end-to-end workflow a real counterexample
travels.  A model checker that cannot re-find a known bug is vacuous;
these three keep the oracle honest (see ``repro.explore.mutations``).
"""

import pytest

from repro.explore import Explorer, Trace, load_trace, replay_trace, save_trace
from repro.explore.minimize import minimize_schedule
from repro.explore.mutations import MUTATIONS, apply_mutation


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_yields_minimized_replayable_counterexample(name, tmp_path):
    mutation = MUTATIONS[name]
    with apply_mutation(name):
        result = Explorer(mutation.config, mutation.depth).run()
        assert result.violation is not None, (
            f"exploration missed the {name} mutation"
        )
        minimized, violation = minimize_schedule(
            mutation.config, result.schedule
        )
        assert 1 <= len(minimized) <= len(result.schedule)
        path = tmp_path / f"{name}.json"
        save_trace(
            Trace(mutation.config, tuple(minimized), violation, note=name),
            path,
        )
        report = replay_trace(load_trace(path))
        assert report.reproduced
        assert report.matches_expected, report.summary()
    # Restored protocol: the same trace must no longer reproduce.
    assert not replay_trace(load_trace(path)).reproduced


def test_adopt_any_needs_the_differential_oracle():
    """The lost-update mutation keeps all single-protocol bookkeeping
    self-consistent; only the cross-protocol comparison can see it."""
    mutation = MUTATIONS["adopt-any"]
    assert mutation.config.differential, (
        "adopt-any is only observable differentially"
    )


def test_unknown_mutation_is_rejected():
    with pytest.raises(ValueError):
        with apply_mutation("teleport"):
            pass


def test_mutation_restores_original_method_on_error():
    mutation = MUTATIONS["skip-unlink"]
    original = getattr(mutation.target, mutation.attr)
    with pytest.raises(RuntimeError):
        with apply_mutation("skip-unlink"):
            assert getattr(mutation.target, mutation.attr) is not original
            raise RuntimeError("boom")
    assert getattr(mutation.target, mutation.attr) is original
