"""World semantics: budgets, enabled actions, cloning, state hashing."""

import pytest

from repro.explore import (
    Crash,
    ExplorationConfig,
    Originate,
    Recover,
    StartSession,
    build_world,
)
from repro.explore.actions import FetchOutOfBound, InapplicableActionError

SMALL = ExplorationConfig(
    protocol="dbvv",
    n_nodes=2,
    items=("x0",),
    max_updates=1,
    max_faults=0,
    max_crashes=1,
    max_oob=0,
    fault_variants=False,
)


class TestEnabledActions:
    def test_initial_alphabet_is_deterministic(self):
        first = build_world(SMALL).enabled_actions()
        second = build_world(SMALL).enabled_actions()
        assert first == second

    def test_budget_exhaustion_removes_updates(self):
        world = build_world(SMALL)
        world.apply(Originate(0, "x0"))
        assert not any(
            isinstance(a, Originate) for a in world.enabled_actions()
        )

    def test_crashed_node_cannot_act_but_can_recover(self):
        world = build_world(SMALL)
        world.apply(Crash(1))
        actions = world.enabled_actions()
        assert not any(isinstance(a, StartSession) for a in actions)
        assert Recover(1) in actions

    def test_oob_requires_protocol_support(self):
        no_oob = build_world(
            ExplorationConfig(protocol="per-item-vv", n_nodes=2, items=("x0",))
        )
        assert not any(
            isinstance(a, FetchOutOfBound) for a in no_oob.enabled_actions()
        )

    def test_fault_variants_gate_session_faults(self):
        faulty = build_world(
            ExplorationConfig(n_nodes=2, items=("x0",), max_faults=1)
        )
        assert any(
            isinstance(a, StartSession) and a.fault is not None
            for a in faulty.enabled_actions()
        )
        assert not any(
            isinstance(a, StartSession) and a.fault is not None
            for a in build_world(SMALL).enabled_actions()
        )


class TestApply:
    def test_disabled_actions_raise_inapplicable(self):
        world = build_world(SMALL)
        world.apply(Originate(0, "x0"))
        with pytest.raises(InapplicableActionError):
            world.apply(Originate(0, "x0"))  # budget spent
        with pytest.raises(InapplicableActionError):
            world.apply(Recover(0))  # already up
        world.apply(Crash(1))
        with pytest.raises(InapplicableActionError):
            world.apply(StartSession(0, 1))  # responder down

    def test_every_enabled_action_applies_cleanly(self):
        for action in build_world(SMALL).enabled_actions():
            build_world(SMALL).apply(action)


class TestClone:
    def test_clone_is_independent(self):
        world = build_world(SMALL)
        clone = world.clone()
        clone.apply(Originate(0, "x0"))
        assert world.budgets_left()["updates"] == 1
        assert clone.budgets_left()["updates"] == 0
        assert world.state_key() != clone.state_key()

    def test_clone_shares_frozen_config(self):
        world = build_world(SMALL)
        assert world.clone().config is world.config


class TestStateKey:
    def test_equal_histories_hash_equal(self):
        a, b = build_world(SMALL), build_world(SMALL)
        for world in (a, b):
            world.apply(Originate(0, "x0"))
            world.apply(StartSession(1, 0))
        assert a.state_key() == b.state_key()

    def test_budgets_are_part_of_state_key_but_not_protocol_key(self):
        spent = build_world(SMALL)
        spent.apply(Crash(0))
        spent.apply(Recover(0))
        fresh = build_world(SMALL)
        assert spent.protocol_key() == fresh.protocol_key()
        assert spent.state_key() != fresh.state_key()


class TestDifferentialWorld:
    def test_members_step_in_lockstep(self):
        config = ExplorationConfig(
            n_nodes=2,
            items=("x0",),
            max_updates=1,
            max_faults=0,
            max_crashes=0,
            max_oob=0,
            fault_variants=False,
            differential=("per-item-vv", "wuu-bernstein"),
        )
        world = build_world(config)
        world.apply(Originate(0, "x0"))
        world.apply(StartSession(1, 0))
        values = {
            member.protocol: member.nodes[1].read("x0")
            for member in world.worlds
        }
        assert set(values.values()) == {b"A"}
