"""Package-surface tests: the top-level imports a user starts from."""

import importlib

import repro


class TestTopLevel:
    def test_version_is_exposed(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_headline_exports(self):
        assert repro.EpidemicNode is not None
        assert repro.VersionVector is not None
        assert repro.Ordering is not None
        assert issubclass(repro.ReplicationError, Exception)

    def test_quickstart_docstring_example_works(self):
        """The example in the package docstring must actually run."""
        from repro.core import EpidemicNode
        from repro.substrate.operations import Put

        items = [f"item-{k}" for k in range(100)]
        a = EpidemicNode(0, 2, items)
        b = EpidemicNode(1, 2, items)
        a.update("item-7", Put(b"hello"))
        b.pull_from(a)
        assert b.read("item-7") == b"hello"


class TestSubpackagesImportCleanly:
    def test_every_public_module_imports(self):
        modules = [
            "repro.core", "repro.core.version_vector", "repro.core.dbvv",
            "repro.core.log_vector", "repro.core.auxiliary", "repro.core.items",
            "repro.core.messages", "repro.core.node", "repro.core.delta",
            "repro.core.conflicts", "repro.core.protocol",
            "repro.substrate", "repro.substrate.operations",
            "repro.substrate.storage", "repro.substrate.database",
            "repro.substrate.server", "repro.substrate.host",
            "repro.substrate.tokens", "repro.substrate.transactions",
            "repro.substrate.sessions", "repro.substrate.persistence",
            "repro.substrate.clock",
            "repro.cluster", "repro.cluster.events", "repro.cluster.network",
            "repro.cluster.scheduler", "repro.cluster.topologies",
            "repro.cluster.failures", "repro.cluster.convergence",
            "repro.cluster.coverage", "repro.cluster.simulation",
            "repro.cluster.event_sim",
            "repro.baselines", "repro.baselines.per_item",
            "repro.baselines.lotus", "repro.baselines.oracle",
            "repro.baselines.wuu_bernstein", "repro.baselines.agrawal_malpani",
            "repro.workload", "repro.workload.generators", "repro.workload.traces",
            "repro.metrics", "repro.metrics.counters", "repro.metrics.staleness",
            "repro.metrics.reporting", "repro.metrics.ascii_chart",
            "repro.analysis", "repro.analysis.fitting", "repro.analysis.verdicts",
            "repro.experiments", "repro.experiments.common",
            "repro.experiments.run_all", "repro.interfaces", "repro.errors",
        ] + [f"repro.experiments.e{k}_" for k in []]  # experiment ids below
        modules += [
            "repro.experiments.e1_identical_detection",
            "repro.experiments.e2_propagation_cost",
            "repro.experiments.e3_log_bound",
            "repro.experiments.e4_lotus_comparison",
            "repro.experiments.e5_failure_recovery",
            "repro.experiments.e6_out_of_bound",
            "repro.experiments.e7_convergence",
            "repro.experiments.e8_traffic",
            "repro.experiments.e9_read_staleness",
            "repro.experiments.ablations",
        ]
        for name in modules:
            importlib.import_module(name)

    def test_all_lists_are_accurate(self):
        """Every name in a module's __all__ actually exists."""
        for name in [
            "repro.core", "repro.cluster", "repro.baselines",
            "repro.workload", "repro.metrics", "repro.analysis",
            "repro.substrate",
        ]:
            module = importlib.import_module(name)
            for public in module.__all__:
                assert hasattr(module, public), f"{name}.{public} missing"
