"""Tests for NodeJournal: record/commit/checkpoint/recover mechanics."""

import pytest

from repro.core.messages import PropagationReply
from repro.core.node import EpidemicNode
from repro.core.session import PullSession, respond
from repro.durable import NodeJournal, WalUpdate, decode_record, encode_record
from repro.errors import WALError
from repro.substrate.operations import Append, Put
from repro.substrate.persistence import SnapshotError, dump_node

ITEMS = ["a", "b"]


def journaled_workload(journal: NodeJournal) -> EpidemicNode:
    """Drive a node through all five record kinds, journaling each."""
    node = EpidemicNode(0, 3, ITEMS)
    peer = EpidemicNode(1, 3, ITEMS)

    node.update("a", Put(b"hello"))
    journal.record_update("a", Put(b"hello"))
    journal.commit(node)

    peer.update("b", Put(b"peer-data"))
    pull = PullSession(node)
    answer = respond(peer, pull.request())
    pull.conclude(answer)
    assert isinstance(answer, PropagationReply)
    journal.record_accept(answer)
    journal.commit(node)

    peer.update("a", Put(b"hot"))
    request = node.make_oob_request("a")
    reply = peer.handle_oob_request(request)
    node.accept_oob(reply)
    journal.record_oob(reply)
    journal.commit(node)

    node.update("a", Append(b"+tail"))
    journal.record_update("a", Append(b"+tail"))
    journal.commit(node)
    return node


class TestRecordCodec:
    def test_roundtrip_carries_the_lsn(self):
        body = encode_record(42, WalUpdate("a", Put(b"v")))
        lsn, record = decode_record(body)
        assert lsn == 42
        assert record == WalUpdate("a", Put(b"v"))

    def test_crc_valid_garbage_body_raises_walerror(self, tmp_path):
        journal = NodeJournal(tmp_path)
        journal.wal.append(b"\xfe\xfd semantic garbage")
        journal.wal.commit()
        journal.close()
        fresh = NodeJournal(tmp_path)
        with pytest.raises(WALError):
            fresh.recover(EpidemicNode, 0, 3, ITEMS)

    def test_trailing_bytes_in_body_raise_walerror(self):
        body = encode_record(1, WalUpdate("a", Put(b"v"))) + b"\x00"
        with pytest.raises(WALError, match="trailing"):
            decode_record(body)


class TestRecovery:
    def test_recover_replays_the_journal_exactly(self, tmp_path):
        journal = NodeJournal(tmp_path, checkpoint_every=0)
        node = journaled_workload(journal)
        journal.close()
        fresh = NodeJournal(tmp_path)
        recovered = fresh.recover(EpidemicNode, 0, 3, ITEMS)
        assert dump_node(recovered) == dump_node(node)
        recovered.check_invariants()
        assert fresh.records_replayed == 4
        assert fresh.records_skipped == 0

    def test_empty_directory_recovers_a_fresh_node(self, tmp_path):
        journal = NodeJournal(tmp_path)
        assert not journal.has_state
        recovered = journal.recover(EpidemicNode, 2, 5, ITEMS)
        assert dump_node(recovered) == dump_node(EpidemicNode(2, 5, ITEMS))

    def test_has_state_after_first_commit(self, tmp_path):
        journal = NodeJournal(tmp_path)
        journal.record_update("a", Put(b"v"))
        journal.commit()
        assert journal.has_state

    def test_recovered_journal_resumes_the_lsn_sequence(self, tmp_path):
        journal = NodeJournal(tmp_path, checkpoint_every=0)
        node = journaled_workload(journal)
        journal.close()
        fresh = NodeJournal(tmp_path, checkpoint_every=0)
        recovered = fresh.recover(EpidemicNode, 0, 3, ITEMS)
        recovered.update("b", Append(b"!"))
        fresh.record_update("b", Append(b"!"))
        fresh.commit(recovered)
        fresh.close()
        final = NodeJournal(tmp_path).recover(EpidemicNode, 0, 3, ITEMS)
        node.update("b", Append(b"!"))
        assert dump_node(final) == dump_node(node)


class TestCheckpointing:
    def test_checkpoint_folds_the_wal(self, tmp_path):
        journal = NodeJournal(tmp_path, checkpoint_every=0)
        node = journaled_workload(journal)
        journal.checkpoint(node)
        assert journal.wal_path.read_bytes() == b""
        journal.close()
        fresh = NodeJournal(tmp_path)
        recovered = fresh.recover(EpidemicNode, 0, 3, ITEMS)
        assert dump_node(recovered) == dump_node(node)
        assert fresh.records_replayed == 0

    def test_auto_checkpoint_cadence(self, tmp_path):
        journal = NodeJournal(tmp_path, checkpoint_every=2)
        node = EpidemicNode(0, 2, ITEMS)
        for k in range(5):
            node.update("a", Put(f"v{k}".encode()))
            journal.record_update("a", Put(f"v{k}".encode()))
            journal.commit(node)
        assert journal.checkpoints == 2
        journal.close()
        fresh = NodeJournal(tmp_path)
        recovered = fresh.recover(EpidemicNode, 0, 2, ITEMS)
        assert dump_node(recovered) == dump_node(node)

    def test_commit_without_node_never_checkpoints(self, tmp_path):
        journal = NodeJournal(tmp_path, checkpoint_every=1)
        journal.record_update("a", Put(b"v"))
        journal.commit()
        assert journal.checkpoints == 0

    def test_stale_wal_records_are_skipped_by_lsn(self, tmp_path):
        # Simulate a crash between checkpoint-replace and WAL-truncate:
        # the snapshot is new but the log still holds every old record.
        journal = NodeJournal(tmp_path, checkpoint_every=0)
        node = journaled_workload(journal)
        journal.close()
        stale_wal = journal.wal_path.read_bytes()
        again = NodeJournal(tmp_path, checkpoint_every=0)
        node2 = again.recover(EpidemicNode, 0, 3, ITEMS)
        again.checkpoint(node2)
        again.close()
        journal.wal_path.write_bytes(stale_wal)
        fresh = NodeJournal(tmp_path)
        recovered = fresh.recover(EpidemicNode, 0, 3, ITEMS)
        assert fresh.records_skipped == 4
        assert fresh.records_replayed == 0
        assert dump_node(recovered) == dump_node(node)

    def test_malformed_checkpoint_header_rejected(self, tmp_path):
        journal = NodeJournal(tmp_path)
        journal.checkpoint_path.write_text("not a checkpoint\nbody\n")
        with pytest.raises(SnapshotError, match="checkpoint header"):
            journal.recover(EpidemicNode, 0, 3, ITEMS)

    def test_non_numeric_checkpoint_lsn_rejected(self, tmp_path):
        journal = NodeJournal(tmp_path)
        journal.checkpoint_path.write_text("checkpoint lsn nope\nbody\n")
        with pytest.raises(SnapshotError, match="checkpoint LSN"):
            journal.recover(EpidemicNode, 0, 3, ITEMS)
