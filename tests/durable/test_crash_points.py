"""The crash-point property: kill the WAL at *every* byte offset.

A crash can cut the log anywhere — mid-length-prefix, mid-CRC,
mid-body — and recovery must always come back to the exact state the
node had after the last record that survived intact, never a torn
half-state.  The hypothesis strategy generates a random workload (user
updates, anti-entropy adoptions, out-of-bound fetches — everything the
drivers journal); the test then truncates the resulting WAL at every
single byte offset and checks, for each truncation point, that the
recovered replica

* equals (``dump_node``-exactly) an *independent* replay of the record
  prefix whose frames fit below the cut,
* passes ``check_invariants``, and
* left the log file appendable (truncated to the last intact record).

Group-commit (fsync) boundaries are a subset of byte offsets, so the
crashes a real power cut produces under fsync discipline are covered by
the same sweep; a dedicated assertion checks the acknowledged-record
guarantee at exactly those boundaries anyway.
"""

import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.messages import PropagationReply
from repro.core.node import EpidemicNode
from repro.core.session import PullSession, respond
from repro.durable import NodeJournal, apply_record, decode_record
from repro.durable.wal import WriteAheadLog
from repro.substrate.operations import Append, Put
from repro.substrate.persistence import dump_node, load_node
from repro.wire.varint import write_uvarint

ITEMS = ["a", "b"]

ACTIONS = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"), st.sampled_from(ITEMS), st.binary(max_size=6)
        ),
        st.tuples(
            st.just("append"),
            st.sampled_from(ITEMS),
            st.binary(min_size=1, max_size=4),
        ),
        st.tuples(st.just("peer_put"), st.sampled_from(ITEMS)),
        st.just(("pull",)),
        st.just(("oob",)),
    ),
    min_size=1,
    max_size=7,
)


def run_workload(journal, actions) -> tuple[EpidemicNode, list[int]]:
    """Drive (node, peer) through ``actions``, journaling the node's
    inputs; returns the node and the record count at each group-commit
    boundary (every acknowledged batch)."""
    node = EpidemicNode(0, 3, ITEMS)
    peer = EpidemicNode(1, 3, ITEMS)
    committed_counts = []
    recorded = 0
    for index, action in enumerate(actions):
        kind = action[0]
        if kind == "put":
            node.update(action[1], Put(action[2]))
            journal.record_update(action[1], Put(action[2]))
        elif kind == "append":
            node.update(action[1], Append(action[2]))
            journal.record_update(action[1], Append(action[2]))
        elif kind == "peer_put":
            peer.update(action[1], Put(f"peer{index}".encode()))
            continue  # peer-local, nothing journaled at the node
        elif kind == "pull":
            pull = PullSession(node)
            answer = respond(peer, pull.request())
            pull.conclude(answer)
            if not isinstance(answer, PropagationReply):
                continue  # YouAreCurrent: nothing adopted, nothing logged
            journal.record_accept(answer)
        else:  # oob
            reply = peer.handle_oob_request(node.make_oob_request(action[1] if len(action) > 1 else "a"))
            node.accept_oob(reply)
            journal.record_oob(reply)
        recorded += 1
        journal.commit(node)
        committed_counts.append(recorded)
    return node, committed_counts


def frame_ends(bodies) -> list[int]:
    """Cumulative end offset of each record's on-disk frame."""
    ends = []
    cursor = 0
    for body in bodies:
        prefix = bytearray()
        write_uvarint(prefix, len(body))
        cursor += len(prefix) + 4 + len(body)
        ends.append(cursor)
    return ends


def recover_from(directory: Path) -> tuple[EpidemicNode, NodeJournal]:
    journal = NodeJournal(directory, fsync=False)
    node = journal.recover(EpidemicNode, 0, 3, ITEMS)
    journal.close()
    return node, journal


@settings(max_examples=12, deadline=None)
@given(actions=ACTIONS)
def test_recovery_is_prefix_consistent_at_every_truncation_point(actions):
    with tempfile.TemporaryDirectory(prefix="crashpoints-") as tmp:
        base = Path(tmp)
        journal = NodeJournal(base / "full", fsync=False, checkpoint_every=0)
        _, committed_counts = run_workload(journal, actions)
        journal.close()
        # A workload that journaled nothing never created the file.
        data = (
            journal.wal_path.read_bytes() if journal.wal_path.exists() else b""
        )

        bodies, valid = WriteAheadLog.scan(data)
        assert valid == len(data)  # a clean shutdown leaves no torn tail
        ends = frame_ends(bodies)
        assert (ends[-1] if ends else 0) == len(data)

        # Independent prefix states: dumps[k] = fresh node + replay of
        # the first k records (not through NodeJournal.recover).
        reference = EpidemicNode(0, 3, ITEMS)
        dumps = [dump_node(reference)]
        for body in bodies:
            _, record = decode_record(body)
            apply_record(reference, record)
            dumps.append(dump_node(reference))

        crash_dir = base / "crash"
        for cut in range(len(data) + 1):
            survived = sum(1 for end in ends if end <= cut)
            shutil.rmtree(crash_dir, ignore_errors=True)
            crash_dir.mkdir()
            (crash_dir / "wal.log").write_bytes(data[:cut])
            recovered, recovering = recover_from(crash_dir)
            assert dump_node(recovered) == dumps[survived], f"cut at byte {cut}"
            recovered.check_invariants()
            assert recovering.records_replayed == survived
            # The repaired log ends exactly at the last intact record,
            # ready for further appends.
            expected_size = ends[survived - 1] if survived else 0
            assert (crash_dir / "wal.log").stat().st_size == expected_size

        # Fsync-boundary crashes: every group commit acknowledged a
        # record batch; a cut exactly at a commit boundary must recover
        # every acknowledged record (the durability contract).
        for count in committed_counts:
            cut = ends[count - 1]
            shutil.rmtree(crash_dir, ignore_errors=True)
            crash_dir.mkdir()
            (crash_dir / "wal.log").write_bytes(data[:cut])
            recovered, _ = recover_from(crash_dir)
            assert dump_node(recovered) == dumps[count]


@settings(max_examples=8, deadline=None)
@given(actions=ACTIONS, checkpoint_after=st.integers(min_value=0, max_value=7))
def test_recovery_from_checkpoint_plus_suffix_at_every_truncation_point(
    actions, checkpoint_after
):
    """Same sweep with a mid-workload checkpoint: recovery must splice
    checkpoint base + WAL-suffix prefix, gated by LSN."""
    with tempfile.TemporaryDirectory(prefix="crashpoints-ckpt-") as tmp:
        base = Path(tmp)
        journal = NodeJournal(base / "node", fsync=False, checkpoint_every=0)
        node = EpidemicNode(0, 3, ITEMS)
        peer = EpidemicNode(1, 3, ITEMS)
        for index, action in enumerate(actions):
            if index == checkpoint_after:
                journal.checkpoint(node)
            kind = action[0]
            if kind == "put":
                node.update(action[1], Put(action[2]))
                journal.record_update(action[1], Put(action[2]))
            elif kind == "append":
                node.update(action[1], Append(action[2]))
                journal.record_update(action[1], Append(action[2]))
            elif kind == "peer_put":
                peer.update(action[1], Put(f"peer{index}".encode()))
                continue
            elif kind == "pull":
                pull = PullSession(node)
                answer = respond(peer, pull.request())
                pull.conclude(answer)
                if not isinstance(answer, PropagationReply):
                    continue
                journal.record_accept(answer)
            else:
                reply = peer.handle_oob_request(node.make_oob_request("a"))
                node.accept_oob(reply)
                journal.record_oob(reply)
            journal.commit(node)
        journal.close()
        data = (
            journal.wal_path.read_bytes() if journal.wal_path.exists() else b""
        )
        has_checkpoint = journal.checkpoint_path.exists()
        checkpoint_bytes = (
            journal.checkpoint_path.read_bytes() if has_checkpoint else b""
        )

        # Independent base state: parse the checkpoint by hand.
        if has_checkpoint:
            header, _, snapshot_text = checkpoint_bytes.decode().partition("\n")
            base_lsn = int(header.removeprefix("checkpoint lsn "))
            base_dump = snapshot_text
        else:
            base_lsn = 0
            base_dump = dump_node(EpidemicNode(0, 3, ITEMS))

        bodies, valid = WriteAheadLog.scan(data)
        assert valid == len(data)
        ends = frame_ends(bodies)

        crash_dir = base / "crash"
        for cut in range(len(data) + 1):
            survived = sum(1 for end in ends if end <= cut)
            shutil.rmtree(crash_dir, ignore_errors=True)
            crash_dir.mkdir()
            if has_checkpoint:
                (crash_dir / "checkpoint.snap").write_bytes(checkpoint_bytes)
            (crash_dir / "wal.log").write_bytes(data[:cut])
            recovered, _ = recover_from(crash_dir)
            recovered.check_invariants()

            expected = load_node(base_dump)
            for body in bodies[:survived]:
                lsn, record = decode_record(body)
                if lsn > base_lsn:
                    apply_record(expected, record)
            assert dump_node(recovered) == dump_node(expected), f"cut {cut}"

        # The full log replays back to the exact pre-crash state.
        full, _ = recover_from(base / "node")
        assert dump_node(full) == dump_node(node)
