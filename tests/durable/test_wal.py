"""Tests for the append-only WAL file layer (framing, CRC, torn tails)."""

import zlib

import pytest

from repro.durable.wal import WriteAheadLog
from repro.wire.varint import write_uvarint

BODIES = [b"alpha", b"", b"a longer record body with some girth", b"\x00\xff" * 7]


def frame(body: bytes) -> bytes:
    buf = bytearray()
    write_uvarint(buf, len(body))
    buf += zlib.crc32(body).to_bytes(4, "little")
    buf += body
    return bytes(buf)


class TestAppendCommit:
    def test_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for body in BODIES:
            wal.append(body)
        wal.commit()
        wal.close()
        assert WriteAheadLog(tmp_path / "wal.log").open_and_repair() == BODIES

    def test_on_disk_layout_matches_spec(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for body in BODIES:
            wal.append(body)
        wal.close()
        expected = b"".join(frame(body) for body in BODIES)
        assert (tmp_path / "wal.log").read_bytes() == expected

    def test_group_commit_counts_one_fsync_per_batch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=True)
        wal.append(b"one")
        wal.append(b"two")
        wal.append(b"three")
        assert wal.pending_records == 3
        wal.commit()
        assert wal.fsyncs == 1
        assert wal.pending_records == 0
        assert wal.records_appended == 3

    def test_commit_without_appends_is_a_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=True)
        wal.commit()
        assert wal.fsyncs == 0
        assert not (tmp_path / "wal.log").exists()

    def test_reset_empties_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(b"doomed")
        wal.commit()
        wal.reset()
        wal.close()
        assert (tmp_path / "wal.log").read_bytes() == b""
        assert WriteAheadLog(tmp_path / "wal.log").open_and_repair() == []

    def test_missing_file_recovers_empty(self, tmp_path):
        assert WriteAheadLog(tmp_path / "nothing.log").open_and_repair() == []


class TestTornTail:
    def test_scan_accepts_exactly_the_intact_prefix_at_every_cut(self):
        data = b"".join(frame(body) for body in BODIES)
        ends = []
        offset = 0
        for body in BODIES:
            offset += len(frame(body))
            ends.append(offset)
        for cut in range(len(data) + 1):
            bodies, valid_length = WriteAheadLog.scan(data[:cut])
            expected_count = sum(1 for end in ends if end <= cut)
            assert len(bodies) == expected_count, f"cut at byte {cut}"
            assert bodies == BODIES[:expected_count]
            assert valid_length == (ends[expected_count - 1] if expected_count else 0)

    def test_repair_truncates_the_torn_tail_in_place(self, tmp_path):
        path = tmp_path / "wal.log"
        intact = frame(b"kept-one") + frame(b"kept-two")
        path.write_bytes(intact + frame(b"torn")[:-2])
        wal = WriteAheadLog(path)
        assert wal.open_and_repair() == [b"kept-one", b"kept-two"]
        assert path.read_bytes() == intact
        assert wal.torn_bytes_dropped == len(frame(b"torn")) - 2

    def test_appends_after_repair_extend_a_well_formed_log(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(frame(b"kept") + frame(b"torn")[:3])
        wal = WriteAheadLog(path)
        wal.open_and_repair()
        wal.append(b"fresh")
        wal.commit()
        wal.close()
        assert WriteAheadLog(path).open_and_repair() == [b"kept", b"fresh"]

    def test_crc_mismatch_stops_the_scan(self, tmp_path):
        # A flipped bit inside a complete record is indistinguishable
        # from a torn tail at this layer: the record and everything
        # after it are dropped.
        good, bad, after = frame(b"good"), bytearray(frame(b"bbad")), frame(b"after")
        bad[-1] ^= 0x40
        bodies, valid_length = WriteAheadLog.scan(good + bytes(bad) + after)
        assert bodies == [b"good"]
        assert valid_length == len(good)

    def test_oversized_length_prefix_is_a_torn_tail(self):
        buf = bytearray()
        write_uvarint(buf, 1 << 20)  # claims a megabyte that never follows
        buf += b"\x00\x00\x00\x00tiny"
        bodies, valid_length = WriteAheadLog.scan(bytes(buf))
        assert bodies == []
        assert valid_length == 0


class TestLifecycle:
    def test_close_commits_pending_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=True)
        wal.append(b"pending")
        wal.close()
        assert wal.fsyncs == 1
        assert WriteAheadLog(tmp_path / "wal.log").open_and_repair() == [b"pending"]

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(b"x")
        wal.close()
        wal.close()

    def test_parent_directory_is_created_lazily(self, tmp_path):
        nested = tmp_path / "a" / "b" / "wal.log"
        wal = WriteAheadLog(nested)
        assert not nested.parent.exists()
        wal.append(b"record")
        wal.close()
        assert nested.exists()


@pytest.mark.parametrize("cut", [0, 1, 4, 5])
def test_single_record_cut_points(tmp_path, cut):
    path = tmp_path / "wal.log"
    data = frame(b"only")
    path.write_bytes(data[:cut])
    assert WriteAheadLog(path).open_and_repair() == []
    assert path.read_bytes() == b""
