"""Tests for the protocol-neutral interface layer."""

import pytest

from repro.interfaces import (
    DIRECT_TRANSPORT,
    DirectTransport,
    ProtocolNode,
    SyncStats,
    Transport,
)
from repro.core.messages import YouAreCurrent
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put


class TestDirectTransport:
    def test_delivers_identity_and_counts(self):
        counters = OverheadCounters()
        transport = DirectTransport(counters)
        message = YouAreCurrent(0)
        assert transport.deliver(0, 1, message) is message
        assert counters.messages_sent == 1
        assert counters.bytes_sent == message.wire_size()

    def test_shared_instance_is_uncounted(self):
        DIRECT_TRANSPORT.deliver(0, 1, YouAreCurrent(0))  # must not raise

    def test_satisfies_transport_protocol(self):
        assert isinstance(DirectTransport(), Transport)


class TestProtocolNodeBase:
    class _Minimal(ProtocolNode):
        protocol_name = "minimal"

        def user_update(self, item, op):
            pass

        def read(self, item):
            return b""

        def sync_with(self, peer, transport):
            return SyncStats(identical=True)

        def state_fingerprint(self):
            return {}

    def test_node_id_bounds_checked(self):
        with pytest.raises(ValueError):
            self._Minimal(5, 3)
        with pytest.raises(ValueError):
            self._Minimal(-1, 3)

    def test_default_conflict_count_is_zero(self):
        node = self._Minimal(0, 2)
        assert node.conflict_count() == 0

    def test_repr_shows_identity(self):
        assert "0/2" in repr(self._Minimal(0, 2))

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ProtocolNode(0, 2)  # type: ignore[abstract]


class TestSyncStats:
    def test_defaults(self):
        stats = SyncStats()
        assert not stats.identical
        assert not stats.failed
        assert stats.items_transferred == 0

    def test_real_protocols_fill_stats(self):
        from repro.core.protocol import DBVVProtocolNode

        a = DBVVProtocolNode(0, 2, ["x"])
        b = DBVVProtocolNode(1, 2, ["x"])
        b.user_update("x", Put(b"v"))
        stats = a.sync_with(b, DirectTransport())
        assert stats.items_transferred == 1
        assert stats.messages == 2
