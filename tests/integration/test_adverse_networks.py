"""Integration: the epidemic protocol under adverse networks.

The epidemic design's selling point is robustness: sessions are
idempotent pulls, so lost messages and partitions cost only time — the
next scheduled session tries again.  These tests run the full stack
under heavy message loss and under partitions that later heal, and
require exact convergence to the ground truth afterwards.
"""

import random

import pytest

from repro.cluster.failures import FailurePlan, HealEvent, PartitionEvent
from repro.cluster.network import SimulatedNetwork
from repro.cluster.simulation import ClusterSimulation
from repro.core.protocol import DBVVProtocolNode
from repro.errors import MessageLostError, NodeDownError
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put
from repro.workload.generators import SingleWriterWorkload

ITEMS = make_items(40)


class TestMessageLoss:
    @pytest.mark.parametrize("loss_rate", [0.1, 0.3, 0.6])
    def test_convergence_survives_heavy_loss(self, loss_rate):
        n_nodes = 4
        network = SimulatedNetwork(
            n_nodes, loss_rate=loss_rate, rng=random.Random(7)
        )
        nodes = [DBVVProtocolNode(k, n_nodes, ITEMS) for k in range(n_nodes)]
        workload = SingleWriterWorkload(ITEMS, n_nodes, seed=7)
        for event in workload.generate(60):
            nodes[event.node].user_update(event.item, event.op)
        selector_rng = random.Random(8)
        for _round in range(200):
            for node_id in range(n_nodes):
                peer = selector_rng.randrange(n_nodes - 1)
                peer = peer if peer < node_id else peer + 1
                try:
                    nodes[node_id].sync_with(nodes[peer], network)
                except (MessageLostError, NodeDownError):
                    continue
            if all(
                nodes[k].state_fingerprint() == nodes[0].state_fingerprint()
                for k in range(n_nodes)
            ):
                break
        else:
            pytest.fail(f"no convergence at loss rate {loss_rate}")
        assert network.messages_dropped > 0
        for node in nodes:
            node.check_invariants()

    def test_half_completed_session_is_harmless(self):
        """A reply lost after the request was delivered: the recipient
        adopted nothing, the source changed nothing — the protocol is
        stateless across sessions, so nothing needs cleanup."""
        a = DBVVProtocolNode(0, 2, ITEMS)
        b = DBVVProtocolNode(1, 2, ITEMS)
        b.user_update(ITEMS[0], Put(b"v"))
        # Simulate the loss by just... not delivering the reply; then a
        # full session succeeds from the same state.
        _ = b.node.send_propagation(a.node.make_propagation_request())
        from repro.interfaces import DIRECT_TRANSPORT

        stats = a.sync_with(b, DIRECT_TRANSPORT)
        assert stats.items_transferred == 1
        assert a.read(ITEMS[0]) == b"v"
        a.check_invariants()
        b.check_invariants()


class TestPartitions:
    def test_partitioned_halves_converge_internally_then_globally(self):
        plan = FailurePlan([
            PartitionEvent(groups=((0, 1), (2, 3)), at_round=1),
            HealEvent(at_round=15),
        ])
        sim = ClusterSimulation(
            make_factory("dbvv", 4, ITEMS), 4, ITEMS,
            failure_plan=plan, seed=9,
        )
        # Writers on both sides of the split (disjoint items: no
        # conflicts, just divergence).
        sim.apply_update(0, ITEMS[0], Put(b"west"))
        sim.apply_update(2, ITEMS[1], Put(b"east"))
        for _ in range(10):
            sim.run_round()
        # Inside the partition window: each side has its own update only.
        assert sim.nodes[1].read(ITEMS[0]) == b"west"
        assert sim.nodes[1].read(ITEMS[1]) == b""
        assert sim.nodes[3].read(ITEMS[1]) == b"east"
        assert sim.nodes[3].read(ITEMS[0]) == b""
        sim.run_until_converged(max_rounds=60)
        assert sim.ground_truth.fully_current(sim.nodes)
        assert sim.total_conflicts() == 0

    def test_conflicting_writes_across_partition_are_detected_after_heal(self):
        plan = FailurePlan([
            PartitionEvent(groups=((0, 1), (2, 3)), at_round=1),
            HealEvent(at_round=8),
        ])
        sim = ClusterSimulation(
            make_factory("dbvv", 4, ITEMS), 4, ITEMS,
            failure_plan=plan, seed=10,
        )
        sim.run_round()  # partition is now up
        sim.apply_update(0, ITEMS[5], Put(b"west-version"))
        sim.apply_update(2, ITEMS[5], Put(b"east-version"))
        for _ in range(30):
            sim.run_round()
        # Criterion C1 across a healed partition: the conflict surfaced.
        assert sim.total_conflicts() > 0
        values = {node.read(ITEMS[5]) for node in sim.nodes}
        assert b"west-version" in values and b"east-version" in values

    def test_staleness_is_bounded_by_partition_duration(self):
        plan = FailurePlan([
            PartitionEvent(groups=((0,), (1, 2)), at_round=1),
            HealEvent(at_round=12),
        ])
        sim = ClusterSimulation(
            make_factory("dbvv", 3, ITEMS), 3, ITEMS,
            failure_plan=plan, seed=11,
        )
        sim.apply_update(0, ITEMS[0], Put(b"isolated-write"))
        stale_by_round = []
        for _ in range(20):
            stats = sim.run_round()
            stale_by_round.append(stats.stale_pairs)
        # Stale throughout the partition (rounds 1..11), fresh soon after.
        assert all(s > 0 for s in stale_by_round[:11])
        assert stale_by_round[-1] == 0
