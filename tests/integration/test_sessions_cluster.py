"""Integration: session guarantees over a live, lagging cluster.

A population of client sessions runs a read/write mix against replicas
that synchronize only occasionally.  With FETCH-policy sessions, every
client observes its own linear history (reads never violate the
guarantees) even though the replicas are visibly stale to guarantee-
free readers — and the cluster still converges cleanly afterwards.
"""

import random

from repro.core.node import EpidemicNode
from repro.experiments.common import make_items
from repro.substrate.operations import Append
from repro.substrate.sessions import ClientSession, SessionPolicy

ITEMS = make_items(12)
N_NODES = 3


def test_many_sessions_roam_without_conflicts():
    rng = random.Random(41)
    nodes = [EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
    # Each session owns one item (sessions are the writers here; the
    # single-writer discipline is per session, enforced by guarantees).
    sessions = {
        item: ClientSession(policy=SessionPolicy.FETCH) for item in ITEMS[:6]
    }
    history = {item: b"" for item in sessions}

    for step in range(200):
        roll = rng.random()
        if roll < 0.6:
            item = ITEMS[rng.randrange(6)]
            session = sessions[item]
            server = nodes[rng.randrange(N_NODES)]
            value = session.read(server, item)
            assert value == history[item], (
                f"step {step}: session for {item} observed a non-linear value"
            )
            op = Append(f"{step};".encode())
            session.write(server, item, op)
            history[item] = op.apply(history[item])
        elif roll < 0.9:
            dst = rng.randrange(N_NODES)
            src = (dst + 1 + rng.randrange(N_NODES - 1)) % N_NODES
            nodes[dst].pull_from(nodes[src])
        else:
            # A guarantee-free reader may see stale values — that's the
            # baseline the sessions improve on; just must be a prefix.
            item = ITEMS[rng.randrange(6)]
            value = nodes[rng.randrange(N_NODES)].read(item)
            assert history[item].startswith(value)

    # Quiesce and converge.
    for _round in range(N_NODES + 2):
        for dst in range(N_NODES):
            for src in range(N_NODES):
                if dst != src:
                    nodes[dst].pull_from(nodes[src])
    for node in nodes:
        node.check_invariants()
        assert node.conflicts.count == 0
        for item, expected in history.items():
            assert node.read(item) == expected


def test_sessions_survive_server_hopping_under_partition_like_lag():
    """One session hops servers while no anti-entropy runs at all; the
    FETCH policy alone keeps the history linear."""
    nodes = [EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
    session = ClientSession(policy=SessionPolicy.FETCH)
    item = ITEMS[0]
    expected = b""
    for hop in range(9):
        server = nodes[hop % N_NODES]
        assert session.read(server, item) == expected
        op = Append(f"{hop};".encode())
        session.write(server, item, op)
        expected = op.apply(expected)
    assert session.read(nodes[0], item) == expected
