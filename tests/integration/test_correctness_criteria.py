"""Integration tests for the paper's correctness criteria (section 2.1).

C1 — inconsistent replicas of a data item are eventually detected.
C2 — update propagation never introduces new inconsistency: a replica
     acquires updates only from strictly newer copies.
C3 — every obsolete replica eventually catches up; once update activity
     stops, all replicas converge (Theorem 5, given transitive
     propagation coverage).

These run the full stack: protocol nodes inside the cluster simulation
over realistic workloads.
"""

import pytest

from repro.cluster.scheduler import RandomSelector, RingSelector, StarSelector, TopologySelector
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put
from repro.workload.generators import SingleWriterWorkload, UniformWorkload
from repro.workload.traces import Trace

import networkx as nx

ITEMS = make_items(60)


def make_sim(n_nodes=5, seed=0, selector=None):
    return ClusterSimulation(
        make_factory("dbvv", n_nodes, ITEMS),
        n_nodes,
        ITEMS,
        selector=selector or RandomSelector(),
        seed=seed,
    )


class TestC1Detection:
    def test_every_conflicting_item_is_eventually_flagged(self):
        sim = make_sim(n_nodes=4, seed=2)
        conflicted = [ITEMS[0], ITEMS[7], ITEMS[13]]
        for idx, item in enumerate(conflicted):
            sim.apply_update(0, item, Put(f"zero-{idx}".encode()))
            sim.apply_update(1, item, Put(f"one-{idx}".encode()))
        for _ in range(25):
            sim.run_round()
        detected = set()
        for node in sim.nodes:
            for report in node.node.conflicts.reports:
                detected.add(report.item)
        assert set(conflicted) <= detected

    def test_conflict_reports_pinpoint_offending_origins(self):
        sim = make_sim(n_nodes=4, seed=2)
        sim.apply_update(1, ITEMS[0], Put(b"one"))
        sim.apply_update(3, ITEMS[0], Put(b"three"))
        for _ in range(20):
            sim.run_round()
        origins = set()
        for node in sim.nodes:
            for report in node.node.conflicts.reports:
                origins.update(report.origins)
        assert origins == {1, 3}


class TestC2NoNewInconsistency:
    def test_conflicting_values_are_never_overwritten(self):
        """Both lineages survive everywhere: no replica that holds one
        lineage ever silently switches to the other."""
        sim = make_sim(n_nodes=4, seed=5)
        sim.apply_update(0, ITEMS[0], Put(b"lineage-a"))
        sim.apply_update(1, ITEMS[0], Put(b"lineage-b"))
        for _ in range(25):
            sim.run_round()
        values = {node.read(ITEMS[0]) for node in sim.nodes}
        # Nothing but the two lineages (and possibly the initial empty
        # value on nodes that refused both) may exist.
        assert values <= {b"lineage-a", b"lineage-b", b""}
        assert b"lineage-a" in values and b"lineage-b" in values

    def test_adoption_only_from_dominating_copies(self):
        """Sampled directly: after every session of a long run, each
        node's per-item IVVs only ever grew (never moved sideways)."""
        sim = make_sim(n_nodes=3, seed=7)
        workload = SingleWriterWorkload(ITEMS, 3, seed=7)
        previous = [
            {e.name: e.ivv.as_tuple() for e in node.node.store}
            for node in sim.nodes
        ]
        for event in workload.generate(60):
            sim.apply_update(event.node, event.item, event.op)
            sim.run_round()
            for node_id, node in enumerate(sim.nodes):
                for entry in node.node.store:
                    old = previous[node_id][entry.name]
                    new = entry.ivv.as_tuple()
                    assert all(n >= o for n, o in zip(new, old)), (
                        f"IVV of {entry.name} on node {node_id} went backwards"
                    )
                    previous[node_id][entry.name] = new


class TestC3Catchup:
    @pytest.mark.parametrize(
        "selector",
        [
            RandomSelector(),
            RingSelector(),
            StarSelector(hub=0),
            TopologySelector(nx.path_graph(5)),
        ],
        ids=["random", "ring", "star", "path-topology"],
    )
    def test_all_schedules_converge(self, selector):
        """Theorem 5: any schedule with transitive coverage converges."""
        sim = make_sim(n_nodes=5, seed=3, selector=selector)
        workload = SingleWriterWorkload(ITEMS, 5, seed=3)
        Trace.from_events(workload.generate(150)).replay(sim, updates_per_round=25)
        sim.run_until_converged(max_rounds=200)
        assert sim.ground_truth.fully_current(sim.nodes)
        assert sim.total_conflicts() == 0
        for node in sim.nodes:
            node.check_invariants()

    def test_obsolete_replica_catches_up_after_long_isolation(self):
        from repro.cluster.failures import Crash, FailurePlan, Recover

        plan = FailurePlan([Crash(node=4, at_round=1), Recover(node=4, at_round=30)])
        sim = ClusterSimulation(
            make_factory("dbvv", 5, ITEMS), 5, ITEMS,
            failure_plan=plan, seed=9,
        )
        workload = SingleWriterWorkload(ITEMS, 4, seed=9)  # writers 0..3
        trace = Trace.from_events(workload.generate(100))
        trace.replay(sim, updates_per_round=10)
        sim.run_until_converged(max_rounds=120)
        assert sim.nodes[4].state_fingerprint() == sim.nodes[0].state_fingerprint()

    def test_multi_writer_uniform_workload_converges_when_conflict_free(self):
        """Uniform workload routed through a single round-robin writer
        per update is conflict-free even though every node writes."""
        sim = make_sim(n_nodes=4, seed=11)
        workload = UniformWorkload(ITEMS, 4, seed=11)
        for event in workload.generate(80):
            # Route each item's updates through its hash-owner to avoid
            # concurrent writes; then propagate.
            owner = hash(event.item) % 4
            sim.apply_update(owner, event.item, event.op)
        sim.run_until_converged(max_rounds=100)
        assert sim.ground_truth.fully_current(sim.nodes)
