"""Smoke tests: every example script and the CLI run to completion.

Examples are part of the public deliverable; a broken example is a
broken product, so they run as subprocesses exactly as a user would
run them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def run(args, timeout=240):
    return subprocess.run(
        args,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = run([sys.executable, str(script)])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


def test_examples_cover_the_required_scenarios():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


class TestCli:
    def test_overview(self):
        result = run([sys.executable, "-m", "repro"])
        assert result.returncode == 0
        assert "EDBT 1996" in result.stdout

    def test_single_experiment(self):
        result = run([sys.executable, "-m", "repro", "e3"])
        assert result.returncode == 0
        assert "E3" in result.stdout

    def test_fast_experiments(self):
        result = run([sys.executable, "-m", "repro", "experiments", "--fast"])
        assert result.returncode == 0
        for tag in ("E1", "E4b", "E8"):
            assert tag in result.stdout

    def test_unknown_command(self):
        result = run([sys.executable, "-m", "repro", "nonsense"])
        assert result.returncode == 2
        assert "unknown command" in result.stderr


class TestCsvExport:
    def test_export_writes_all_experiment_tables(self, tmp_path):
        from repro.experiments.run_all import export_csv

        files = export_csv(tmp_path, fast=True)
        assert len(files) == 11
        names = {f.name for f in files}
        assert "e1_identical_detection.csv" in names
        assert "e9_read_staleness.csv" in names
        content = (tmp_path / "e1_identical_detection.csv").read_text()
        header = content.splitlines()[0]
        assert header.startswith("protocol,")
        assert len(content.splitlines()) > 2

    def test_cli_csv_flag(self, tmp_path):
        result = run(
            [sys.executable, "-m", "repro", "experiments", "--csv",
             str(tmp_path / "out"), "--fast"],
            timeout=400,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert (tmp_path / "out" / "e8_traffic.csv").exists()
