"""Cross-protocol integration: every protocol under the same harness.

The protocol-neutral interface is what makes the paper's comparisons
honest — each protocol sees the identical workload, network, and
schedule.  These tests pin the behavioural differences the paper
argues from.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import PROTOCOLS, make_factory, make_items
from repro.substrate.operations import Put
from repro.workload.generators import SingleWriterWorkload
from repro.workload.traces import Trace

ITEMS = make_items(80)
ALL_PROTOCOLS = tuple(PROTOCOLS)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestUniformBehaviour:
    def test_update_then_read_roundtrip(self, protocol):
        sim = ClusterSimulation(make_factory(protocol, 3, ITEMS), 3, ITEMS, seed=0)
        sim.apply_update(0, ITEMS[5], Put(b"v"))
        assert sim.nodes[0].read(ITEMS[5]) == b"v"

    def test_single_update_reaches_all_replicas(self, protocol):
        sim = ClusterSimulation(make_factory(protocol, 4, ITEMS), 4, ITEMS, seed=1)
        sim.apply_update(0, ITEMS[5], Put(b"v"))
        sim.run_until_converged(max_rounds=200)
        assert all(node.read(ITEMS[5]) == b"v" for node in sim.nodes)

    def test_shared_trace_converges_to_ground_truth(self, protocol):
        sim = ClusterSimulation(make_factory(protocol, 4, ITEMS), 4, ITEMS, seed=2)
        workload = SingleWriterWorkload(ITEMS, 4, seed=2)
        Trace.from_events(workload.generate(120)).replay(sim, updates_per_round=20)
        sim.run_until_converged(max_rounds=300)
        assert sim.ground_truth.fully_current(sim.nodes)

    def test_determinism_across_runs(self, protocol):
        def one_run():
            sim = ClusterSimulation(make_factory(protocol, 3, ITEMS), 3, ITEMS, seed=3)
            workload = SingleWriterWorkload(ITEMS, 3, seed=3)
            Trace.from_events(workload.generate(50)).replay(sim, updates_per_round=10)
            sim.run_until_converged(max_rounds=200)
            return sim.round_no, sim.total_counters.snapshot()

        assert one_run() == one_run()


class TestConflictHandlingSpectrum:
    """Who notices concurrent conflicting updates?  Only the version-
    vector protocols; Lotus, Oracle and Wuu–Bernstein silently pick a
    winner — exactly the paper's correctness comparison."""

    def plant_and_run(self, protocol):
        sim = ClusterSimulation(make_factory(protocol, 3, ITEMS), 3, ITEMS, seed=4)
        # Through the simulation, so the ground-truth dirty frontier
        # sees the (deliberately conflicting) updates.
        sim.apply_update(0, ITEMS[0], Put(b"a"))
        sim.apply_update(1, ITEMS[0], Put(b"b"))
        for _ in range(10):
            sim.run_round()
        return sim

    def test_vector_protocols_detect(self):
        for protocol in ("dbvv", "per-item-vv"):
            sim = self.plant_and_run(protocol)
            assert sim.total_conflicts() > 0, protocol

    def test_scalar_protocols_are_silent(self):
        for protocol in ("lotus", "oracle-push", "wuu-bernstein"):
            sim = self.plant_and_run(protocol)
            assert sim.total_conflicts() == 0, protocol
            # ...and they silently converged on one winner.
            values = {node.read(ITEMS[0]) for node in sim.nodes}
            assert len(values) == 1, protocol


class TestMultiDatabase:
    def test_independent_protocol_instances_per_database(self):
        """Paper section 2: one protocol instance per database; traffic
        and state are fully independent."""
        items_a = make_items(10, prefix="alpha")
        items_b = make_items(10, prefix="beta")
        sim_a = ClusterSimulation(make_factory("dbvv", 3, items_a), 3, items_a, seed=5)
        sim_b = ClusterSimulation(make_factory("dbvv", 3, items_b), 3, items_b, seed=5)
        sim_a.apply_update(0, items_a[0], Put(b"in-a"))
        sim_a.run_until_converged(max_rounds=50)
        # Database B never saw any of it.
        assert sim_b.total_counters.bytes_sent == 0
        assert all(node.read(items_b[0]) == b"" for node in sim_b.nodes)
        sim_b.run_until_converged(max_rounds=50)
