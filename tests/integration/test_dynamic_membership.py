"""Tests for the dynamic-membership extension.

The paper fixes the replica set "to simplify the presentation"
(section 2); this extension grows it: every existing replica's vectors
and logs gain zero components for the newcomer, and the newcomer — an
all-zero replica — catches up through perfectly ordinary update
propagation.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation
from repro.core.delta import DeltaEpidemicNode
from repro.core.node import EpidemicNode
from repro.core.protocol import DBVVProtocolNode
from repro.core.version_vector import VersionVector
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Append, Put

ITEMS = make_items(15)


class TestVectorExtension:
    def test_extend_appends_zeros(self):
        vv = VersionVector.from_counts([3, 1])
        vv.extend_to(4)
        assert vv.as_tuple() == (3, 1, 0, 0)

    def test_extend_to_same_size_is_noop(self):
        vv = VersionVector.from_counts([3, 1])
        vv.extend_to(2)
        assert vv.as_tuple() == (3, 1)

    def test_shrinking_rejected(self):
        with pytest.raises(ValueError):
            VersionVector.from_counts([1, 2, 3]).extend_to(2)

    def test_extension_preserves_ordering(self):
        a = VersionVector.from_counts([2, 1])
        b = VersionVector.from_counts([1, 1])
        a.extend_to(3)
        b.extend_to(3)
        assert a.dominates(b)


class TestNodeExpansion:
    def test_expand_grows_all_structures(self):
        node = EpidemicNode(0, 2, ITEMS)
        node.update(ITEMS[0], Put(b"v"))
        node.expand_replica_set(3)
        assert node.n_nodes == 3
        assert node.dbvv.as_tuple() == (1, 0, 0)
        assert node.store[ITEMS[0]].ivv.as_tuple() == (1, 0, 0)
        assert node.log.n_nodes == 3
        node.check_invariants()

    def test_expand_preserves_aux_state(self):
        a = EpidemicNode(0, 2, ITEMS)
        b = EpidemicNode(1, 2, ITEMS)
        a.update(ITEMS[0], Put(b"base"))
        b.copy_out_of_bound(ITEMS[0], a)
        b.update(ITEMS[0], Append(b"+b"))
        for node in (a, b):
            node.expand_replica_set(3)
        assert b.store[ITEMS[0]].aux_ivv.as_tuple() == (1, 1, 0)
        assert b.aux_log.earliest(ITEMS[0]).pre_ivv.as_tuple() == (1, 0, 0)
        # The deferred update still replays after expansion.
        _, intra = b.pull_from(a)
        assert intra.replayed == 1
        assert b.read(ITEMS[0]) == b"base+b"
        b.check_invariants()

    def test_shrink_rejected(self):
        node = EpidemicNode(0, 3, ITEMS)
        with pytest.raises(ValueError):
            node.expand_replica_set(2)

    def test_newcomer_catches_up_via_normal_propagation(self):
        a = EpidemicNode(0, 2, ITEMS)
        b = EpidemicNode(1, 2, ITEMS)
        for k in range(5):
            a.update(ITEMS[k], Put(f"v{k}".encode()))
        b.pull_from(a)
        for node in (a, b):
            node.expand_replica_set(3)
        newcomer = EpidemicNode(2, 3, ITEMS)
        outcome, _ = newcomer.pull_from(a)
        assert len(outcome.adopted) == 5
        assert newcomer.state_fingerprint() == a.state_fingerprint()
        newcomer.check_invariants()

    def test_newcomer_updates_propagate_back(self):
        a = EpidemicNode(0, 1, ITEMS)
        a.update(ITEMS[0], Put(b"old-world"))
        a.expand_replica_set(2)
        newcomer = EpidemicNode(1, 2, ITEMS)
        newcomer.pull_from(a)
        newcomer.update(ITEMS[1], Put(b"from-newcomer"))
        outcome, _ = a.pull_from(newcomer)
        assert outcome.adopted == [ITEMS[1]]
        assert a.read(ITEMS[1]) == b"from-newcomer"
        a.check_invariants()

    def test_delta_mode_expands_histories(self):
        a = DeltaEpidemicNode(0, 2, ITEMS)
        b = DeltaEpidemicNode(1, 2, ITEMS)
        a.update(ITEMS[0], Put(b"v"))
        b.pull_from(a)
        for node in (a, b):
            node.expand_replica_set(3)
        newcomer = DeltaEpidemicNode(2, 3, ITEMS)
        newcomer.pull_from(a)
        assert newcomer.read(ITEMS[0]) == b"v"
        assert a.history_of(ITEMS[0]).floor == (0, 0, 0)


class TestClusterGrowth:
    def test_add_node_to_running_cluster(self):
        sim = ClusterSimulation(make_factory("dbvv", 3, ITEMS), 3, ITEMS, seed=4)
        for k in range(3):
            sim.apply_update(k, ITEMS[k], Put(f"v{k}".encode()))
        sim.run_until_converged(max_rounds=50)

        new_id = sim.add_node(
            lambda node_id, counters, n: DBVVProtocolNode(
                node_id, n, ITEMS, counters=counters
            )
        )
        assert new_id == 3
        assert sim.n_nodes == 4
        assert not sim.converged()  # the newcomer is behind
        sim.run_until_converged(max_rounds=60)
        assert sim.nodes[3].read(ITEMS[0]) == b"v0"
        assert sim.ground_truth.fully_current(sim.nodes)

    def test_newcomer_participates_in_workload(self):
        sim = ClusterSimulation(make_factory("dbvv", 2, ITEMS), 2, ITEMS, seed=5)
        sim.apply_update(0, ITEMS[0], Put(b"before"))
        sim.run_until_converged(max_rounds=30)
        new_id = sim.add_node(
            lambda node_id, counters, n: DBVVProtocolNode(
                node_id, n, ITEMS, counters=counters
            )
        )
        sim.apply_update(new_id, ITEMS[1], Put(b"from-newcomer"))
        sim.run_until_converged(max_rounds=60)
        assert all(node.read(ITEMS[1]) == b"from-newcomer" for node in sim.nodes)

    def test_baselines_reject_growth(self):
        sim = ClusterSimulation(make_factory("lotus", 2, ITEMS), 2, ITEMS, seed=6)
        with pytest.raises(TypeError):
            sim.add_node(lambda node_id, counters, n: None)

    def test_mismatched_build_rejected(self):
        sim = ClusterSimulation(make_factory("dbvv", 2, ITEMS), 2, ITEMS, seed=7)
        with pytest.raises(ValueError):
            sim.add_node(
                lambda node_id, counters, n: DBVVProtocolNode(0, n, ITEMS)
            )
