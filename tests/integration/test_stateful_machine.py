"""Hypothesis stateful testing: the protocol vs. a reference model.

A :class:`RuleBasedStateMachine` drives a 3-node DBVV cluster with the
full rule set — conflict-free updates, pulls, out-of-bound fetches,
crashes/recoveries — while maintaining a trivially correct reference
model (the per-item single-writer history plus, per node, which prefix
of each item's history that node's *user-visible* value must match).
Hypothesis explores rule sequences adversarially and shrinks failures
to minimal scripts, which unit tests with hand-picked scenarios cannot
do.

Checked after every rule (as class invariants):

* every node's user-visible value of every item is a prefix of that
  item's history (no invented, reordered, or rolled-back data);
* protocol structural invariants hold on every live node;
* no conflicts are ever reported.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.cluster.network import SimulatedNetwork
from repro.core.protocol import DBVVProtocolNode
from repro.errors import MessageLostError, NodeDownError
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Append

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(3)]

node_ids = st.integers(min_value=0, max_value=N_NODES - 1)
item_ids = st.integers(min_value=0, max_value=len(ITEMS) - 1)


class EpidemicMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.network = SimulatedNetwork(N_NODES, counters=OverheadCounters())
        self.nodes = [DBVVProtocolNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
        self.history = {item: b"" for item in ITEMS}
        self.counter = 0
        self.down: set[int] = set()

    # -- rules -----------------------------------------------------------

    @rule(item_idx=item_ids)
    def update(self, item_idx):
        node_id = item_idx % N_NODES  # static single writer
        if node_id in self.down:
            return
        self.counter += 1
        op = Append(f"{self.counter};".encode())
        self.nodes[node_id].user_update(ITEMS[item_idx], op)
        self.history[ITEMS[item_idx]] = op.apply(self.history[ITEMS[item_idx]])

    @rule(dst=node_ids, src=node_ids)
    def pull(self, dst, src):
        if dst == src or dst in self.down:
            return
        try:
            self.nodes[dst].sync_with(self.nodes[src], self.network)
        except (NodeDownError, MessageLostError):
            pass

    @rule(dst=node_ids, src=node_ids, item_idx=item_ids)
    def out_of_bound(self, dst, src, item_idx):
        if dst == src or dst in self.down or src in self.down:
            return
        self.nodes[dst].fetch_out_of_bound(
            ITEMS[item_idx], self.nodes[src], self.network
        )

    @rule(node_id=node_ids)
    def crash_or_recover(self, node_id):
        if node_id in self.down:
            self.down.discard(node_id)
            self.network.set_up(node_id)
        elif len(self.down) < N_NODES - 1:
            self.down.add(node_id)
            self.network.set_down(node_id)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def values_are_history_prefixes(self):
        if not hasattr(self, "nodes"):
            return
        for node in self.nodes:
            for item in ITEMS:
                value = node.read(item)
                assert self.history[item].startswith(value), (
                    f"node {node.node_id} shows a non-prefix value for {item}"
                )

    @invariant()
    def structural_invariants_hold(self):
        if not hasattr(self, "nodes"):
            return
        for node in self.nodes:
            node.check_invariants()

    @invariant()
    def no_conflicts_ever(self):
        if not hasattr(self, "nodes"):
            return
        assert all(node.conflict_count() == 0 for node in self.nodes)

    def teardown(self):
        if not hasattr(self, "nodes"):
            return
        # Quiesce: everyone recovers, full-mesh rounds converge all.
        for node_id in list(self.down):
            self.network.set_up(node_id)
        for _round in range(N_NODES + 2):
            for dst in range(N_NODES):
                for src in range(N_NODES):
                    if dst != src:
                        self.nodes[dst].sync_with(self.nodes[src], self.network)
        for node in self.nodes:
            for item, expected in self.history.items():
                assert node.read(item) == expected, (
                    f"node {node.node_id} failed to converge on {item}"
                )


TestEpidemicMachine = EpidemicMachine.TestCase
TestEpidemicMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
