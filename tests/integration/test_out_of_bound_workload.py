"""Integration: out-of-bound copying mixed into a live cluster.

The paper's target usage: scheduled anti-entropy as the backbone, with
occasional out-of-bound fetches of key items that must not disturb the
protocol's bookkeeping (sections 1, 5.2).  The stream of OOB requests
interleaves with updates and rounds; at the end, everything converges,
auxiliary state drains, and no conflicts appear for the conflict-free
workload.
"""

from repro.cluster.simulation import ClusterSimulation
from repro.core.protocol import DBVVProtocolNode
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Append
from repro.workload.generators import OutOfBoundStream, SingleWriterWorkload

ITEMS = make_items(40)


def test_mixed_oob_and_scheduled_propagation_converges():
    n_nodes = 4
    sim = ClusterSimulation(make_factory("dbvv", n_nodes, ITEMS), n_nodes, ITEMS, seed=6)
    workload = SingleWriterWorkload(ITEMS, n_nodes, seed=6)
    oob = OutOfBoundStream(ITEMS, n_nodes, seed=6, hot_items=ITEMS[:5])
    oob_requests = oob.requests(30)

    events = workload.generate(120)
    for step, event in enumerate(events):
        sim.apply_update(event.node, event.item, event.op)
        if step % 4 == 0:
            sim.run_round()
        if step % 7 == 0 and oob_requests:
            node_id, item, source_id = oob_requests.pop()
            node = sim.nodes[node_id]
            source = sim.nodes[source_id]
            assert isinstance(node, DBVVProtocolNode)
            node.fetch_out_of_bound(item, source, sim.network)

    sim.run_until_converged(max_rounds=100)
    assert sim.ground_truth.fully_current(sim.nodes)
    assert sim.total_conflicts() == 0
    for node in sim.nodes:
        assert isinstance(node, DBVVProtocolNode)
        node.check_invariants()
        # All auxiliary state has drained.
        assert len(node.node.aux_log) == 0
        assert all(not entry.has_auxiliary for entry in node.node.store)


def test_oob_never_regresses_user_visible_reads():
    """A user watching an item through OOB fetches sees values move
    only forward along the single-writer history."""
    n_nodes = 3
    sim = ClusterSimulation(make_factory("dbvv", n_nodes, ITEMS), n_nodes, ITEMS, seed=8)
    hot = ITEMS[0]
    writer = 0
    watcher = sim.nodes[2]
    assert isinstance(watcher, DBVVProtocolNode)
    seen = []
    for step in range(15):
        sim.apply_update(writer, hot, Append(f"{step};".encode()))
        if step % 2 == 0:
            watcher.fetch_out_of_bound(hot, sim.nodes[0], sim.network)
        if step % 3 == 0:
            sim.run_round()
        seen.append(watcher.read(hot))
    for earlier, later in zip(seen, seen[1:]):
        assert later.startswith(earlier)
