"""Soak test: everything at once, for a long time, invariants always.

One seeded scenario driver mixes every feature the library has —
single-writer updates, reads, scheduled anti-entropy, out-of-bound
fetches, node crashes and recoveries, a mid-run membership expansion —
over hundreds of steps, checking the cross-structure invariants as it
goes and requiring exact ground-truth convergence at the end.

This is the test that catches interaction bugs no focused unit test
will: an auxiliary log surviving a crash interleaved with a membership
change, a coverage edge recorded through a partition, and so on.
"""

import random

import pytest

from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.cluster.network import SimulatedNetwork
from repro.errors import MessageLostError, NodeDownError
from repro.experiments.common import make_items
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Append

ITEMS = make_items(25)
STEPS = 400


def run_soak(protocol_class, seed: int, allow_expand: bool) -> None:
    rng = random.Random(seed)
    n = 4
    network = SimulatedNetwork(n, counters=OverheadCounters())
    nodes = [protocol_class(k, n, ITEMS) for k in range(n)]
    truth = {name: b"" for name in ITEMS}
    counter = 0
    down: set[int] = set()
    expanded = False

    def owner(item_idx: int) -> int:
        # Ownership must be stable across membership changes — a moved
        # owner would be a second concurrent writer, not a soak of the
        # conflict-free path.  The newcomer only forwards.
        return item_idx % n

    for step in range(STEPS):
        roll = rng.random()
        if roll < 0.35:
            # A single-writer update at the item's owner (if up).
            item_idx = rng.randrange(len(ITEMS))
            node_id = owner(item_idx)
            if node_id not in down:
                counter += 1
                op = Append(f"{counter};".encode())
                nodes[node_id].user_update(ITEMS[item_idx], op)
                truth[ITEMS[item_idx]] = op.apply(truth[ITEMS[item_idx]])
        elif roll < 0.70:
            # Anti-entropy pull between random distinct nodes.
            dst = rng.randrange(len(nodes))
            src = rng.randrange(len(nodes))
            if dst != src and dst not in down:
                try:
                    nodes[dst].sync_with(nodes[src], network)
                except (NodeDownError, MessageLostError):
                    pass
        elif roll < 0.80:
            # Out-of-bound fetch of a random item.
            dst = rng.randrange(len(nodes))
            src = rng.randrange(len(nodes))
            if dst != src and dst not in down and src not in down:
                nodes[dst].fetch_out_of_bound(
                    ITEMS[rng.randrange(len(ITEMS))], nodes[src], network
                )
        elif roll < 0.88:
            # A user read (never crashes, value is some prefix of truth).
            node_id = rng.randrange(len(nodes))
            if node_id not in down:
                item = ITEMS[rng.randrange(len(ITEMS))]
                value = nodes[node_id].read(item)
                assert truth[item].startswith(value), (
                    f"step {step}: node {node_id} read a value that is "
                    f"not a prefix of the single-writer history for {item}"
                )
        elif roll < 0.94:
            # Crash or recover a random node (never all of them).
            node_id = rng.randrange(len(nodes))
            if node_id in down:
                down.discard(node_id)
                network.set_up(node_id)
            elif len(down) < len(nodes) - 2:
                down.add(node_id)
                network.set_down(node_id)
        elif allow_expand and not expanded and step > STEPS // 2:
            # One membership expansion, mid-run.
            expanded = True
            for node in nodes:
                node.expand_replica_set(len(nodes) + 1)
            new_id = network.add_node()
            nodes.append(protocol_class(new_id, len(nodes) + 1, ITEMS))

        if step % 50 == 49:
            for node_id, node in enumerate(nodes):
                if node_id not in down:
                    node.check_invariants()

    # Quiesce: recover everyone, run full-mesh rounds to convergence.
    for node_id in list(down):
        network.set_up(node_id)
    for _round in range(4 * len(nodes)):
        for dst in range(len(nodes)):
            for src in range(len(nodes)):
                if dst != src:
                    nodes[dst].sync_with(nodes[src], network)

    for node in nodes:
        node.check_invariants()
        assert node.conflict_count() == 0, "single-writer soak must be conflict-free"
        snapshot = node.state_fingerprint()
        for item, expected in truth.items():
            assert snapshot[item] == expected, (
                f"{type(node).__name__} node {node.node_id} diverged on {item}"
            )


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_soak_whole_value_mode(seed):
    run_soak(DBVVProtocolNode, seed, allow_expand=True)


@pytest.mark.parametrize("seed", [404, 505])
def test_soak_delta_mode(seed):
    run_soak(DeltaProtocolNode, seed, allow_expand=True)


def test_soak_without_membership_changes():
    run_soak(DBVVProtocolNode, 606, allow_expand=False)
