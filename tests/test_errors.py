"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConflictError,
    MessageLostError,
    NodeDownError,
    OperationError,
    ReplicaSetMismatchError,
    ReplicationError,
    SimulationError,
    TokenHeldError,
    UnknownItemError,
    UnknownNodeError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            UnknownItemError("x"),
            UnknownNodeError(3),
            ReplicaSetMismatchError("mismatch"),
            ConflictError("x"),
            TokenHeldError("x", 0, 1),
            NodeDownError(2),
            OperationError("bad"),
            SimulationError("bad"),
            MessageLostError(0, 1),
        ],
    )
    def test_everything_derives_from_replication_error(self, exc):
        assert isinstance(exc, ReplicationError)

    def test_unknown_item_is_a_key_error(self):
        """Callers using dict-style access can catch KeyError."""
        assert isinstance(UnknownItemError("x"), KeyError)

    def test_replica_set_mismatch_is_a_value_error(self):
        assert isinstance(ReplicaSetMismatchError("m"), ValueError)

    def test_operation_error_is_a_value_error(self):
        assert isinstance(OperationError("m"), ValueError)


class TestMessages:
    def test_unknown_item_names_the_item(self):
        assert "'doc-7'" in str(UnknownItemError("doc-7"))

    def test_conflict_error_carries_item_and_detail(self):
        err = ConflictError("x", "vectors (1,0) vs (0,1)")
        assert err.item == "x"
        assert "vectors" in str(err)

    def test_conflict_error_without_detail(self):
        assert "inconsistent" in str(ConflictError("x"))

    def test_token_held_error_identifies_parties(self):
        err = TokenHeldError("x", holder=2, requester=5)
        assert err.holder == 2
        assert err.requester == 5
        assert "held by node 2" in str(err)

    def test_node_down_and_message_lost_carry_endpoints(self):
        assert NodeDownError(3).node == 3
        lost = MessageLostError(1, 4)
        assert (lost.src, lost.dst) == (1, 4)
