"""Tests for protocol-state snapshots (crash/repair durability)."""

import pytest

from repro.core.delta import DeltaEpidemicNode
from repro.core.node import EpidemicNode
from repro.substrate.operations import (
    Append,
    BytePatch,
    CounterAdd,
    Put,
    Truncate,
)
from repro.substrate.persistence import (
    SnapshotError,
    decode_op,
    dump_node,
    encode_op,
    load_node,
    restore_node,
    save_node,
)

ITEMS = [f"item-{k}" for k in range(8)]


def equivalent(a: EpidemicNode, b: EpidemicNode) -> bool:
    """Full protocol-state equality between two nodes."""
    if (a.node_id, a.n_nodes) != (b.node_id, b.n_nodes):
        return False
    if a.dbvv != b.dbvv:
        return False
    for name in a.store.names():
        ea, eb = a.store[name], b.store[name]
        if (ea.value, ea.ivv, ea.in_conflict) != (eb.value, eb.ivv, eb.in_conflict):
            return False
        if (ea.aux_value, ea.aux_ivv) != (eb.aux_value, eb.aux_ivv):
            return False
    for origin in range(a.n_nodes):
        if a.log[origin].pairs() != b.log[origin].pairs():
            return False
    aux_a = [(r.item, r.pre_ivv.as_tuple(), r.op) for r in a.aux_log]
    aux_b = [(r.item, r.pre_ivv.as_tuple(), r.op) for r in b.aux_log]
    return aux_a == aux_b


def busy_node() -> EpidemicNode:
    """A node with every kind of state populated."""
    node = EpidemicNode(0, 3, ITEMS)
    peer = EpidemicNode(1, 3, ITEMS)
    node.update(ITEMS[0], Put(b"hello"))
    node.update(ITEMS[0], Append(b" world"))
    node.update(ITEMS[1], CounterAdd(5))
    peer.update(ITEMS[2], Put(b"peer-data"))
    node.pull_from(peer)
    # Out-of-bound state with a deferred update.
    peer.update(ITEMS[3], Put(b"hot"))
    node.copy_out_of_bound(ITEMS[3], peer)
    node.update(ITEMS[3], Append(b"+local"))
    return node


class TestOpCodec:
    @pytest.mark.parametrize(
        "op",
        [
            Put(b"value with \x00 bytes"),
            Put(b""),
            Append(b"tail"),
            BytePatch(17, b"patch"),
            Truncate(4),
            CounterAdd(-12),
        ],
    )
    def test_roundtrip(self, op):
        assert decode_op(encode_op(op)) == op

    def test_unknown_kind_rejected(self):
        with pytest.raises(SnapshotError):
            decode_op("teleport 123")

    def test_malformed_payload_rejected(self):
        with pytest.raises(SnapshotError):
            decode_op("put not-hex")

    def test_negative_patch_offset_rejected(self):
        # int() parses "-3" happily; replaying it would corrupt the
        # value instead of failing the load.
        with pytest.raises(SnapshotError, match="negative patch offset"):
            decode_op("patch -3 61616161")

    def test_negative_truncate_length_rejected(self):
        with pytest.raises(SnapshotError, match="negative truncate length"):
            decode_op("truncate -4")

    def test_zero_offset_and_length_still_accepted(self):
        assert decode_op("patch 0 61") == BytePatch(0, b"a")
        assert decode_op("truncate 0") == Truncate(0)


class TestSnapshotRoundtrip:
    def test_fresh_node(self):
        node = EpidemicNode(1, 2, ITEMS)
        assert equivalent(node, load_node(dump_node(node)))

    def test_busy_node(self):
        node = busy_node()
        restored = load_node(dump_node(node))
        assert equivalent(node, restored)
        restored.check_invariants()

    def test_restored_node_continues_the_protocol(self):
        """The acid test: a repaired node keeps replicating correctly —
        deferred out-of-bound updates still replay, logs still serve."""
        node = busy_node()
        peer = EpidemicNode(1, 3, ITEMS)
        restored = load_node(dump_node(node))
        peer.pull_from(restored)
        assert peer.read(ITEMS[0]) == b"hello world"
        # The deferred aux update survives the restart and replays.
        donor = EpidemicNode(2, 3, ITEMS)
        donor.pull_from(peer)
        _, intra = restored.pull_from(peer)
        assert restored.read(ITEMS[3]) == b"hot+local"
        restored.check_invariants()

    def test_conflict_flag_survives(self):
        a = EpidemicNode(0, 2, ITEMS)
        b = EpidemicNode(1, 2, ITEMS)
        a.update(ITEMS[0], Put(b"x"))
        b.update(ITEMS[0], Put(b"y"))
        a.pull_from(b)
        restored = load_node(dump_node(a))
        assert restored.store[ITEMS[0]].in_conflict

    def test_file_roundtrip(self, tmp_path):
        node = busy_node()
        path = tmp_path / "node.snapshot"
        save_node(node, path)
        assert equivalent(node, restore_node(path))

    def test_delta_node_restores_and_serves_full_copies(self):
        source = DeltaEpidemicNode(0, 2, ITEMS)
        source.update(ITEMS[0], Put(b"v"))
        restored = load_node(dump_node(source), node_class=DeltaEpidemicNode)
        # Histories are not persisted; the restored node must fall back
        # to whole-value payloads but still replicate correctly.
        recipient = DeltaEpidemicNode(1, 2, ITEMS)
        recipient.pull_from(restored)
        assert recipient.read(ITEMS[0]) == b"v"
        assert restored.full_copies_shipped == 1


class TestAtomicSave:
    def test_failed_replace_preserves_prior_snapshot(self, tmp_path, monkeypatch):
        """A write that dies before the atomic rename leaves the prior
        snapshot byte-for-byte intact (no torn half-written file)."""
        import repro.substrate.persistence as persistence

        path = tmp_path / "node.snapshot"
        old = EpidemicNode(0, 2, ITEMS)
        old.update(ITEMS[0], Put(b"committed"))
        save_node(old, path)
        newer = busy_node()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_node(newer, path)
        monkeypatch.undo()
        restored = restore_node(path)
        assert equivalent(old, restored)
        assert restored.read(ITEMS[0]) == b"committed"

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        import repro.substrate.persistence as persistence

        path = tmp_path / "node.snapshot"
        save_node(EpidemicNode(0, 2, ITEMS), path)
        monkeypatch.setattr(
            persistence.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            save_node(busy_node(), path)
        monkeypatch.undo()
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["node.snapshot"]

    def test_save_replaces_existing_snapshot(self, tmp_path):
        path = tmp_path / "node.snapshot"
        save_node(EpidemicNode(0, 2, ITEMS), path)
        newer = busy_node()
        save_node(newer, path)
        assert equivalent(newer, restore_node(path))


class TestAuxiliaryDumpValidation:
    def test_half_present_auxiliary_copy_rejected(self):
        """An aux IVV without an aux value is internal corruption; the
        dump must refuse (raising, not asserting — the check has to
        survive ``python -O``) instead of writing a torn snapshot."""
        node = busy_node()
        entry = node.store[ITEMS[3]]
        assert entry.has_auxiliary
        entry.aux_value = None
        with pytest.raises(SnapshotError, match="auxiliary"):
            dump_node(node)


class TestValidation:
    def test_not_a_snapshot(self):
        with pytest.raises(SnapshotError):
            load_node("hello world")

    def test_wrong_version(self):
        with pytest.raises(SnapshotError):
            load_node("epidemic-node-snapshot v99\nnode 0 1\ndbvv 0\n[end]\n")

    def test_garbage_line_rejected(self):
        node = EpidemicNode(0, 2, ITEMS)
        text = dump_node(node).replace("[log]", "[log]\nbogus line here")
        with pytest.raises(SnapshotError):
            load_node(text)

    def test_spacey_item_names_rejected(self):
        node = EpidemicNode(0, 1, ["bad name"])
        with pytest.raises(SnapshotError):
            dump_node(node)
