"""Unit tests for the journaled storage engine."""

import pytest

from repro.errors import JournalIntegrityError, UnknownItemError
from repro.substrate.storage import Storage


class TestBasicOperations:
    def test_create_read_write(self):
        store = Storage()
        store.create("x")
        assert store.read("x") == b""
        store.write("x", b"v1")
        assert store.read("x") == b"v1"

    def test_create_with_initial_value(self):
        store = Storage()
        store.create("x", b"seed")
        assert store.read("x") == b"seed"

    def test_duplicate_create_rejected(self):
        store = Storage()
        store.create("x")
        with pytest.raises(ValueError):
            store.create("x")

    def test_unknown_key_raises(self):
        store = Storage()
        with pytest.raises(UnknownItemError):
            store.read("x")
        with pytest.raises(UnknownItemError):
            store.write("x", b"v")
        with pytest.raises(UnknownItemError):
            store.write_count("x")

    def test_contains_and_len(self):
        store = Storage()
        store.create("x")
        store.create("y")
        assert "x" in store
        assert "nope" not in store
        assert len(store) == 2
        assert sorted(store.keys()) == ["x", "y"]


class TestWriteCounts:
    def test_write_count_increments(self):
        store = Storage()
        store.create("x")
        assert store.write_count("x") == 0
        assert store.write("x", b"a") == 1
        assert store.write("x", b"b") == 2

    def test_counts_are_per_key(self):
        store = Storage()
        store.create("x")
        store.create("y")
        store.write("x", b"a")
        assert store.write_count("y") == 0


class TestJournal:
    def test_journal_records_every_write_in_order(self):
        store = Storage()
        store.create("x")
        store.create("y")
        store.write("x", b"1")
        store.write("y", b"2")
        store.write("x", b"3")
        journal = store.journal()
        assert [(r.key, r.value) for r in journal] == [
            ("x", b"1"), ("y", b"2"), ("x", b"3"),
        ]
        assert [r.seq for r in journal] == [1, 2, 3]
        assert store.last_seq == 3

    def test_journal_since_filters_by_seq(self):
        store = Storage()
        store.create("x")
        store.write("x", b"1")
        store.write("x", b"2")
        assert [r.value for r in store.journal_since(1)] == [b"2"]

    def test_recover_rebuilds_state_from_journal(self):
        store = Storage()
        for key in ("x", "y"):
            store.create(key)
        store.write("x", b"1")
        store.write("y", b"2")
        store.write("x", b"3")
        rebuilt = Storage.recover(["x", "y"], store.journal())
        assert rebuilt.read("x") == b"3"
        assert rebuilt.read("y") == b"2"

    def test_recover_sorts_out_of_order_journal(self):
        store = Storage()
        store.create("x")
        store.write("x", b"1")
        store.write("x", b"2")
        shuffled = list(reversed(store.journal()))
        rebuilt = Storage.recover(["x"], shuffled)
        assert rebuilt.read("x") == b"2"

    def test_recover_empty_journal(self):
        rebuilt = Storage.recover(["x"], [])
        assert rebuilt.read("x") == b""


class TestJournalIntegrity:
    """Recovery validates seq contiguity: replay renumbers records, so a
    lost or doubled journal record would otherwise be masked silently."""

    def _journal(self, writes=4):
        store = Storage()
        store.create("x")
        for k in range(writes):
            store.write("x", str(k).encode())
        return store.journal()

    def test_duplicate_sequence_number_rejected(self):
        journal = self._journal()
        journal[1] = journal[0]
        with pytest.raises(JournalIntegrityError, match="duplicate"):
            Storage.recover(["x"], journal)

    def test_gap_in_sequence_numbers_rejected(self):
        journal = self._journal()
        del journal[1]
        with pytest.raises(JournalIntegrityError, match="gap"):
            Storage.recover(["x"], journal)

    def test_journal_not_starting_at_one_rejected(self):
        journal = self._journal()[1:]
        with pytest.raises(JournalIntegrityError):
            Storage.recover(["x"], journal)

    def test_out_of_order_but_contiguous_still_recovers(self):
        # Sorting is recovery's job; only true gaps/duplicates reject.
        journal = list(reversed(self._journal()))
        rebuilt = Storage.recover(["x"], journal)
        assert rebuilt.read("x") == b"3"

    def test_journal_since_matches_linear_scan(self):
        store = Storage()
        store.create("x")
        for k in range(10):
            store.write("x", str(k).encode())
        journal = store.journal()
        for seq in range(0, store.last_seq + 2):
            expected = [r for r in journal if r.seq > seq]
            assert store.journal_since(seq) == expected
