"""Tests for client session guarantees (paper section 8.3 review)."""

import pytest

from repro.core.node import EpidemicNode
from repro.substrate.operations import Append, Put
from repro.substrate.sessions import (
    ClientSession,
    Guarantee,
    GuaranteeViolation,
    SessionPolicy,
)

ITEMS = ["x", "y"]


def make_servers(n=3):
    return [EpidemicNode(k, n, ITEMS) for k in range(n)]


class TestReadYourWrites:
    def test_violation_detected_on_stale_server(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.READ_YOUR_WRITES)
        session.write(a, "x", Put(b"mine"))
        with pytest.raises(GuaranteeViolation):
            session.read(b, "x")

    def test_satisfied_after_propagation(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.READ_YOUR_WRITES)
        session.write(a, "x", Put(b"mine"))
        b.pull_from(a)
        assert session.read(b, "x") == b"mine"

    def test_fetch_policy_repairs_via_out_of_bound(self):
        a, b, _ = make_servers()
        session = ClientSession(
            guarantees=Guarantee.READ_YOUR_WRITES, policy=SessionPolicy.FETCH
        )
        session.write(a, "x", Put(b"mine"))
        assert session.read(b, "x") == b"mine"
        assert session.fetches_triggered == 1
        assert b.store["x"].has_auxiliary  # out-of-bound copy installed

    def test_same_server_never_violates(self):
        a, *_ = make_servers()
        session = ClientSession(guarantees=Guarantee.READ_YOUR_WRITES)
        session.write(a, "x", Put(b"v1"))
        session.write(a, "x", Append(b"2"))
        assert session.read(a, "x") == b"v12"


class TestMonotonicReads:
    def test_read_cannot_go_back_in_time(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.MONOTONIC_READS)
        a.update("x", Put(b"new"))
        session.read(a, "x")
        # b is behind; reading there would travel backwards.
        with pytest.raises(GuaranteeViolation):
            session.read(b, "x")

    def test_equal_state_is_fine(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.MONOTONIC_READS)
        a.update("x", Put(b"new"))
        b.pull_from(a)
        session.read(a, "x")
        assert session.read(b, "x") == b"new"

    def test_guarantees_are_per_item(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.MONOTONIC_READS)
        a.update("x", Put(b"new"))
        session.read(a, "x")
        # y was never read; b can serve it despite being behind on x.
        assert session.read(b, "y") == b""


class TestMonotonicWrites:
    def test_write_on_stale_server_rejected(self):
        """Without the guarantee, the session's own two writes would be
        concurrent — a self-inflicted conflict."""
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.MONOTONIC_WRITES)
        session.write(a, "x", Put(b"first"))
        with pytest.raises(GuaranteeViolation):
            session.write(b, "x", Put(b"second"))

    def test_fetch_policy_makes_hopping_writes_safe(self):
        """The FETCH repair showcases out-of-bound copying: the write
        lands on b's fetched auxiliary copy, on top of the session's
        first write — no conflict anywhere, and everything converges."""
        a, b, c = make_servers()
        session = ClientSession(
            guarantees=Guarantee.MONOTONIC_WRITES, policy=SessionPolicy.FETCH
        )
        session.write(a, "x", Put(b"first;"))
        session.write(b, "x", Append(b"second;"))
        assert b.read("x") == b"first;second;"
        # Converge the cluster; both writes survive in order.
        for _round in range(4):
            for dst in (a, b, c):
                for src in (a, b, c):
                    if dst is not src:
                        dst.pull_from(src)
        assert a.read("x") == b"first;second;"
        assert a.conflicts.count == 0
        assert b.conflicts.count == 0
        for node in (a, b, c):
            node.check_invariants()

    def test_without_guarantee_hopping_writes_conflict(self):
        """The control: no session guarantees, same write pattern ⇒ the
        protocol correctly reports a conflict.  (This is what session
        guarantees exist to prevent.)"""
        a, b, _ = make_servers()
        a.update("x", Put(b"first;"))
        b.update("x", Put(b"second;"))
        outcome, _ = a.pull_from(b)
        assert outcome.conflicted == ["x"]


class TestWritesFollowReads:
    def test_write_after_read_requires_read_state(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.WRITES_FOLLOW_READS)
        a.update("x", Put(b"context"))
        session.read(a, "x")
        with pytest.raises(GuaranteeViolation):
            session.write(b, "x", Append(b"reply"))

    def test_write_lands_after_propagation(self):
        a, b, _ = make_servers()
        session = ClientSession(guarantees=Guarantee.WRITES_FOLLOW_READS)
        a.update("x", Put(b"context;"))
        session.read(a, "x")
        b.pull_from(a)
        session.write(b, "x", Append(b"reply;"))
        assert b.read("x") == b"context;reply;"


class TestCombinedGuarantees:
    def test_all_guarantees_roam_with_fetch(self):
        """A mobile client hops across all three servers doing
        read-modify-write cycles; with all guarantees + FETCH its
        history is linear and conflict-free."""
        servers = make_servers()
        session = ClientSession(policy=SessionPolicy.FETCH)
        for hop in range(6):
            server = servers[hop % 3]
            current = session.read(server, "x")
            session.write(server, "x", Put(current + f"{hop};".encode()))
        final = session.read(servers[0], "x")
        assert final == b"0;1;2;3;4;5;"
        assert all(server.conflicts.count == 0 for server in servers)

    def test_flag_algebra(self):
        combo = Guarantee.READ_YOUR_WRITES | Guarantee.MONOTONIC_READS
        assert Guarantee.READ_YOUR_WRITES in combo
        assert Guarantee.MONOTONIC_WRITES not in combo
        assert Guarantee.all() == (
            Guarantee.READ_YOUR_WRITES
            | Guarantee.MONOTONIC_READS
            | Guarantee.MONOTONIC_WRITES
            | Guarantee.WRITES_FOLLOW_READS
        )
