"""Unit tests for re-doable update operations."""

import pytest

from repro.errors import OperationError
from repro.substrate.operations import Append, BytePatch, CounterAdd, Put, Truncate


class TestPut:
    def test_replaces_whole_value(self):
        assert Put(b"new").apply(b"old-value") == b"new"

    def test_size_is_value_length(self):
        assert Put(b"abcd").size() == 4


class TestAppend:
    def test_appends(self):
        assert Append(b"def").apply(b"abc") == b"abcdef"

    def test_append_to_empty(self):
        assert Append(b"x").apply(b"") == b"x"


class TestBytePatch:
    def test_overwrites_range(self):
        assert BytePatch(1, b"XY").apply(b"abcd") == b"aXYd"

    def test_patch_at_end_extends(self):
        assert BytePatch(3, b"XY").apply(b"abc") == b"abcXY"

    def test_patch_overlapping_end_extends(self):
        assert BytePatch(2, b"XYZ").apply(b"abc") == b"abXYZ"

    def test_patch_beyond_end_rejected(self):
        with pytest.raises(OperationError):
            BytePatch(5, b"X").apply(b"abc")

    def test_negative_offset_rejected(self):
        with pytest.raises(OperationError):
            BytePatch(-1, b"X").apply(b"abc")

    def test_size_includes_offset_word(self):
        assert BytePatch(0, b"abc").size() == 8 + 3


class TestTruncate:
    def test_truncates(self):
        assert Truncate(2).apply(b"abcd") == b"ab"

    def test_truncate_to_zero(self):
        assert Truncate(0).apply(b"abcd") == b""

    def test_truncate_beyond_end_rejected(self):
        with pytest.raises(OperationError):
            Truncate(5).apply(b"abc")

    def test_negative_length_rejected(self):
        with pytest.raises(OperationError):
            Truncate(-1).apply(b"abc")


class TestCounterAdd:
    def test_empty_value_counts_as_zero(self):
        assert CounterAdd.read(CounterAdd(7).apply(b"")) == 7

    def test_accumulates(self):
        value = CounterAdd(5).apply(b"")
        value = CounterAdd(-2).apply(value)
        assert CounterAdd.read(value) == 3

    def test_negative_totals_roundtrip(self):
        value = CounterAdd(-10).apply(b"")
        assert CounterAdd.read(value) == -10

    def test_malformed_value_rejected(self):
        with pytest.raises(OperationError):
            CounterAdd(1).apply(b"not8bytes")

    def test_read_empty(self):
        assert CounterAdd.read(b"") == 0


class TestDeterminism:
    def test_same_ops_same_result(self):
        """Two replicas applying the same op sequence agree — the
        foundation of replay-based convergence."""
        ops = [Put(b"base"), Append(b"-x"), BytePatch(0, b"B"), Truncate(5)]
        a = b = b""
        for op in ops:
            a = op.apply(a)
        for op in ops:
            b = op.apply(b)
        assert a == b == b"Base-"

    def test_operations_are_hashable_values(self):
        assert Put(b"v") == Put(b"v")
        assert len({Append(b"a"), Append(b"a"), Append(b"b")}) == 2
