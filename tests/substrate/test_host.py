"""Tests for multi-database hosting (paper section 2)."""

import pytest

from repro.core.protocol import DBVVProtocolNode
from repro.errors import NodeDownError
from repro.substrate.database import DatabaseSchema
from repro.substrate.host import Host
from repro.substrate.operations import Put

CRM = DatabaseSchema("crm", ("customer-1", "customer-2"), 2)
WIKI = DatabaseSchema("wiki", ("page-1", "page-2", "page-3"), 2)


def dbvv_factory(schema):
    return lambda node_id: DBVVProtocolNode(node_id, schema.n_nodes, schema.items)


def make_hosts():
    hosts = [Host(0), Host(1)]
    for host in hosts:
        host.add_database(CRM, dbvv_factory(CRM))
        host.add_database(WIKI, dbvv_factory(WIKI))
    return hosts


class TestHosting:
    def test_databases_listed(self):
        host, _ = make_hosts()
        assert host.databases() == ["crm", "wiki"]

    def test_replica_lookup(self):
        host, _ = make_hosts()
        assert host.replica("crm").schema is CRM
        with pytest.raises(KeyError):
            host.replica("nope")

    def test_host_outside_replica_set_rejected(self):
        outsider = Host(7)
        with pytest.raises(ValueError):
            outsider.add_database(CRM, dbvv_factory(CRM))

    def test_duplicate_database_rejected(self):
        host, _ = make_hosts()
        with pytest.raises(ValueError):
            host.add_database(CRM, dbvv_factory(CRM))


class TestIndependentProtocolInstances:
    def test_sync_all_moves_each_database_separately(self):
        a, b = make_hosts()
        a.replica("crm").update("customer-1", Put(b"alice"))
        a.replica("wiki").update("page-2", Put(b"hello"))
        results = b.sync_all_from(a)
        assert set(results) == {"crm", "wiki"}
        assert results["crm"].items_transferred == 1
        assert results["wiki"].items_transferred == 1
        assert b.replica("crm").read("customer-1") == b"alice"
        assert b.replica("wiki").read("page-2") == b"hello"

    def test_unshared_databases_are_skipped(self):
        a, b = make_hosts()
        private = DatabaseSchema("private", ("x",), 1)
        a.add_database(private, dbvv_factory(private))
        results = b.sync_all_from(a)
        assert "private" not in results

    def test_one_database_conflict_does_not_affect_the_other(self):
        a, b = make_hosts()
        a.replica("crm").update("customer-1", Put(b"from-a"))
        b.replica("crm").update("customer-1", Put(b"from-b"))
        a.replica("wiki").update("page-1", Put(b"clean"))
        results = b.sync_all_from(a)
        assert results["crm"].conflicts == 1
        assert results["wiki"].conflicts == 0
        assert b.replica("wiki").read("page-1") == b"clean"


class TestMachineFailures:
    def test_crash_takes_all_replicas_down(self):
        a, b = make_hosts()
        a.crash()
        assert not a.is_up
        with pytest.raises(NodeDownError):
            a.replica("crm")
        with pytest.raises(NodeDownError):
            b.sync_all_from(a)

    def test_recovery_restores_all_replicas(self):
        a, b = make_hosts()
        a.replica("crm").update("customer-1", Put(b"v"))
        a.crash()
        a.recover()
        assert a.replica("crm").read("customer-1") == b"v"
        assert a.replica("crm").verify_durability()
        b.sync_all_from(a)
        assert b.replica("crm").read("customer-1") == b"v"
