"""Unit tests for the user-facing server layer."""

import pytest

from repro.core.protocol import DBVVProtocolNode
from repro.errors import NodeDownError, TokenHeldError, UnknownItemError
from repro.substrate.database import DatabaseSchema
from repro.substrate.operations import Append, Put
from repro.substrate.server import build_cluster
from repro.substrate.tokens import TokenManager

SCHEMA = DatabaseSchema("db", ("x", "y"), 2)


def make_servers(tokens=None):
    return build_cluster(
        SCHEMA,
        lambda node_id: DBVVProtocolNode(node_id, SCHEMA.n_nodes, SCHEMA.items),
        tokens=tokens,
    )


class TestUserAPI:
    def test_update_then_read(self):
        server, _ = make_servers()
        server.update("x", Put(b"v"))
        assert server.read("x") == b"v"
        assert server.updates_applied == 1

    def test_read_unknown_item(self):
        server, _ = make_servers()
        with pytest.raises(UnknownItemError):
            server.read("nope")

    def test_updates_are_journaled(self):
        server, _ = make_servers()
        server.update("x", Put(b"v1"))
        server.update("x", Append(b"2"))
        assert [r.value for r in server.storage.journal()] == [b"v1", b"v12"]
        assert server.verify_durability()


class TestReplication:
    def test_sync_from_moves_updates_and_writes_back(self):
        a, b = make_servers()
        a.update("x", Put(b"v"))
        stats = b.sync_from(a)
        assert stats.items_transferred == 1
        assert b.read("x") == b"v"
        # Adopted values reach durable storage too.
        assert b.storage.read("x") == b"v"
        assert b.verify_durability()

    def test_sync_counts_sessions(self):
        a, b = make_servers()
        b.sync_from(a)
        assert b.syncs_performed == 1

    def test_state_fingerprints_converge(self):
        a, b = make_servers()
        a.update("x", Put(b"1"))
        b.update("y", Put(b"2"))
        a.sync_from(b)
        b.sync_from(a)
        assert a.state_fingerprint() == b.state_fingerprint()


class TestAvailability:
    def test_operations_on_crashed_server_raise(self):
        server, _ = make_servers()
        server.crash()
        assert not server.is_up
        with pytest.raises(NodeDownError):
            server.read("x")
        with pytest.raises(NodeDownError):
            server.update("x", Put(b"v"))

    def test_sync_with_crashed_peer_raises(self):
        a, b = make_servers()
        a.crash()
        with pytest.raises(NodeDownError):
            b.sync_from(a)

    def test_recovery_restores_service_and_state(self):
        server, _ = make_servers()
        server.update("x", Put(b"v"))
        server.crash()
        server.recover()
        assert server.read("x") == b"v"
        assert server.verify_durability()


class TestPessimisticMode:
    def test_update_without_token_rejected(self):
        tokens = TokenManager(items=SCHEMA.items)
        a, _b = make_servers(tokens)
        with pytest.raises(TokenHeldError):
            a.update("x", Put(b"v"))

    def test_update_with_token_succeeds(self):
        tokens = TokenManager(items=SCHEMA.items)
        a, b = make_servers(tokens)
        a.acquire_token("x")
        a.update("x", Put(b"v"))
        with pytest.raises(TokenHeldError):
            b.update("x", Put(b"other"))
        a.release_token("x")
        b.acquire_token("x")
        b.sync_from(a)
        b.update("x", Append(b"2"))
        assert b.read("x") == b"v2"

    def test_token_serialized_updates_never_conflict(self):
        """With tokens in force and propagation before each ownership
        change, histories are linear — zero conflicts (paper section 2's
        strict-consistency option)."""
        tokens = TokenManager(items=SCHEMA.items)
        a, b = make_servers(tokens)
        for round_no in range(6):
            writer, other = (a, b) if round_no % 2 == 0 else (b, a)
            writer.acquire_token("x")
            writer.update("x", Append(f"{round_no};".encode()))
            other.sync_from(writer)
            writer.release_token("x")
        assert a.protocol.conflict_count() == 0
        assert b.protocol.conflict_count() == 0
        assert b.read("x") == a.read("x")

    def test_token_api_unavailable_in_optimistic_mode(self):
        a, _b = make_servers()
        with pytest.raises(RuntimeError):
            a.acquire_token("x")
        with pytest.raises(RuntimeError):
            a.release_token("x")
