"""Property-based tests: snapshots round-trip arbitrary protocol state.

The interpreter executes random programs over a small cluster (like
the core node property tests), then every node is dumped and reloaded
and must be byte-identical in protocol state — and the restored node
must behave identically in a subsequent propagation exchange.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import EpidemicNode
from repro.substrate.operations import Append
from repro.substrate.persistence import dump_node, load_node

N_NODES = 3
ITEMS = [f"item-{k}" for k in range(4)]

update_ops = st.tuples(
    st.just("update"),
    st.integers(min_value=0, max_value=len(ITEMS) - 1),
)
pull_ops = st.tuples(
    st.just("pull"),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
)
oob_ops = st.tuples(
    st.just("oob"),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=len(ITEMS) - 1),
)
programs = st.lists(st.one_of(update_ops, pull_ops, oob_ops), max_size=30)


def execute(program):
    nodes = [EpidemicNode(k, N_NODES, ITEMS) for k in range(N_NODES)]
    counter = 0
    for step in program:
        if step[0] == "update":
            _tag, item_idx = step
            counter += 1
            nodes[item_idx % N_NODES].update(
                ITEMS[item_idx], Append(f"{counter};".encode())
            )
        elif step[0] == "pull":
            _tag, dst, src = step
            if dst != src:
                nodes[dst].pull_from(nodes[src])
        else:
            _tag, dst, src, item_idx = step
            if dst != src:
                nodes[dst].copy_out_of_bound(ITEMS[item_idx], nodes[src])
    return nodes


@settings(max_examples=50, deadline=None)
@given(programs)
def test_snapshot_roundtrips_any_state(program):
    for node in execute(program):
        restored = load_node(dump_node(node))
        assert dump_node(restored) == dump_node(node)
        restored.check_invariants()


@settings(max_examples=30, deadline=None)
@given(programs)
def test_restored_cluster_behaves_identically(program):
    """Restore every node, run the same deterministic propagation
    schedule on both clusters, and compare final states."""
    original = execute(program)
    restored = [load_node(dump_node(node)) for node in original]
    for _round in range(N_NODES + 1):
        for dst in range(N_NODES):
            for src in range(N_NODES):
                if dst != src:
                    original[dst].pull_from(original[src])
                    restored[dst].pull_from(restored[src])
    for node_a, node_b in zip(original, restored):
        assert node_a.state_fingerprint() == node_b.state_fingerprint()
        assert node_a.dbvv == node_b.dbvv
