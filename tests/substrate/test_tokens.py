"""Unit tests for the token manager (pessimistic mode, paper section 2)."""

import pytest

from repro.errors import TokenHeldError, UnknownItemError
from repro.substrate.tokens import TokenManager


def make_manager():
    return TokenManager(items=("x", "y"))


class TestAcquireRelease:
    def test_first_acquire_succeeds(self):
        tokens = make_manager()
        grant = tokens.acquire("x", 0)
        assert grant.holder == 0
        assert tokens.holder_of("x") == 0

    def test_acquire_held_token_raises(self):
        tokens = make_manager()
        tokens.acquire("x", 0)
        with pytest.raises(TokenHeldError):
            tokens.acquire("x", 1)

    def test_reacquire_by_holder_is_noop(self):
        tokens = make_manager()
        first = tokens.acquire("x", 0)
        second = tokens.acquire("x", 0)
        assert second.generation == first.generation

    def test_release_frees_token(self):
        tokens = make_manager()
        tokens.acquire("x", 0)
        tokens.release("x", 0)
        assert tokens.holder_of("x") is None
        tokens.acquire("x", 1)

    def test_release_by_non_holder_raises(self):
        tokens = make_manager()
        tokens.acquire("x", 0)
        with pytest.raises(TokenHeldError):
            tokens.release("x", 1)

    def test_tokens_are_per_item(self):
        tokens = make_manager()
        tokens.acquire("x", 0)
        tokens.acquire("y", 1)
        assert tokens.holder_of("x") == 0
        assert tokens.holder_of("y") == 1

    def test_unknown_item_raises(self):
        with pytest.raises(UnknownItemError):
            make_manager().acquire("nope", 0)


class TestTransfer:
    def test_transfer_moves_token(self):
        tokens = make_manager()
        tokens.acquire("x", 0)
        grant = tokens.transfer("x", 0, 1)
        assert grant.holder == 1
        assert tokens.holder_of("x") == 1

    def test_generation_increases_per_transfer(self):
        tokens = make_manager()
        g1 = tokens.acquire("x", 0)
        g2 = tokens.transfer("x", 0, 1)
        assert g2.generation > g1.generation
        assert tokens.transfers == 2


class TestUpdateGate:
    def test_update_requires_holding(self):
        tokens = make_manager()
        with pytest.raises(TokenHeldError):
            tokens.check_update_allowed("x", 0)
        tokens.acquire("x", 0)
        tokens.check_update_allowed("x", 0)
        with pytest.raises(TokenHeldError):
            tokens.check_update_allowed("x", 1)
