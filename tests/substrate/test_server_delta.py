"""The server layer over the operation-shipping protocol.

The ReplicaServer is protocol-agnostic; these tests pin that the delta
mode composes with the durable storage write-back, journals, tokens,
and the transaction layer exactly like the whole-value mode does.
"""

import pytest

from repro.core.protocol import DeltaProtocolNode
from repro.substrate.database import DatabaseSchema
from repro.substrate.operations import Append, BytePatch, Put
from repro.substrate.server import build_cluster
from repro.substrate.tokens import TokenManager
from repro.substrate.transactions import TransactionManager

SCHEMA = DatabaseSchema("db", ("x", "y"), 2)


def make_servers(tokens=None):
    return build_cluster(
        SCHEMA,
        lambda node_id: DeltaProtocolNode(node_id, SCHEMA.n_nodes, SCHEMA.items),
        tokens=tokens,
    )


class TestDeltaServers:
    def test_sync_writes_back_chained_values(self):
        a, b = make_servers()
        a.update("x", Put(b"base"))
        b.sync_from(a)
        a.update("x", Append(b"+patch"))
        stats = b.sync_from(a)
        assert stats.items_transferred == 1
        assert b.read("x") == b"base+patch"
        assert b.storage.read("x") == b"base+patch"
        assert b.verify_durability()

    def test_patch_heavy_workload_journals_correctly(self):
        a, b = make_servers()
        a.update("x", Put(b"0" * 256))
        b.sync_from(a)
        for k in range(8):
            a.update("x", BytePatch(k * 16, b"PATCHED!"))
            b.sync_from(a)
        assert b.read("x") == a.read("x")
        assert b.verify_durability()
        # Journal recorded every adopted state change.
        assert b.storage.write_count("x") == 9

    def test_tokens_compose_with_delta_mode(self):
        tokens = TokenManager(items=SCHEMA.items)
        a, b = make_servers(tokens)
        a.acquire_token("x")
        a.update("x", Put(b"v"))
        b.sync_from(a)
        a.release_token("x")
        b.acquire_token("x")
        b.update("x", Append(b"2"))
        a.sync_from(b)
        assert a.read("x") == b"v2"
        assert a.protocol.conflict_count() == 0

    def test_transactions_compose_with_delta_mode(self):
        a, b = make_servers()
        manager = TransactionManager(a)

        def body(txn):
            txn.write("x", Put(b"tx"))
            txn.write("y", Append(b"-y"))

        manager.run(body)
        b.sync_from(a)
        assert b.read("x") == b"tx"
        assert b.read("y") == b"-y"

    def test_crash_recover_sync_cycle(self):
        a, b = make_servers()
        a.update("x", Put(b"v1"))
        b.sync_from(a)
        b.crash()
        a.update("x", Append(b"+2"))
        with pytest.raises(Exception):
            b.sync_from(a)
        b.recover()
        b.sync_from(a)
        assert b.read("x") == b"v1+2"
