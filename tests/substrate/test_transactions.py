"""Tests for single-server strict-2PL transactions (paper section 2)."""

import pytest

from repro.core.protocol import DBVVProtocolNode
from repro.substrate.database import DatabaseSchema
from repro.substrate.operations import Append, Put
from repro.substrate.server import ReplicaServer
from repro.substrate.transactions import (
    LockConflictError,
    LockManager,
    LockMode,
    TransactionError,
    TransactionManager,
)

SCHEMA = DatabaseSchema("db", ("x", "y", "z"), 2)


def make_server(node_id=0):
    return ReplicaServer(
        SCHEMA, DBVVProtocolNode(node_id, SCHEMA.n_nodes, SCHEMA.items)
    )


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(2, "x", LockMode.SHARED)
        assert locks.mode_held(1, "x") is LockMode.SHARED

    def test_exclusive_excludes_everyone(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, "x", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(2, "x", LockMode.EXCLUSIVE)

    def test_shared_blocks_foreign_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        with pytest.raises(LockConflictError) as exc:
            locks.acquire(2, "x", LockMode.EXCLUSIVE)
        assert exc.value.holders == {1}

    def test_sole_holder_upgrades(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        assert locks.mode_held(1, "x") is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_readers(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(2, "x", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(1, "x", LockMode.EXCLUSIVE)

    def test_release_all_frees_both_kinds(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        locks.acquire(1, "y", LockMode.SHARED)
        locks.release_all(1)
        locks.acquire(2, "x", LockMode.EXCLUSIVE)
        locks.acquire(2, "y", LockMode.EXCLUSIVE)

    def test_reacquisition_is_idempotent(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        locks.acquire(1, "x", LockMode.SHARED)  # X subsumes S
        assert locks.mode_held(1, "x") is LockMode.EXCLUSIVE


class TestTransaction:
    def test_commit_applies_buffered_writes(self):
        manager = TransactionManager(make_server())
        txn = manager.begin()
        txn.write("x", Put(b"v1"))
        txn.write("x", Append(b"2"))
        assert manager.server.read("x") == b""  # not yet visible
        txn.commit()
        assert manager.server.read("x") == b"v12"

    def test_abort_discards_writes(self):
        manager = TransactionManager(make_server())
        txn = manager.begin()
        txn.write("x", Put(b"never"))
        txn.abort()
        assert manager.server.read("x") == b""

    def test_transaction_reads_its_own_writes(self):
        manager = TransactionManager(make_server())
        txn = manager.begin()
        txn.write("x", Put(b"mine"))
        assert txn.read("x") == b"mine"
        txn.abort()

    def test_writers_block_readers_until_commit(self):
        manager = TransactionManager(make_server())
        writer = manager.begin()
        writer.write("x", Put(b"v"))
        reader = manager.begin()
        with pytest.raises(LockConflictError):
            reader.read("x")
        writer.commit()
        assert reader.read("x") == b"v"

    def test_readers_block_writers(self):
        manager = TransactionManager(make_server())
        reader = manager.begin()
        reader.read("x")
        writer = manager.begin()
        with pytest.raises(LockConflictError):
            writer.write("x", Put(b"v"))

    def test_strict_2pl_holds_locks_to_commit(self):
        manager = TransactionManager(make_server())
        txn = manager.begin()
        txn.write("x", Put(b"v"))
        txn.read("y")
        other = manager.begin()
        with pytest.raises(LockConflictError):
            other.write("y", Put(b"w"))
        txn.commit()
        other.write("y", Put(b"w"))
        other.commit()

    def test_finished_transactions_reject_use(self):
        manager = TransactionManager(make_server())
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.read("x")
        with pytest.raises(TransactionError):
            txn.commit()

    def test_non_conflicting_transactions_interleave(self):
        manager = TransactionManager(make_server())
        t1, t2 = manager.begin(), manager.begin()
        t1.write("x", Put(b"one"))
        t2.write("y", Put(b"two"))
        t2.commit()
        t1.commit()
        assert manager.server.read("x") == b"one"
        assert manager.server.read("y") == b"two"


class TestRunHelper:
    def test_commit_on_return(self):
        manager = TransactionManager(make_server())

        def body(txn):
            txn.write("x", Put(b"v"))
            return "done"

        assert manager.run(body) == "done"
        assert manager.committed == 1
        assert manager.server.read("x") == b"v"

    def test_abort_on_exception(self):
        manager = TransactionManager(make_server())

        def body(txn):
            txn.write("x", Put(b"v"))
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            manager.run(body)
        assert manager.aborted == 1
        assert manager.server.read("x") == b""


class TestTransactionsMeetReplication:
    def test_committed_writes_replicate_normally(self):
        """The paper's split: 2PL locally, optimism across replicas —
        a committed transaction's updates propagate like user updates."""
        server_a = make_server(0)
        server_b = make_server(1)
        manager = TransactionManager(server_a)

        def body(txn):
            txn.write("x", Put(b"tx-value"))
            txn.write("y", Put(b"tx-other"))

        manager.run(body)
        stats = server_b.sync_from(server_a)
        assert stats.items_transferred == 2
        assert server_b.read("x") == b"tx-value"

    def test_aborted_transactions_leave_no_replication_trace(self):
        server_a = make_server(0)
        server_b = make_server(1)
        manager = TransactionManager(server_a)
        txn = manager.begin()
        txn.write("x", Put(b"ghost"))
        txn.abort()
        stats = server_b.sync_from(server_a)
        assert stats.identical
