"""Unit tests for simulated clocks."""

import pytest

from repro.errors import SimulationError
from repro.substrate.clock import ManualClock, SimClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock().now() == 0.0
        assert SimClock(start=5.0).now() == 5.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_backwards_rejected(self):
        clock = SimClock(start=2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(1.5)
        clock.advance_by(0.0)
        assert clock.now() == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1.0)


class TestManualClock:
    def test_tick_advances_in_unit_steps(self):
        clock = ManualClock()
        assert clock.tick() == 1.0
        assert clock.tick(3) == 4.0

    def test_negative_tick_rejected(self):
        with pytest.raises(SimulationError):
            ManualClock().tick(-1)
