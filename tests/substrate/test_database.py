"""Unit tests for database schemas and the catalog."""

import pytest

from repro.substrate.database import DatabaseCatalog, DatabaseSchema, ReplicaId


class TestSchema:
    def test_basic_schema(self):
        schema = DatabaseSchema("db", ("x", "y"), 3)
        assert schema.n_items == 2
        assert schema.n_nodes == 3

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema("db", ("x", "x"), 2)

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema("db", ("x",), 0)

    def test_generated_items_are_zero_padded_and_unique(self):
        schema = DatabaseSchema.with_generated_items("db", 100, 2)
        assert schema.n_items == 100
        assert schema.items[0] == "item-00000"
        assert len(set(schema.items)) == 100
        assert sorted(schema.items) == list(schema.items)

    def test_replica_identity(self):
        schema = DatabaseSchema("db", ("x",), 2)
        replica = schema.replica(1)
        assert replica == ReplicaId("db", 1)
        assert str(replica) == "db@1"

    def test_replica_outside_set_rejected(self):
        schema = DatabaseSchema("db", ("x",), 2)
        with pytest.raises(ValueError):
            schema.replica(2)

    def test_schema_is_immutable(self):
        schema = DatabaseSchema("db", ("x",), 2)
        with pytest.raises(AttributeError):
            schema.name = "other"  # type: ignore[misc]


class TestCatalog:
    def test_add_and_get(self):
        catalog = DatabaseCatalog()
        schema = DatabaseSchema("db", ("x",), 2)
        catalog.add(schema)
        assert catalog.get("db") is schema
        assert "db" in catalog
        assert catalog.names() == ["db"]

    def test_duplicate_database_rejected(self):
        catalog = DatabaseCatalog()
        catalog.add(DatabaseSchema("db", ("x",), 2))
        with pytest.raises(ValueError):
            catalog.add(DatabaseSchema("db", ("y",), 2))

    def test_unknown_database_raises(self):
        with pytest.raises(KeyError):
            DatabaseCatalog().get("nope")

    def test_multiple_databases_are_independent(self):
        """Multiple databases mean independent protocol instances
        (paper section 2)."""
        catalog = DatabaseCatalog()
        catalog.add(DatabaseSchema("a", ("x",), 2))
        catalog.add(DatabaseSchema("b", ("x",), 3))
        assert catalog.get("a").n_nodes == 2
        assert catalog.get("b").n_nodes == 3
