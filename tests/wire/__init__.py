"""Tests for the binary wire codec (:mod:`repro.wire`)."""
