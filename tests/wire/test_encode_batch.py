"""``encode_batch`` is byte-identical to per-message ``encode`` calls.

The batch path exists purely to amortize the encoder-pool round-trip
across a session's frames; it must not change a single byte or the
delta-VV cache progression, or encoded-mode byte accounting would
depend on which call shape the simulator happened to use.
"""

from repro.core.messages import (
    ItemPayload,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import VersionVector
from repro.wire import WireCodec

N = 4


def _vv(*counts):
    return VersionVector.from_counts(list(counts))


def _session_messages(bump):
    ivv = _vv(1 + bump, 2, 0, 3)
    return [
        PropagationRequest(1, _vv(5 + bump, 0, 2, 1)),
        PropagationReply(
            0,
            ((("item-a", 3 + bump),), (), (), ()),
            (ItemPayload("item-a", b"payload-%d" % bump, ivv),),
        ),
        YouAreCurrent(0),
    ]


class TestEncodeBatchEquivalence:
    def _assert_batches_match(self, delta):
        # Two codecs with independent caches; several batches on the
        # same directed link so the delta arm's bases keep advancing.
        batch_codec = WireCodec(delta_vv=delta)
        single_codec = WireCodec(delta_vv=delta)
        # One receiver per arm, held across batches: delta frames are
        # only decodable against the link's accumulated cache state.
        receiver_a = WireCodec(delta_vv=delta)
        receiver_b = WireCodec(delta_vv=delta)
        for bump in range(4):
            messages = _session_messages(bump)
            batched = batch_codec.encode_batch(0, 1, messages)
            singles = [single_codec.encode(0, 1, message) for message in messages]
            assert batched == singles
            for frame_a, frame_b, message in zip(batched, singles, messages):
                assert receiver_a.decode(0, 1, frame_a) == message
                assert receiver_b.decode(0, 1, frame_b) == message

    def test_full_vv_mode(self):
        self._assert_batches_match(delta=False)

    def test_delta_vv_mode(self):
        self._assert_batches_match(delta=True)

    def test_caches_advance_identically_after_a_batch(self):
        # A follow-up single encode after a batch must delta against the
        # batch's last vector exactly as it would after single encodes.
        batch_codec = WireCodec(delta_vv=True)
        single_codec = WireCodec(delta_vv=True)
        messages = _session_messages(0)
        batch_codec.encode_batch(0, 1, messages)
        for message in messages:
            single_codec.encode(0, 1, message)
        follow_up = PropagationRequest(1, _vv(6, 0, 2, 1))
        assert batch_codec.encode(0, 1, follow_up) == single_codec.encode(
            0, 1, follow_up
        )

    def test_empty_batch(self):
        assert WireCodec().encode_batch(0, 1, []) == []
