"""Replay the checked-in malformed-frame corpus.

Each ``corpus/*.hex`` file is a frame a hostile or corrupted peer could
send; every one must be rejected with ``WireFormatError`` — never
accepted, never a different exception, never a hang or an allocation
sized from attacker bytes.  See ``corpus/README.md`` for what each
frame corrupts and ``corpus/_regen.py`` to regenerate after a
deliberate format change.
"""

import tracemalloc
from pathlib import Path

import pytest

from repro.errors import WireFormatError
from repro.wire.codec import MAX_FRAME_LEN, WireCodec

CORPUS = Path(__file__).parent / "corpus"


def _load(path: Path) -> bytes:
    return bytes.fromhex("".join(path.read_text().split()))


def _corpus_files() -> list[Path]:
    return sorted(CORPUS.glob("*.hex"))


def test_corpus_is_present():
    # The corpus only protects anything while it exists; a refactor that
    # drops the directory must fail loudly.
    assert len(_corpus_files()) >= 12


@pytest.mark.parametrize("path", _corpus_files(), ids=lambda p: p.stem)
def test_malformed_frame_is_rejected(path):
    frame = _load(path)
    with pytest.raises(WireFormatError):
        WireCodec(delta_vv=True).decode(0, 1, frame)


def test_over_cap_length_prefix_rejected_without_allocation():
    """A ten-byte frame claiming a 2^60-byte payload must cost nothing:
    the cap check runs before anything is sized from the prefix."""
    frame = _load(CORPUS / "over_cap_length_prefix.hex")
    assert len(frame) < 16
    tracemalloc.start()
    try:
        with pytest.raises(WireFormatError, match="exceeds the"):
            WireCodec().decode(0, 1, frame)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # The claimed size is ~10^18 bytes; a megabyte of slack is plenty.
    assert peak < 1 << 20


def test_over_cap_count_rejected_without_allocation():
    frame = _load(CORPUS / "over_cap_count.hex")
    tracemalloc.start()
    try:
        with pytest.raises(WireFormatError, match="element count"):
            WireCodec().decode(0, 1, frame)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < 1 << 20


def test_corpus_frames_match_their_regeneration():
    """The regen script and the checked-in files must agree — catches a
    format change that forgot to regenerate (or hand-edited files)."""
    import importlib.util
    import sys

    spec = importlib.util.spec_from_file_location(
        "_corpus_regen", CORPUS / "_regen.py"
    )
    module = importlib.util.module_from_spec(spec)
    before = {p.name: p.read_bytes() for p in _corpus_files()}
    try:
        spec.loader.exec_module(module)
        module.main()
        after = {p.name: p.read_bytes() for p in _corpus_files()}
        assert before == after
    finally:
        # Restore whatever was checked in, even if the assert failed.
        for name, blob in before.items():
            (CORPUS / name).write_bytes(blob)
        sys.modules.pop("_corpus_regen", None)


def test_max_frame_len_is_the_shared_cap():
    from repro.net.framing import MAX_FRAME_BYTES

    assert MAX_FRAME_BYTES == MAX_FRAME_LEN
