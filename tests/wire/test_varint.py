"""Unit and property tests for the LEB128 varint layer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WireFormatError
from repro.wire.varint import (
    MAX_VARINT_BYTES,
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)


def encode_u(value):
    buf = bytearray()
    write_uvarint(buf, value)
    return bytes(buf)


def encode_s(value):
    buf = bytearray()
    write_svarint(buf, value)
    return bytes(buf)


class TestKnownEncodings:
    def test_single_byte_values(self):
        assert encode_u(0) == b"\x00"
        assert encode_u(1) == b"\x01"
        assert encode_u(127) == b"\x7f"

    def test_multi_byte_values(self):
        assert encode_u(128) == b"\x80\x01"
        assert encode_u(300) == b"\xac\x02"  # the protobuf docs example

    def test_u64_max_fits_in_ten_bytes(self):
        frame = encode_u(2**64 - 1)
        assert len(frame) == MAX_VARINT_BYTES
        assert read_uvarint(frame, 0) == (2**64 - 1, MAX_VARINT_BYTES)

    def test_zigzag_small_magnitudes_stay_small(self):
        assert encode_s(0) == b"\x00"
        assert encode_s(-1) == b"\x01"
        assert encode_s(1) == b"\x02"
        assert encode_s(-2) == b"\x03"
        assert len(encode_s(-64)) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(WireFormatError):
            encode_u(-1)
        with pytest.raises(WireFormatError):
            encode_u(2**64)
        with pytest.raises(WireFormatError):
            encode_s(2**63)
        with pytest.raises(WireFormatError):
            encode_s(-(2**63) - 1)


class TestMalformedInput:
    def test_truncated_varint(self):
        with pytest.raises(WireFormatError):
            read_uvarint(b"", 0)
        with pytest.raises(WireFormatError):
            read_uvarint(b"\x80", 0)  # continuation bit, then nothing

    def test_hostile_continuation_spam_terminates(self):
        with pytest.raises(WireFormatError):
            read_uvarint(b"\x80" * 1000, 0)

    def test_overlong_value_rejected(self):
        # Ten bytes whose payload overflows 64 bits.
        with pytest.raises(WireFormatError):
            read_uvarint(b"\xff" * 9 + b"\x7f", 0)


@given(st.integers(0, 2**64 - 1))
def test_uvarint_roundtrip(value):
    frame = encode_u(value)
    assert read_uvarint(frame, 0) == (value, len(frame))


@given(st.integers(-(2**63), 2**63 - 1))
def test_svarint_roundtrip(value):
    frame = encode_s(value)
    assert read_svarint(frame, 0) == (value, len(frame))


@given(st.lists(st.integers(0, 2**64 - 1), max_size=20))
def test_concatenated_varints_reparse(values):
    buf = bytearray()
    for value in values:
        write_uvarint(buf, value)
    pos = 0
    decoded = []
    for _ in values:
        value, pos = read_uvarint(bytes(buf), pos)
        decoded.append(value)
    assert decoded == values
    assert pos == len(buf)
