"""Regenerate the malformed-frame corpus.

Run from the repo root after a deliberate wire-format change::

    PYTHONPATH=src python tests/wire/corpus/_regen.py

Each case starts from a frame the real codec produced (or a hand-built
payload using the same varint primitives) and applies one documented
corruption.  The corpus is *checked in*: the test replays the hex files
byte-for-byte, so a format change that silently starts accepting one of
these frames fails loudly instead of rotting unnoticed.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.messages import (
    ItemPayload,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import VersionVector
from repro.wire.codec import MAX_SEQUENCE_ITEMS, WireCodec
from repro.wire.varint import write_uvarint

CORPUS = Path(__file__).parent


def _uvarint(value: int) -> bytes:
    buf = bytearray()
    write_uvarint(buf, value)
    return bytes(buf)


def _frame(payload: bytes) -> bytes:
    return _uvarint(len(payload)) + payload


def _write(name: str, frame: bytes) -> None:
    text = frame.hex()
    lines = [text[i : i + 64] for i in range(0, len(text), 64)] or [""]
    (CORPUS / f"{name}.hex").write_text("\n".join(lines) + "\n")
    print(f"{name}.hex: {len(frame)} byte(s)")


def main() -> None:
    vv = VersionVector.from_counts((3, 0, 7))
    request = PropagationRequest(1, vv)

    # 1. Valid frame with its last byte removed.
    valid = WireCodec(delta_vv=False).encode(0, 1, request)
    _write("truncated_frame", valid[:-1])

    # 2. Length prefix one larger than the actual payload.
    _write(
        "length_prefix_overrun", _uvarint(len(valid[1:]) + 1) + valid[1:]
    )

    # 3. Length prefix far past MAX_FRAME_LEN; payload is tiny.  Decoding
    #    must reject the prefix before sizing anything from it.
    _write("over_cap_length_prefix", _uvarint(1 << 60) + b"\x02\x00")

    # 4. Unregistered message type id.
    _write("unknown_type_id", _frame(_uvarint(4095)))

    # 5. Payload ends inside a varint (continuation bit set, no
    #    terminator byte).
    _write("unterminated_varint", _frame(b"\x80"))

    # 6. ItemPayload whose name field is not valid UTF-8 (0xff can start
    #    no UTF-8 sequence).
    item = WireCodec(delta_vv=False).encode(
        0, 1, ItemPayload("a", b"xy", vv)
    )
    assert item.count(b"\x61") == 1
    _write("bad_utf8_string", item.replace(b"\x61", b"\xff"))

    # 7. Delta-form version vector with no cached base at the receiver:
    #    encode the same request twice on one delta-caching codec and
    #    keep the second (delta) frame — a fresh codec must refuse it.
    delta_codec = WireCodec(delta_vv=True)
    delta_codec.encode(0, 1, request)
    _write("delta_without_base", delta_codec.encode(0, 1, request))

    # 8. bytes_ field whose length prefix overruns the payload:
    #    ItemPayload(name="a") with a value field claiming 0x7f bytes.
    _write(
        "bytes_field_overrun",
        _frame(_uvarint(1) + b"\x01\x61" + b"\x7f" + b"\x78\x79"),
    )

    # 9. Full-form version vector declaring one component more than
    #    MAX_SEQUENCE_ITEMS; Decoder.count() must refuse before the
    #    component loop runs.
    _write(
        "over_cap_count",
        _frame(
            _uvarint(2)  # PropagationRequest
            + _uvarint(1)  # recipient
            + b"\x00"  # full-form vv tag
            + _uvarint(MAX_SEQUENCE_ITEMS + 1)
        ),
    )

    # 10. Valid body followed by garbage the length prefix *does* cover:
    #     decode succeeds, then the unconsumed-bytes check fires.
    you = WireCodec(delta_vv=False).encode(0, 1, YouAreCurrent(2))
    _write("trailing_bytes", _frame(you[1:] + b"\xde\xad"))

    # 11. Unknown version-vector tag byte (neither full 0x00 nor delta
    #     0x01).
    _write(
        "unknown_vv_tag",
        _frame(_uvarint(2) + _uvarint(1) + b"\x07"),
    )

    # 12. Zero-length payload: the message type id itself is missing.
    _write("empty_payload", _uvarint(0))


if __name__ == "__main__":
    main()
