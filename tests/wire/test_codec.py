"""Unit tests for framing, delta-compressed vectors, and cache rules."""

import pytest

from repro.core.messages import ItemPayload, PropagationRequest, YouAreCurrent
from repro.core.version_vector import VersionVector
from repro.errors import WireFormatError
from repro.wire import WireCodec, codec_for_class, codec_for_id, registered_codecs


def vv(*counts):
    return VersionVector.from_counts(list(counts))


class TestFraming:
    def test_roundtrip_returns_equal_message(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(3, 0, 7))
        assert codec.decode(0, 1, codec.encode(0, 1, message)) == message

    def test_frame_is_length_prefixed(self):
        codec = WireCodec()
        frame = codec.encode(0, 1, YouAreCurrent(5))
        # uvarint(len) + payload; payload = type id 3 + source 5.
        assert frame == bytes([2, 3, 5])

    def test_truncated_frame_raises_typed_error(self):
        codec = WireCodec()
        frame = codec.encode(0, 1, PropagationRequest(1, vv(9, 9)))
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                codec.decode(0, 1, frame[:cut])

    def test_trailing_garbage_raises(self):
        codec = WireCodec()
        frame = codec.encode(0, 1, YouAreCurrent(0))
        with pytest.raises(WireFormatError):
            codec.decode(0, 1, frame + b"\x00")

    def test_unknown_type_id_raises(self):
        with pytest.raises(WireFormatError):
            codec_for_id(255)
        codec = WireCodec()
        with pytest.raises(WireFormatError):
            codec.decode(0, 1, bytes([1, 200]))  # 1-byte payload, type 200

    def test_unregistered_class_raises(self):
        class Mystery:
            pass

        with pytest.raises(WireFormatError):
            codec_for_class(Mystery)

    def test_registry_is_populated_and_ordered(self):
        codecs = registered_codecs()
        ids = [codec.type_id for codec in codecs]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert len(codecs) >= 25


class TestDeltaVectors:
    def test_unchanged_vector_costs_two_bytes(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(5, 6, 7, 8))
        first = codec.encode(0, 1, message)
        second = codec.encode(0, 1, message)
        assert codec.decode(0, 1, first) == message
        assert codec.decode(0, 1, second) == message
        # Full form: tag + n + 4 components (6 bytes); delta form:
        # tag + zero changes (2 bytes).
        assert len(second) == len(first) - 4

    def test_sparse_delta_charges_only_changed_components(self):
        codec = WireCodec()
        base = PropagationRequest(1, vv(5, 6, 7, 8, 9, 10, 11, 12))
        codec.decode(0, 1, codec.encode(0, 1, base))
        bumped = PropagationRequest(1, vv(5, 6, 7, 8, 9, 10, 11, 13))
        frame = codec.encode(0, 1, bumped)
        assert codec.decode(0, 1, frame) == bumped
        quiet = codec.encode(0, 1, bumped)
        assert len(frame) == len(quiet) + 2  # one (gap, delta) pair extra

    def test_delta_disabled_always_sends_full(self):
        codec = WireCodec(delta_vv=False)
        message = PropagationRequest(1, vv(5, 6, 7))
        first = codec.encode(0, 1, message)
        second = codec.encode(0, 1, message)
        assert first == second
        assert codec.cache_size() == 0

    def test_streams_are_independent(self):
        codec = WireCodec()
        a = ItemPayload("a", b"", vv(1, 2))
        b = ItemPayload("b", b"", vv(1, 2))
        codec.decode(0, 1, codec.encode(0, 1, a))
        # Item b's first shipment must be full: "a"'s cache is not its.
        frame = codec.encode(0, 1, b)
        assert codec.decode(0, 1, frame) == b

    def test_links_are_directional_and_independent(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(4, 4))
        codec.decode(0, 1, codec.encode(0, 1, message))
        # The reverse direction has no cache: full vector again.
        frame = codec.encode(1, 0, message)
        assert codec.decode(1, 0, frame) == message

    def test_membership_growth_falls_back_to_full(self):
        codec = WireCodec()
        codec.decode(0, 1, codec.encode(0, 1, PropagationRequest(1, vv(1, 2))))
        grown = PropagationRequest(1, vv(1, 2, 0))
        frame = codec.encode(0, 1, grown)
        assert codec.decode(0, 1, frame) == grown

    def test_delta_without_base_raises(self):
        sender = WireCodec()
        receiver = WireCodec()
        message = PropagationRequest(1, vv(1, 1))
        # Prime only the sender, then hand its second (delta) frame to a
        # receiver that never saw the first — the crash/recovery shape.
        sender.encode(0, 1, message)
        delta_frame = sender.encode(0, 1, message)
        with pytest.raises(WireFormatError):
            receiver.decode(0, 1, delta_frame)

    def test_negative_component_rejected(self):
        codec = WireCodec()
        codec.decode(0, 1, codec.encode(0, 1, PropagationRequest(1, vv(5, 5))))
        # Hand-build a delta frame taking component 0 below zero:
        # payload = type 2, recipient 1, tag 0x01, 1 change, gap 0, delta -6.
        payload = bytes([2, 1, 0x01, 1, 0]) + bytes([11])  # zigzag(-6) = 11
        frame = bytes([len(payload)]) + payload
        with pytest.raises(WireFormatError):
            codec.decode(0, 1, frame)


class TestInvalidation:
    def test_invalidate_link_clears_only_that_direction(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(2, 2))
        codec.decode(0, 1, codec.encode(0, 1, message))
        codec.decode(2, 1, codec.encode(2, 1, message))
        before = codec.cache_size()
        codec.invalidate_link(0, 1)
        assert codec.cache_size() == before - 2  # one _sent + one _seen
        # The surviving link still delta-decodes fine.
        assert codec.decode(2, 1, codec.encode(2, 1, message)) == message

    def test_invalidate_node_clears_both_roles(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(2, 2, 2))
        codec.decode(0, 1, codec.encode(0, 1, message))
        codec.decode(1, 2, codec.encode(1, 2, message))
        codec.decode(0, 2, codec.encode(0, 2, message))
        codec.invalidate_node(1)
        remaining = set(codec._sent) | set(codec._seen)
        assert all(1 not in key[:2] for key in remaining)
        assert remaining  # 0->2 survived

    def test_recovery_sequence_resynchronizes(self):
        codec = WireCodec()
        message = PropagationRequest(1, vv(3, 3))
        codec.decode(0, 1, codec.encode(0, 1, message))
        codec.invalidate_node(1)  # crash + recovery
        # Next frame is full again; the stream then re-deltas normally.
        assert codec.decode(0, 1, codec.encode(0, 1, message)) == message
        delta = codec.encode(0, 1, message)
        assert codec.decode(0, 1, delta) == message
        assert len(delta) < 8
