"""Property-based tests for the wire codec.

Three families:

* **round-trip identity** — for *every* registered message class, a
  strategy-built instance must decode back equal to itself (the
  strategy table below is asserted complete against the registry, so
  registering a new message without extending it fails here);
* **delta streams** — arbitrary vector sequences with interleaved
  crash/drop invalidations must always decode exactly, because every
  desync trigger either invalidates the caches or falls back to full
  form;
* **hostile frames** — truncation and byte corruption must surface as
  :class:`WireFormatError` (or a clean decode), never as
  ``struct.error`` / ``IndexError`` / ``UnicodeDecodeError`` from the
  decoder's guts.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.agrawal_malpani import (
    AMRecord,
    _LogPush,
    _RepairRequest,
    _VectorExchange,
)
from repro.baselines.lotus import (
    _ChangeList,
    _DocFetch,
    _DocShipment,
    _PropagationProbe,
)
from repro.baselines.oracle import UpdateRecord, _PushBatch
from repro.baselines.per_item import (
    _ItemFetch,
    _ItemShipment,
    _IVVListReply,
    _IVVListRequest,
)
from repro.baselines.wuu_bernstein import (
    GossipRecord,
    _GossipMessage,
    _GossipRequest,
)
from repro.core.delta import DeltaPayload, OpChainEntry
from repro.core.messages import (
    ItemPayload,
    OutOfBoundReply,
    OutOfBoundRequest,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import VersionVector
from repro.errors import WireFormatError
from repro.substrate.operations import (
    Append,
    BytePatch,
    CounterAdd,
    Put,
    Truncate,
)
from repro.wire import WireCodec, registered_codecs

node_ids = st.integers(0, 40)
seqnos = st.integers(0, 2**48)
names = st.text(min_size=0, max_size=12)
values = st.binary(max_size=48)
vectors = st.lists(st.integers(0, 2**48), min_size=1, max_size=8).map(
    VersionVector.from_counts
)
operations = st.one_of(
    st.builds(Put, values),
    st.builds(Append, values),
    st.builds(BytePatch, st.integers(0, 2**32), values),
    st.builds(Truncate, st.integers(0, 2**32)),
    st.builds(CounterAdd, st.integers(-(2**48), 2**48)),
)
op_entries = st.builds(OpChainEntry, node_ids, seqnos, operations)
item_payloads = st.builds(ItemPayload, names, values, vectors)
delta_payloads = st.builds(
    DeltaPayload,
    names,
    vectors,
    st.lists(op_entries, max_size=4).map(tuple),
)
tails = st.lists(
    st.lists(st.tuples(names, seqnos), max_size=3).map(tuple), max_size=3
).map(tuple)
lww_fields = (names, values, seqnos, node_ids)
writer_ids = st.integers(-1, 40)


def _square_tables(draw_n=st.integers(0, 4)):
    return draw_n.flatmap(
        lambda n: st.lists(
            st.lists(seqnos, min_size=n, max_size=n).map(tuple),
            min_size=n,
            max_size=n,
        ).map(tuple)
    )


#: class -> instance strategy; asserted complete against the registry.
MESSAGE_STRATEGIES = {
    ItemPayload: item_payloads,
    PropagationRequest: st.builds(PropagationRequest, node_ids, vectors),
    YouAreCurrent: st.builds(YouAreCurrent, node_ids),
    PropagationReply: st.builds(
        PropagationReply,
        node_ids,
        tails,
        st.lists(st.one_of(item_payloads, delta_payloads), max_size=4).map(tuple),
    ),
    OutOfBoundRequest: st.builds(OutOfBoundRequest, node_ids, names),
    OutOfBoundReply: st.builds(OutOfBoundReply, node_ids, names, values, vectors),
    OpChainEntry: op_entries,
    DeltaPayload: delta_payloads,
    UpdateRecord: st.builds(UpdateRecord, *lww_fields),
    _PushBatch: st.builds(
        _PushBatch,
        node_ids,
        st.lists(st.builds(UpdateRecord, *lww_fields), max_size=4).map(tuple),
    ),
    AMRecord: st.builds(AMRecord, *lww_fields),
    _LogPush: st.builds(
        _LogPush,
        node_ids,
        st.lists(st.builds(AMRecord, *lww_fields), max_size=4).map(tuple),
    ),
    _VectorExchange: st.builds(
        _VectorExchange, node_ids, st.lists(seqnos, max_size=8).map(tuple)
    ),
    _RepairRequest: st.builds(
        _RepairRequest,
        node_ids,
        st.lists(st.tuples(node_ids, seqnos), max_size=4).map(tuple),
    ),
    _IVVListRequest: st.builds(_IVVListRequest, node_ids),
    _IVVListReply: st.builds(
        _IVVListReply,
        node_ids,
        st.lists(st.tuples(names, vectors), max_size=4).map(tuple),
    ),
    _ItemFetch: st.builds(
        _ItemFetch, node_ids, st.lists(names, max_size=4).map(tuple)
    ),
    _ItemShipment: st.builds(
        _ItemShipment, node_ids, st.lists(item_payloads, max_size=4).map(tuple)
    ),
    _PropagationProbe: st.builds(_PropagationProbe, node_ids),
    _ChangeList: st.builds(
        _ChangeList,
        node_ids,
        st.lists(st.tuples(names, seqnos, writer_ids), max_size=4).map(tuple),
    ),
    _DocFetch: st.builds(
        _DocFetch, node_ids, st.lists(names, max_size=4).map(tuple)
    ),
    _DocShipment: st.builds(
        _DocShipment,
        node_ids,
        st.lists(st.tuples(names, values, seqnos, writer_ids), max_size=4).map(
            tuple
        ),
    ),
    GossipRecord: st.builds(GossipRecord, *lww_fields),
    _GossipMessage: st.builds(
        _GossipMessage,
        node_ids,
        _square_tables(),
        st.lists(st.builds(GossipRecord, *lww_fields), max_size=4).map(tuple),
    ),
    _GossipRequest: st.builds(_GossipRequest, node_ids),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


def test_strategy_table_covers_every_registered_class():
    registered = {codec.cls for codec in registered_codecs()}
    missing = registered - set(MESSAGE_STRATEGIES)
    assert not missing, (
        f"registered wire messages without a round-trip strategy: "
        f"{sorted(cls.__qualname__ for cls in missing)}"
    )


@settings(max_examples=40)
@given(st.data())
def test_every_registered_class_roundtrips(data):
    codec = WireCodec()
    for cls, strategy in MESSAGE_STRATEGIES.items():
        message = data.draw(strategy, label=cls.__qualname__)
        frame = codec.encode(0, 1, message)
        assert codec.decode(0, 1, frame) == message


@given(st.lists(any_message, min_size=1, max_size=8))
def test_streamed_messages_roundtrip_through_shared_caches(messages):
    codec = WireCodec()
    for message in messages:
        assert codec.decode(2, 3, codec.encode(2, 3, message)) == message


@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 2**32), min_size=4, max_size=4),
            st.sampled_from(["send", "crash", "drop"]),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_delta_streams_survive_crashes_and_drops(events):
    """Any interleaving of sends, node crashes, and in-flight drops
    decodes exactly, provided the two invalidation hooks the network
    calls are honoured."""
    codec = WireCodec()
    for counts, event in events:
        message = PropagationRequest(1, VersionVector.from_counts(counts))
        if event == "crash":
            codec.invalidate_node(1)
        elif event == "drop":
            # The frame left the sender (advancing _sent) but never
            # reached the receiver: network calls invalidate_link.
            codec.encode(0, 1, message)
            codec.invalidate_link(0, 1)
        decoded = codec.decode(0, 1, codec.encode(0, 1, message))
        assert decoded.dbvv.as_tuple() == tuple(counts)


@settings(max_examples=60)
@given(any_message, st.integers(0, 200))
def test_truncated_frames_raise_typed_error(message, cut):
    codec = WireCodec()
    frame = codec.encode(0, 1, message)
    cut = min(cut, len(frame) - 1)
    try:
        codec.decode(4, 5, frame[:cut])
    except WireFormatError:
        pass
    else:
        raise AssertionError("truncated frame decoded without error")


@settings(max_examples=60)
@given(any_message, st.integers(0, 200), st.integers(1, 255))
def test_corrupt_frames_never_raise_untyped_errors(message, index, flip):
    codec = WireCodec()
    frame = bytearray(codec.encode(0, 1, message))
    frame[index % len(frame)] ^= flip
    try:
        codec.decode(4, 5, bytes(frame))
    except WireFormatError:
        pass  # the typed rejection path
    except (OverflowError, MemoryError):
        raise  # would indicate a missing bound check — fail loudly
    # A corrupt frame may also decode to *some* message; what it must
    # never do is leak struct.error / IndexError / UnicodeDecodeError.
