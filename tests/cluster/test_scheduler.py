"""Unit tests for peer-selection policies."""

import random

import networkx as nx
import pytest

from repro.cluster.scheduler import (
    RandomSelector,
    RingSelector,
    StarSelector,
    TopologySelector,
)


class TestRandomSelector:
    def test_never_selects_self(self):
        selector = RandomSelector()
        rng = random.Random(0)
        for node in range(5):
            for round_no in range(50):
                peer = selector.peer_for(node, 5, round_no, rng)
                assert peer != node
                assert 0 <= peer < 5

    def test_covers_all_peers_eventually(self):
        selector = RandomSelector()
        rng = random.Random(1)
        seen = {selector.peer_for(0, 6, r, rng) for r in range(200)}
        assert seen == {1, 2, 3, 4, 5}

    def test_two_node_degenerate_case(self):
        selector = RandomSelector()
        rng = random.Random(0)
        assert selector.peer_for(0, 2, 0, rng) == 1
        assert selector.peer_for(1, 2, 0, rng) == 0

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            RandomSelector().peer_for(0, 1, 0, random.Random(0))


class TestRingSelector:
    def test_pulls_from_predecessor(self):
        selector = RingSelector()
        rng = random.Random(0)
        assert selector.peer_for(2, 5, 0, rng) == 1
        assert selector.peer_for(0, 5, 0, rng) == 4

    def test_is_deterministic(self):
        selector = RingSelector()
        rng = random.Random(0)
        picks = [selector.peer_for(3, 6, r, rng) for r in range(5)]
        assert picks == [2] * 5


class TestStarSelector:
    def test_spokes_pull_from_hub(self):
        selector = StarSelector(hub=0)
        rng = random.Random(0)
        for node in (1, 2, 3):
            assert selector.peer_for(node, 4, 7, rng) == 0

    def test_hub_rotates_spokes(self):
        selector = StarSelector(hub=0)
        rng = random.Random(0)
        picks = [selector.peer_for(0, 4, r, rng) for r in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_hub_outside_set_rejected(self):
        with pytest.raises(ValueError):
            StarSelector(hub=9).peer_for(0, 4, 0, random.Random(0))

    def test_describe_names_hub(self):
        assert "hub=2" in StarSelector(hub=2).describe()


class TestTopologySelector:
    def test_selects_only_neighbors(self):
        graph = nx.path_graph(4)  # 0-1-2-3
        selector = TopologySelector(graph)
        rng = random.Random(0)
        for _ in range(50):
            assert selector.peer_for(0, 4, 0, rng) == 1
            assert selector.peer_for(1, 4, 0, rng) in (0, 2)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(ValueError):
            TopologySelector(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            TopologySelector(nx.Graph())

    def test_node_outside_graph_rejected(self):
        selector = TopologySelector(nx.complete_graph(3))
        with pytest.raises(ValueError):
            selector.peer_for(7, 8, 0, random.Random(0))

    def test_describe_reports_shape(self):
        selector = TopologySelector(nx.cycle_graph(5))
        assert "nodes=5" in selector.describe()
        assert "edges=5" in selector.describe()
