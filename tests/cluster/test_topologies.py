"""Tests for the topology helpers, including end-to-end convergence
over each shape (Theorem 5 over structured connectivity)."""

import random

import pytest

from repro.cluster import topologies
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put

ITEMS = make_items(10)


class TestConstruction:
    def test_ring_neighbors(self):
        selector = topologies.ring(5)
        rng = random.Random(0)
        picks = {selector.peer_for(0, 5, r, rng) for r in range(50)}
        assert picks == {1, 4}

    def test_line_endpoints_have_one_neighbor(self):
        selector = topologies.line(4)
        rng = random.Random(0)
        assert {selector.peer_for(0, 4, r, rng) for r in range(20)} == {1}
        assert {selector.peer_for(3, 4, r, rng) for r in range(20)} == {2}

    def test_grid_degree(self):
        selector = topologies.grid(3, 3)
        assert selector.graph.number_of_nodes() == 9
        # Center node of a 3x3 grid has 4 neighbors.
        degrees = sorted(dict(selector.graph.degree).values())
        assert degrees == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_binary_tree_size(self):
        selector = topologies.binary_tree(3)
        assert selector.graph.number_of_nodes() == 2 ** 4 - 1

    def test_small_world_adds_chords(self):
        base_edges = topologies.ring(20).graph.number_of_edges()
        chorded = topologies.small_world(20, chords=5, seed=1)
        assert chorded.graph.number_of_edges() == base_edges + 5

    def test_small_world_deterministic_by_seed(self):
        a = topologies.small_world(20, chords=5, seed=1)
        b = topologies.small_world(20, chords=5, seed=1)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_random_regular_is_regular_and_connected(self):
        selector = topologies.random_regular(12, degree=3, seed=2)
        degrees = set(dict(selector.graph.degree).values())
        assert degrees == {3}

    def test_validation(self):
        with pytest.raises(ValueError):
            topologies.ring(2)
        with pytest.raises(ValueError):
            topologies.grid(1, 1)
        with pytest.raises(ValueError):
            topologies.binary_tree(0)
        with pytest.raises(ValueError):
            topologies.random_regular(5, degree=3, seed=0)  # odd product
        with pytest.raises(ValueError):
            topologies.random_regular(4, degree=4, seed=0)  # degree >= n


class TestConvergenceOverTopologies:
    @pytest.mark.parametrize(
        "selector,n_nodes",
        [
            (topologies.ring(6), 6),
            (topologies.line(6), 6),
            (topologies.grid(2, 3), 6),
            (topologies.binary_tree(2), 7),
            (topologies.small_world(8, chords=3, seed=3), 8),
            (topologies.random_regular(8, degree=3, seed=3), 8),
        ],
        ids=["ring", "line", "grid", "tree", "small-world", "regular"],
    )
    def test_theorem5_holds(self, selector, n_nodes):
        sim = ClusterSimulation(
            make_factory("dbvv", n_nodes, ITEMS), n_nodes, ITEMS,
            selector=selector, seed=5,
        )
        sim.apply_update(0, ITEMS[0], Put(b"spread-me"))
        sim.apply_update(n_nodes - 1, ITEMS[1], Put(b"and-me"))
        sim.run_until_converged(max_rounds=40 * n_nodes)
        assert sim.ground_truth.fully_current(sim.nodes)
        assert sim.total_conflicts() == 0

    def test_diameter_orders_convergence(self):
        """The line (diameter n-1) converges slower than the small
        world (short chords) for the same node count, on average."""
        def rounds_for(selector, seed):
            sim = ClusterSimulation(
                make_factory("dbvv", 12, ITEMS), 12, ITEMS,
                selector=selector, seed=seed,
            )
            sim.apply_update(0, ITEMS[0], Put(b"v"))
            return sim.run_until_converged(max_rounds=600)

        line_rounds = sum(rounds_for(topologies.line(12), s) for s in range(3))
        sw_rounds = sum(
            rounds_for(topologies.small_world(12, chords=6, seed=9), s)
            for s in range(3)
        )
        assert sw_rounds < line_rounds
