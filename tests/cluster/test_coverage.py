"""Tests for transitive-coverage tracking (paper section 7, Theorem 5)."""

import pytest

from repro.cluster.coverage import TransitiveCoverageTracker
from repro.cluster.scheduler import RingSelector
from repro.cluster.simulation import ClusterSimulation
from repro.errors import UnknownNodeError
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put


class TestDefinition4:
    """The tracker follows the paper's definition of transitive
    propagation exactly."""

    def test_direct_propagation(self):
        tracker = TransitiveCoverageTracker(3)
        tracker.record_session(recipient=0, source=1)
        assert tracker.has_propagated_from(0, 1)
        assert not tracker.has_propagated_from(1, 0)

    def test_transitivity_through_intermediate(self):
        """i pulls from k after k pulled from j ⇒ i transitively
        propagated from j."""
        tracker = TransitiveCoverageTracker(3)
        tracker.record_session(recipient=1, source=2)  # k <- j
        tracker.record_session(recipient=0, source=1)  # i <- k
        assert tracker.has_propagated_from(0, 2)

    def test_order_matters(self):
        """i pulls from k BEFORE k pulls from j ⇒ no transitivity."""
        tracker = TransitiveCoverageTracker(3)
        tracker.record_session(recipient=0, source=1)  # i <- k first
        tracker.record_session(recipient=1, source=2)  # k <- j later
        assert not tracker.has_propagated_from(0, 2)

    def test_nodes_trivially_know_themselves(self):
        tracker = TransitiveCoverageTracker(2)
        assert tracker.has_propagated_from(0, 0)

    def test_self_session_rejected(self):
        tracker = TransitiveCoverageTracker(2)
        with pytest.raises(ValueError):
            tracker.record_session(0, 0)

    def test_unknown_nodes_rejected(self):
        tracker = TransitiveCoverageTracker(2)
        with pytest.raises(UnknownNodeError):
            tracker.record_session(0, 5)


class TestFullCoverage:
    def test_ring_covers_in_two_laps(self):
        """One directed ring lap gives everyone their predecessor
        chain; a second lap closes every pair."""
        tracker = TransitiveCoverageTracker(4)
        for _lap in range(2):
            for node in range(4):
                tracker.record_session(node, (node - 1) % 4)
        assert tracker.is_fully_covered()
        assert tracker.uncovered_pairs() == []

    def test_one_lap_is_not_enough(self):
        tracker = TransitiveCoverageTracker(4)
        for node in range(4):
            tracker.record_session(node, (node - 1) % 4)
        assert not tracker.is_fully_covered()
        # Node 0 pulled first and knows only its predecessor.
        assert tracker.knowledge_of(0) == frozenset({0, 3})

    def test_coverage_time_recorded_once(self):
        tracker = TransitiveCoverageTracker(2)
        tracker.record_session(0, 1, time=1.0)
        tracker.record_session(1, 0, time=2.0)
        assert tracker.coverage_time == 2.0
        tracker.record_session(0, 1, time=9.0)
        assert tracker.coverage_time == 2.0

    def test_reset_epoch_restarts_coverage(self):
        tracker = TransitiveCoverageTracker(2)
        tracker.record_session(0, 1, time=1.0)
        tracker.record_session(1, 0, time=2.0)
        tracker.reset_epoch()
        assert not tracker.is_fully_covered()
        assert tracker.coverage_time is None
        assert len(tracker.history) == 2  # history is kept


class TestTheorem5EndToEnd:
    """Coverage (the premise) implies convergence (the conclusion) in
    the full simulation — and convergence cannot precede coverage for
    updates present from the start."""

    def test_simulation_tracks_coverage(self):
        items = make_items(10)
        sim = ClusterSimulation(make_factory("dbvv", 4, items), 4, items, seed=1)
        sim.run_round()
        assert len(sim.coverage.history) == 4

    def test_coverage_implies_convergence(self):
        items = make_items(30)
        sim = ClusterSimulation(make_factory("dbvv", 5, items), 5, items, seed=2)
        for k in range(5):
            sim.apply_update(k, items[k], Put(f"v{k}".encode()))
        while not sim.coverage.is_fully_covered():
            sim.run_round()
            assert sim.round_no < 200
        # Premise satisfied ⇒ conclusion must hold: replicas converged.
        assert sim.converged()
        assert sim.ground_truth.fully_current(sim.nodes)

    def test_convergence_of_initial_updates_never_precedes_coverage(self):
        """If some pair (i, j) is uncovered, i cannot have j's initial
        update — run many seeds and check the implication each round."""
        items = make_items(12)
        for seed in range(5):
            sim = ClusterSimulation(
                make_factory("dbvv", 4, items), 4, items, seed=seed
            )
            for k in range(4):
                sim.apply_update(k, items[k], Put(f"origin-{k}".encode()))
            for _ in range(50):
                sim.run_round()
                for i, j in sim.coverage.uncovered_pairs():
                    assert sim.nodes[i].read(items[j]) == b"", (
                        f"node {i} has node {j}'s update without having "
                        f"transitively propagated from it (seed {seed})"
                    )
                if sim.coverage.is_fully_covered():
                    break
            assert sim.coverage.is_fully_covered()

    def test_ring_coverage_time_matches_theory(self):
        """A deterministic ring needs at most 2n sessions-per-node laps;
        the simulator's shuffled order makes it a few rounds more."""
        items = make_items(5)
        sim = ClusterSimulation(
            make_factory("dbvv", 6, items), 6, items,
            selector=RingSelector(), seed=3,
        )
        while not sim.coverage.is_fully_covered():
            sim.run_round()
            assert sim.round_no <= 4 * 6
