"""Durable mode in the cluster simulator: journaled nodes, disk recovery.

With ``durable=True`` the simulator journals every DBVV-protocol node
and rebuilds a :class:`~repro.cluster.failures.Recover`-ed node from
its on-disk journal instead of trusting the in-memory object — the
paper's fail-stop "repaired server" made real.  Durable mode must be
behaviourally invisible: the same seed and workload converge to the
same state with and without it.
"""

import random

import pytest

from repro.cluster.failures import Crash, FailurePlan, Recover
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put
from repro.substrate.persistence import dump_node

ITEMS = make_items(6)


@pytest.fixture(autouse=True)
def _no_ambient_durable(monkeypatch):
    # CI's durable sweep exports REPRO_DURABLE=1 globally; these tests
    # compare durable against genuinely-plain runs, so the ambient
    # flag must not leak in.  Tests that exercise the env var set it
    # themselves.
    monkeypatch.delenv("REPRO_DURABLE", raising=False)


def make_sim(n_nodes=4, seed=5, protocol="dbvv", **kwargs):
    return ClusterSimulation(
        make_factory(protocol, n_nodes, ITEMS),
        n_nodes,
        ITEMS,
        seed=seed,
        **kwargs,
    )


def crashy_run(sim, rounds=10):
    """A deterministic single-writer workload under the failure plan."""
    rng = random.Random(42)
    for round_no in range(rounds):
        if sim.network.is_up(0) and rng.random() < 0.7:
            sim.apply_update(0, ITEMS[0], Put(f"a{round_no}".encode()))
        if sim.network.is_up(3) and rng.random() < 0.7:
            sim.apply_update(3, ITEMS[1], Put(f"b{round_no}".encode()))
        sim.run_round()
    sim.run_until_converged(max_rounds=60)
    return sim


PLAN = [
    Crash(node=1, at_round=2),
    Recover(node=1, at_round=5),
    Crash(node=2, at_round=6),
    Recover(node=2, at_round=8),
]


class TestDurableMode:
    def test_every_dbvv_node_gets_a_journal(self):
        sim = make_sim(durable=True)
        assert sorted(sim.journals) == [0, 1, 2, 3]
        assert all(j.fsync is False for j in sim.journals.values())

    def test_disabled_by_default(self):
        sim = make_sim()
        assert sim.durable is False
        assert sim.journals == {}

    def test_env_var_enables_durable_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABLE", "1")
        sim = make_sim()
        assert sim.durable is True
        assert sim.journals

    def test_env_var_zero_keeps_it_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABLE", "0")
        assert make_sim().durable is False

    def test_explicit_false_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABLE", "1")
        assert make_sim(durable=False).durable is False

    def test_data_dir_hosts_the_journals(self, tmp_path):
        sim = make_sim(durable=True, data_dir=str(tmp_path))
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        assert (tmp_path / "node0" / "wal.log").exists()

    def test_baseline_protocols_run_undisturbed(self):
        # Baselines have no attach_journal; durable mode must skip
        # them, not crash — env-driven durable CI sweeps every suite.
        sim = make_sim(protocol="lotus", durable=True)
        assert sim.journals == {}
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_until_converged(max_rounds=30)


class TestRecoverFromDisk:
    def test_recovered_node_is_rebuilt_from_its_journal(self):
        plan = FailurePlan(list(PLAN))
        sim = crashy_run(make_sim(durable=True, failure_plan=plan))
        # Both recovered nodes replayed their journals from disk.
        assert sim.journals[1].records_replayed >= 1
        assert sim.journals[2].records_replayed >= 1
        for node in sim.nodes:
            node.check_invariants()

    def test_durable_run_matches_plain_run_exactly(self):
        plain = crashy_run(make_sim(failure_plan=FailurePlan(list(PLAN))))
        durable = crashy_run(
            make_sim(durable=True, failure_plan=FailurePlan(list(PLAN)))
        )
        for p, d in zip(plain.nodes, durable.nodes):
            assert dump_node(p.node) == dump_node(d.node)
        assert plain.round_no == durable.round_no

    def test_recover_without_durable_restores_in_memory(self):
        # Non-durable recovery (the pre-durable behaviour) still works:
        # the node simply resumes with its in-memory state.
        plan = FailurePlan(list(PLAN))
        sim = crashy_run(make_sim(failure_plan=plan))
        assert sim.converged()


class TestDynamicMembership:
    def test_added_node_gets_a_journal(self):
        from repro.core.protocol import DBVVProtocolNode

        sim = make_sim(n_nodes=3, durable=True)
        new_id = sim.add_node(
            lambda node_id, counters, n_nodes: DBVVProtocolNode(
                node_id, n_nodes, ITEMS, counters=counters
            )
        )
        assert new_id in sim.journals

    def test_journal_survives_membership_expansion(self):
        from repro.core.protocol import DBVVProtocolNode

        plan = FailurePlan(
            [Crash(node=1, at_round=2), Recover(node=1, at_round=4)]
        )
        sim = make_sim(n_nodes=3, durable=True, failure_plan=plan)
        sim.apply_update(0, ITEMS[0], Put(b"before"))
        sim.run_round()
        sim.add_node(
            lambda node_id, counters, n_nodes: DBVVProtocolNode(
                node_id, n_nodes, ITEMS, counters=counters
            )
        )
        for _ in range(6):
            sim.run_round()
        sim.run_until_converged(max_rounds=40)
        for node in sim.nodes:
            node.check_invariants()
        # The recovered node replayed (update + expand) records and
        # ended at the enlarged replica-set size.
        assert sim.journals[1].records_replayed >= 1
        assert sim.nodes[1].n_nodes == 4


@pytest.mark.parametrize("seed", [1, 9, 23])
def test_durable_parity_across_seeds(seed):
    plain = crashy_run(
        make_sim(seed=seed, failure_plan=FailurePlan(list(PLAN)))
    )
    durable = crashy_run(
        make_sim(seed=seed, durable=True, failure_plan=FailurePlan(list(PLAN)))
    )
    for p, d in zip(plain.nodes, durable.nodes):
        assert dump_node(p.node) == dump_node(d.node)
