"""Property: the delta-VV wire caches stay correct under any
interleaving of partitions, heals, membership growth, crashes,
recoveries, and lossy windows.

Every delivery in ``wire=True, sanitize=True`` mode round-trips
``decode(encode(m)) == m`` through the per-link delta caches and
raises :class:`~repro.errors.InvariantViolation` on the slightest
sender/receiver divergence, while a delta arriving without its base
raises :class:`~repro.errors.WireFormatError`.  So the property is
simply: drive a cluster through an arbitrary fault/growth schedule
and no such error may escape — and once every fault is lifted, a
conflict-free history must still converge (the caches never wedge a
link shut).

Cache-invalidating events covered: in-flight drops (sender cache ran
ahead — link invalidated), crash/recovery (node's volatile caches
gone — both roles invalidated), membership growth (vector width
changes — full-vector fallback).  Partitions fail at connect time
before bytes flow, so they must *not* touch the caches; the schedule
interleaves them to prove the codec survives both kinds.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.simulation import ClusterSimulation
from repro.core.protocol import DBVVProtocolNode
from repro.substrate.operations import Put

ITEMS = ("alpha", "beta", "gamma")

MAX_GROWTH = 2


def op_strategy():
    return st.one_of(
        st.tuples(st.just("round")),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=len(ITEMS) - 1),
            st.integers(min_value=0, max_value=255),
        ),
        st.tuples(st.just("partition"), st.integers(min_value=1, max_value=63)),
        st.tuples(st.just("heal")),
        st.tuples(st.just("crash"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("recover"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("add_node")),
        st.tuples(
            st.just("push_loss"), st.integers(min_value=1, max_value=1 << 16)
        ),
        st.tuples(st.just("pop_loss")),
    )


def build_node(node_id, counters, n_nodes):
    return DBVVProtocolNode(node_id, n_nodes, ITEMS, counters)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(op_strategy(), min_size=1, max_size=30))
def test_delta_caches_survive_fault_and_growth_interleavings(ops):
    sim = ClusterSimulation(
        lambda node_id, counters: build_node(node_id, counters, 3),
        3,
        ITEMS,
        sanitize=True,
        wire=True,
        seed=11,
    )
    grown = 0
    loss_tokens = []
    update_serial = 0
    for op in ops:
        kind = op[0]
        if kind == "round":
            sim.run_round()
        elif kind == "update":
            node_id = op[1] % sim.n_nodes
            if sim.network.is_up(node_id):
                update_serial += 1
                sim.apply_update(
                    node_id,
                    ITEMS[op[2]],
                    Put(bytes([op[3], update_serial % 256])),
                )
        elif kind == "partition":
            pivot = op[1] % (sim.n_nodes - 1) + 1
            sim.network.partition(
                [list(range(pivot)), list(range(pivot, sim.n_nodes))]
            )
        elif kind == "heal":
            sim.network.heal()
        elif kind == "crash":
            node_id = op[1] % sim.n_nodes
            if sim.network.is_up(node_id) and len(sim.up_nodes()) > 1:
                sim.network.set_down(node_id)
        elif kind == "recover":
            node_id = op[1] % sim.n_nodes
            if not sim.network.is_up(node_id):
                sim.network.set_up(node_id)
        elif kind == "add_node":
            if grown < MAX_GROWTH:
                grown += 1
                sim.add_node(build_node)
        elif kind == "push_loss":
            loss_tokens.append(
                sim.network.push_loss_rate(0.3, rng=random.Random(op[1]))
            )
        else:
            if loss_tokens:
                sim.network.pop_loss_rate(loss_tokens.pop())

    # Lift every fault and let the epidemic finish: the caches must
    # not have wedged any link, and a conflict-free history converges.
    while loss_tokens:
        sim.network.pop_loss_rate(loss_tokens.pop())
    sim.network.heal()
    for node_id in range(sim.n_nodes):
        if not sim.network.is_up(node_id):
            sim.network.set_up(node_id)
    for _ in range(4):
        sim.run_full_mesh_round()
    if sim.total_conflicts() == 0:
        assert sim.converged()
