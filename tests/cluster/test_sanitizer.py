"""The run-time invariant sanitizer: toggle resolution, the per-session
sweep in both simulation drivers, corruption detection, and accounting.
"""

import pytest

from repro.cluster.sanitizer import (
    SANITIZE_ENV_VAR,
    sanitize_enabled,
    sanitize_endpoints,
)
from repro.cluster.simulation import ClusterSimulation
from repro.errors import InvariantViolation
from repro.experiments.common import make_factory, make_items
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = make_items(10)


def make_sim(n_nodes=4, seed=3, **kwargs):
    return ClusterSimulation(
        make_factory("dbvv", n_nodes, ITEMS), n_nodes, ITEMS, seed=seed, **kwargs
    )


class TestToggleResolution:
    def test_explicit_value_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert sanitize_enabled(False) is False
        monkeypatch.delenv(SANITIZE_ENV_VAR)
        assert sanitize_enabled(True) is True

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_environment_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV_VAR, value)
        assert sanitize_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "nope"])
    def test_falsy_environment_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV_VAR, value)
        assert sanitize_enabled() is False

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert sanitize_enabled() is False

    def test_simulation_resolves_env_at_construction(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert make_sim().sanitize is True
        assert make_sim(sanitize=False).sanitize is False


class TestSessionSweep:
    def test_sanitize_counts_both_endpoints_every_session(self):
        sim = make_sim(sanitize=True)
        for i, item in enumerate(ITEMS):
            sim.apply_update(i % 4, item, Put(b"v"))
        stats = sim.run_round()
        assert stats.sessions > 0
        # Two endpoints swept per session attempt, including retries.
        assert sim.network_counters.sanitizer_checks >= 2 * stats.sessions

    def test_sanitize_off_runs_no_sweeps(self):
        sim = make_sim(sanitize=False)
        for i, item in enumerate(ITEMS):
            sim.apply_update(i % 4, item, Put(b"v"))
        sim.run_round()
        assert sim.network_counters.sanitizer_checks == 0

    def test_sanitize_does_not_change_convergence(self):
        results = []
        for sanitize in (False, True):
            sim = make_sim(sanitize=sanitize, seed=11)
            for i, item in enumerate(ITEMS):
                sim.apply_update(i % 4, item, Put(b"x%d" % i))
            rounds = sim.run_until_converged(max_rounds=50)
            results.append(rounds)
        assert results[0] == results[1]

    def test_corruption_is_caught_at_the_next_session(self):
        sim = make_sim(sanitize=True)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        # Corrupt a replica behind the protocol's back: claim an update
        # from node 2 that no log records.  The next session touching
        # node 1 must trip the sweep.
        victim = sim.nodes[1].node
        victim.dbvv.record_local_update_by(2)
        with pytest.raises(InvariantViolation):
            for _ in range(20):
                sim.run_round()

    def test_event_sim_sweeps_sessions_too(self):
        from repro.cluster.event_sim import EventDrivenSimulation

        sim = EventDrivenSimulation(
            make_factory("dbvv", 4, ITEMS), 4, ITEMS, seed=5, sanitize=True
        )
        for i, item in enumerate(ITEMS):
            sim.schedule_update(float(i + 1), i % 4, item, Put(b"v"))
        sim.run_until(200.0)
        assert sim.network_counters.sanitizer_checks > 0


class TestSweepHelper:
    def test_nodes_without_check_invariants_are_skipped(self):
        class Opaque:
            pass

        counters = OverheadCounters()
        sanitize_endpoints([Opaque(), Opaque()], (0, 1), counters)
        assert counters.sanitizer_checks == 0

    def test_each_swept_endpoint_is_counted(self):
        swept = []

        class Checkable:
            def __init__(self, node_id):
                self.node_id = node_id

            def check_invariants(self):
                swept.append(self.node_id)

        counters = OverheadCounters()
        nodes = [Checkable(0), Checkable(1), Checkable(2)]
        sanitize_endpoints(nodes, (0, 2), counters)
        assert swept == [0, 2]
        assert counters.sanitizer_checks == 2

    def test_violation_propagates(self):
        class Corrupt:
            def check_invariants(self):
                raise InvariantViolation("broken replica")

        with pytest.raises(InvariantViolation):
            sanitize_endpoints([Corrupt()], (0,), OverheadCounters())
