"""Unit tests for convergence checking and ground-truth staleness."""

from repro.cluster.convergence import GroundTruth, divergence_report, fingerprints_equal
from repro.core.protocol import DBVVProtocolNode
from repro.substrate.operations import Put

ITEMS = ("x", "y")


def make_nodes(n=3):
    return [DBVVProtocolNode(k, n, list(ITEMS)) for k in range(n)]


class TestFingerprints:
    def test_fresh_replicas_are_equal(self):
        assert fingerprints_equal(make_nodes())

    def test_diverged_replicas_detected(self):
        nodes = make_nodes()
        nodes[0].user_update("x", Put(b"v"))
        assert not fingerprints_equal(nodes)
        assert divergence_report(nodes) == {"x": 2}

    def test_single_node_is_trivially_converged(self):
        assert fingerprints_equal(make_nodes()[:1])
        assert fingerprints_equal([])

    def test_divergence_report_counts_distinct_values(self):
        nodes = make_nodes()
        nodes[0].user_update("x", Put(b"a"))
        nodes[1].user_update("x", Put(b"b"))
        assert divergence_report(nodes)["x"] == 3  # a, b, empty


class TestGroundTruth:
    def test_apply_tracks_ideal_state(self):
        truth = GroundTruth(ITEMS)
        truth.apply("x", Put(b"v1"))
        truth.apply("x", Put(b"v2"))
        assert truth.value("x") == b"v2"
        assert truth.value("y") == b""

    def test_stale_pairs_counts_lagging_node_items(self):
        truth = GroundTruth(ITEMS)
        nodes = make_nodes(3)
        truth.apply("x", Put(b"v"))
        nodes[0].user_update("x", Put(b"v"))
        assert truth.stale_pairs(nodes) == 2  # nodes 1 and 2 lag on x
        assert not truth.fully_current(nodes)

    def test_observe_appends_samples(self):
        truth = GroundTruth(ITEMS)
        nodes = make_nodes(2)
        truth.apply("x", Put(b"v"))
        nodes[0].user_update("x", Put(b"v"))
        sample = truth.observe(3.0, nodes)
        assert sample.time == 3.0
        assert sample.stale_pairs == 1
        assert sample.stale_nodes == 1
        assert truth.samples == [sample]

    def test_fully_current_after_propagation(self):
        truth = GroundTruth(ITEMS)
        nodes = make_nodes(2)
        truth.apply("x", Put(b"v"))
        nodes[0].user_update("x", Put(b"v"))
        from repro.interfaces import DIRECT_TRANSPORT

        nodes[1].sync_with(nodes[0], DIRECT_TRANSPORT)
        assert truth.fully_current(nodes)
