"""Unit tests for the simulated network."""

import random

import pytest

from repro.cluster.network import SimulatedNetwork
from repro.core.messages import YouAreCurrent
from repro.errors import MessageLostError, NodeDownError, UnknownNodeError
from repro.metrics.counters import OverheadCounters

MSG = YouAreCurrent(0)  # any sized message


class TestDelivery:
    def test_deliver_returns_message_and_charges(self):
        counters = OverheadCounters()
        net = SimulatedNetwork(3, counters=counters)
        assert net.deliver(0, 1, MSG) is MSG
        assert counters.messages_sent == 1
        assert counters.bytes_sent == MSG.wire_size()

    def test_link_stats_are_directional(self):
        net = SimulatedNetwork(3)
        net.deliver(0, 1, MSG)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)
        assert net.link_stats(0, 1).messages == 2
        assert net.link_stats(1, 0).messages == 1
        assert net.link_stats(2, 0).messages == 0
        assert net.total_messages() == 3
        assert net.total_bytes() == 3 * MSG.wire_size()

    def test_latency_accumulates(self):
        net = SimulatedNetwork(2, link_latency=2.5)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)
        assert net.latency_total == 5.0

    def test_unknown_nodes_rejected(self):
        net = SimulatedNetwork(2)
        with pytest.raises(UnknownNodeError):
            net.deliver(0, 9, MSG)
        with pytest.raises(UnknownNodeError):
            net.is_up(-1)


class TestLiveness:
    def test_down_destination_raises(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)

    def test_down_source_raises(self):
        net = SimulatedNetwork(2)
        net.set_down(0)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)

    def test_recovery_restores_delivery(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        net.set_up(1)
        net.deliver(0, 1, MSG)

    def test_no_charge_for_failed_connect(self):
        counters = OverheadCounters()
        net = SimulatedNetwork(2, counters=counters)
        net.set_down(1)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)
        assert counters.messages_sent == 0


class TestPartitions:
    def test_partitioned_nodes_cannot_communicate(self):
        net = SimulatedNetwork(4)
        net.partition([[0, 1], [2, 3]])
        net.deliver(0, 1, MSG)
        net.deliver(2, 3, MSG)
        with pytest.raises(NodeDownError):
            net.deliver(0, 2, MSG)
        assert not net.can_reach(1, 3)

    def test_unlisted_nodes_become_singletons(self):
        net = SimulatedNetwork(3)
        net.partition([[0, 1]])
        with pytest.raises(NodeDownError):
            net.deliver(0, 2, MSG)

    def test_heal_restores_full_connectivity(self):
        net = SimulatedNetwork(4)
        net.partition([[0], [1], [2], [3]])
        net.heal()
        net.deliver(0, 3, MSG)

    def test_node_in_two_groups_rejected(self):
        net = SimulatedNetwork(3)
        with pytest.raises(ValueError):
            net.partition([[0, 1], [1, 2]])

    def test_heal_does_not_revive_crashed_nodes(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        net.heal()
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)


class TestLoss:
    def test_loss_requires_rng(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(2, loss_rate=0.5)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(2, loss_rate=1.0, rng=random.Random(0))

    def test_lossy_network_drops_deterministically(self):
        net = SimulatedNetwork(2, loss_rate=0.5, rng=random.Random(42))
        outcomes = []
        for _ in range(50):
            try:
                net.deliver(0, 1, MSG)
                outcomes.append(True)
            except MessageLostError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)
        assert net.messages_dropped == outcomes.count(False)
        # Deterministic under the same seed.
        net2 = SimulatedNetwork(2, loss_rate=0.5, rng=random.Random(42))
        outcomes2 = []
        for _ in range(50):
            try:
                net2.deliver(0, 1, MSG)
                outcomes2.append(True)
            except MessageLostError:
                outcomes2.append(False)
        assert outcomes == outcomes2


class TestDynamicGrowth:
    def test_add_node_joins_up_and_reachable(self):
        net = SimulatedNetwork(2)
        new_id = net.add_node()
        assert new_id == 2
        assert net.n_nodes == 3
        assert net.is_up(2)
        net.deliver(0, 2, MSG)
        net.deliver(2, 1, MSG)

    def test_add_node_joins_default_partition_group(self):
        net = SimulatedNetwork(3)
        net.partition([[0, 1], [2]])
        new_id = net.add_node()
        # The newcomer lands in group 0 — reachable from nodes 0 and 1.
        assert net.can_reach(0, new_id)
        assert not net.can_reach(2, new_id)
        net.heal()
        assert net.can_reach(2, new_id)
