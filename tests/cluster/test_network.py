"""Unit tests for the simulated network."""

import functools
import random

import pytest

from repro.cluster.network import SimulatedNetwork as _SimulatedNetwork
from repro.core.messages import PropagationRequest, YouAreCurrent
from repro.core.version_vector import VersionVector
from repro.errors import (
    InvariantViolation,
    MessageLostError,
    NodeDownError,
    SimulationError,
    UnknownNodeError,
)
from repro.metrics.counters import OverheadCounters

# Most of this module asserts the *modelled* accounting semantics —
# deliver() returning the identical object and charging wire_size() —
# which encoded mode intentionally replaces.  Pin wire=False so the
# assertions hold under REPRO_WIRE=1 too; TestWireMode exercises the
# encoded path explicitly.
SimulatedNetwork = functools.partial(_SimulatedNetwork, wire=False)

MSG = YouAreCurrent(0)  # any sized message


class TestDelivery:
    def test_deliver_returns_message_and_charges(self):
        counters = OverheadCounters()
        net = SimulatedNetwork(3, counters=counters)
        assert net.deliver(0, 1, MSG) is MSG
        assert counters.messages_sent == 1
        assert counters.bytes_sent == MSG.wire_size()

    def test_link_stats_are_directional(self):
        net = SimulatedNetwork(3)
        net.deliver(0, 1, MSG)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)
        assert net.link_stats(0, 1).messages == 2
        assert net.link_stats(1, 0).messages == 1
        assert net.link_stats(2, 0).messages == 0
        assert net.total_messages() == 3
        assert net.total_bytes() == 3 * MSG.wire_size()

    def test_latency_accumulates(self):
        net = SimulatedNetwork(2, link_latency=2.5)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)
        assert net.latency_total == 5.0

    def test_unknown_nodes_rejected(self):
        net = SimulatedNetwork(2)
        with pytest.raises(UnknownNodeError):
            net.deliver(0, 9, MSG)
        with pytest.raises(UnknownNodeError):
            net.is_up(-1)


class TestLiveness:
    def test_down_destination_raises(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)

    def test_down_source_raises(self):
        net = SimulatedNetwork(2)
        net.set_down(0)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)

    def test_recovery_restores_delivery(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        net.set_up(1)
        net.deliver(0, 1, MSG)

    def test_no_charge_for_failed_connect(self):
        counters = OverheadCounters()
        net = SimulatedNetwork(2, counters=counters)
        net.set_down(1)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)
        assert counters.messages_sent == 0


class TestPartitions:
    def test_partitioned_nodes_cannot_communicate(self):
        net = SimulatedNetwork(4)
        net.partition([[0, 1], [2, 3]])
        net.deliver(0, 1, MSG)
        net.deliver(2, 3, MSG)
        with pytest.raises(NodeDownError):
            net.deliver(0, 2, MSG)
        assert not net.can_reach(1, 3)

    def test_unlisted_nodes_become_singletons(self):
        net = SimulatedNetwork(3)
        net.partition([[0, 1]])
        with pytest.raises(NodeDownError):
            net.deliver(0, 2, MSG)

    def test_heal_restores_full_connectivity(self):
        net = SimulatedNetwork(4)
        net.partition([[0], [1], [2], [3]])
        net.heal()
        net.deliver(0, 3, MSG)

    def test_node_in_two_groups_rejected(self):
        net = SimulatedNetwork(3)
        with pytest.raises(ValueError):
            net.partition([[0, 1], [1, 2]])

    def test_heal_does_not_revive_crashed_nodes(self):
        net = SimulatedNetwork(2)
        net.set_down(1)
        net.heal()
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)


class TestLoss:
    def test_loss_requires_rng(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(2, loss_rate=0.5)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(2, loss_rate=1.0, rng=random.Random(0))

    def test_lossy_network_drops_deterministically(self):
        net = SimulatedNetwork(2, loss_rate=0.5, rng=random.Random(42))
        outcomes = []
        for _ in range(50):
            try:
                net.deliver(0, 1, MSG)
                outcomes.append(True)
            except MessageLostError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)
        assert net.messages_dropped == outcomes.count(False)
        # Deterministic under the same seed.
        net2 = SimulatedNetwork(2, loss_rate=0.5, rng=random.Random(42))
        outcomes2 = []
        for _ in range(50):
            try:
                net2.deliver(0, 1, MSG)
                outcomes2.append(True)
            except MessageLostError:
                outcomes2.append(False)
        assert outcomes == outcomes2


class TestDropAccounting:
    def test_lost_message_is_charged_before_the_drop(self):
        """Regression: a dropped message left the sender — its bytes are
        real traffic and must hit the global and per-link counters, the
        same as a delivered one, *plus* the drop counters."""
        counters = OverheadCounters()
        # loss_rate ~ 1 is disallowed; 0.999 with any seed drops the
        # first message with near certainty — assert it actually did.
        net = SimulatedNetwork(2, counters=counters, loss_rate=0.999,
                               rng=random.Random(7))
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, MSG)
        assert counters.messages_sent == 1
        assert counters.bytes_sent == MSG.wire_size()
        assert net.link_stats(0, 1).messages == 1
        assert net.link_stats(0, 1).bytes == MSG.wire_size()
        assert net.link_stats(0, 1).dropped == 1
        assert net.messages_dropped == 1
        assert net.bytes_dropped == MSG.wire_size()

    def test_connect_time_failure_still_free(self):
        counters = OverheadCounters()
        net = SimulatedNetwork(2, counters=counters)
        net.set_down(1)
        with pytest.raises(NodeDownError):
            net.deliver(0, 1, MSG)
        assert counters.messages_sent == 0
        assert net.link_stats(0, 1).messages == 0


class TestLossWindows:
    def test_set_and_restore_loss_rate(self):
        net = SimulatedNetwork(2)
        net.set_loss_rate(0.999, rng=random.Random(3))
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, MSG)
        net.restore_loss_rate()
        assert net.loss_rate == 0.0
        net.deliver(0, 1, MSG)  # no loss after the window closes

    def test_restore_returns_to_constructor_rate(self):
        net = SimulatedNetwork(2, loss_rate=0.25, rng=random.Random(1))
        net.set_loss_rate(0.75)
        assert net.loss_rate == 0.75
        net.restore_loss_rate()
        assert net.loss_rate == 0.25

    def test_nonzero_rate_requires_rng(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.set_loss_rate(0.5)

    def test_rate_bounds_enforced(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.set_loss_rate(1.0, rng=random.Random(0))


class TestSessionScopes:
    def test_session_attributes_messages_and_bytes(self):
        net = SimulatedNetwork(2)
        scope = net.open_session(0, 1)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)
        assert scope.messages == 2
        assert scope.bytes_sent == 2 * MSG.wire_size()

    def test_closed_session_stops_attribution(self):
        net = SimulatedNetwork(2)
        scope = net.open_session(0, 1)
        net.deliver(0, 1, MSG)
        scope.close()
        net.deliver(0, 1, MSG)
        assert scope.messages == 1


class TestScriptedFaults:
    def test_armed_drop_kills_the_nth_session_message(self):
        net = SimulatedNetwork(2)
        net.arm_message_drop(nth_message=2)
        net.open_session(0, 1)
        net.deliver(0, 1, MSG)               # message 1 passes
        with pytest.raises(MessageLostError):
            net.deliver(1, 0, MSG)           # message 2 dropped
        assert net.armed_fault_count() == 0
        # One-shot: a later session is unaffected.
        net.open_session(0, 1)
        net.deliver(0, 1, MSG)
        net.deliver(1, 0, MSG)

    def test_armed_drop_ignores_sessionless_traffic(self):
        net = SimulatedNetwork(2)
        net.arm_message_drop(nth_message=1)
        net.deliver(0, 1, MSG)               # no session open: passes
        assert net.armed_fault_count() == 1

    def test_mid_session_crash_fires_between_messages(self):
        net = SimulatedNetwork(2)
        net.arm_mid_session_crash(1, after_messages=1)
        net.open_session(0, 1)
        net.deliver(0, 1, MSG)               # delivered; then node 1 dies
        assert not net.is_up(1)
        with pytest.raises(NodeDownError):
            net.deliver(1, 0, MSG)           # next message finds it dead
        assert net.armed_fault_count() == 0

    def test_mid_session_crash_waits_for_a_session_with_the_node(self):
        net = SimulatedNetwork(3)
        net.arm_mid_session_crash(2, after_messages=1)
        net.open_session(0, 1)
        net.deliver(0, 1, MSG)
        assert net.is_up(2)                  # uninvolved session: no fire
        net.open_session(0, 2)
        net.deliver(0, 2, MSG)
        assert not net.is_up(2)

    def test_arm_validation(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.arm_mid_session_crash(0, after_messages=0)
        with pytest.raises(ValueError):
            net.arm_message_drop(nth_message=0)


class TestDynamicGrowth:
    def test_add_node_joins_up_and_reachable(self):
        net = SimulatedNetwork(2)
        new_id = net.add_node()
        assert new_id == 2
        assert net.n_nodes == 3
        assert net.is_up(2)
        net.deliver(0, 2, MSG)
        net.deliver(2, 1, MSG)

    def test_add_node_during_partition_is_isolated(self):
        """Regression: a node added while a partition is active used to
        be dumped into group 0 unconditionally, silently making it
        reachable from one arbitrary side.  It must start in a fresh
        singleton group — unreachable from *every* existing group —
        until the partition heals."""
        net = SimulatedNetwork(3)
        net.partition([[0, 1], [2]])
        new_id = net.add_node()
        assert not net.can_reach(0, new_id)
        assert not net.can_reach(1, new_id)
        assert not net.can_reach(2, new_id)
        net.heal()
        assert net.can_reach(0, new_id)
        assert net.can_reach(2, new_id)

    def test_add_node_without_partition_is_reachable(self):
        """No partition active: the newcomer joins the single universal
        group and is immediately reachable."""
        net = SimulatedNetwork(3)
        new_id = net.add_node()
        assert net.can_reach(0, new_id)
        # Also after a partition came and went (heal resets groups).
        net.partition([[0, 1], [2, 3]])
        net.heal()
        later_id = net.add_node()
        assert net.can_reach(2, later_id)


class TestWireMode:
    """The network's encoded mode: real frames, byte-exact counters."""

    @staticmethod
    def make_wire_net(n=3, **kwargs):
        return _SimulatedNetwork(n, wire=True, **kwargs)

    def test_deliver_returns_decoded_equal_message(self):
        net = self.make_wire_net()
        request = PropagationRequest(1, VersionVector.from_counts((2, 0, 5)))
        delivered = net.deliver(0, 1, request)
        assert delivered == request
        assert delivered is not request  # it crossed the wire

    def test_counters_charge_frame_length_and_track_model(self):
        counters = OverheadCounters()
        net = self.make_wire_net(counters=counters)
        request = PropagationRequest(1, VersionVector.from_counts((2, 0, 5)))
        net.deliver(0, 1, request)
        frame_len = net._codec.encode(9 % 3, 2, request)  # fresh link
        assert counters.bytes_sent < request.wire_size()  # varints shrink it
        assert counters.modelled_bytes_sent == request.wire_size()
        assert net.link_stats(0, 1).bytes == counters.bytes_sent
        assert len(frame_len) == counters.bytes_sent

    def test_repeated_vector_shrinks_via_delta(self):
        net = self.make_wire_net()
        request = PropagationRequest(1, VersionVector.from_counts((7, 3, 9)))
        net.deliver(0, 1, request)
        first = net.link_stats(0, 1).bytes
        net.deliver(0, 1, request)
        second = net.link_stats(0, 1).bytes - first
        assert second < first  # unchanged vector went as an empty delta

    def test_unregistered_message_cannot_ship(self):
        from repro.errors import WireFormatError

        class NotRegistered:
            def wire_size(self):
                return 8

        net = self.make_wire_net()
        with pytest.raises(WireFormatError):
            net.deliver(0, 1, NotRegistered())

    def test_crash_and_recovery_invalidate_caches(self):
        net = self.make_wire_net()
        request = PropagationRequest(1, VersionVector.from_counts((1, 1, 1)))
        net.deliver(0, 1, request)
        assert net._codec.cache_size() > 0
        net.set_down(1)
        assert net._codec.cache_size() == 0
        net.set_up(1)
        # The next exchange must fall back to a full vector and succeed.
        delivered = net.deliver(0, 1, request)
        assert delivered == request

    def test_in_flight_drop_invalidates_link(self):
        net = self.make_wire_net()
        request = PropagationRequest(1, VersionVector.from_counts((4, 4, 4)))
        net.open_session(0, 1)
        net.deliver(0, 1, request)
        net.open_session(0, 1)
        net.arm_message_drop(nth_message=1)
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, request)
        assert net._codec.link_cache_size(0, 1) == 0, (
            "dropped frame must wipe the link's caches"
        )
        # Delivery after the drop re-sends a full vector cleanly.
        assert net.deliver(0, 1, request) == request

    def test_sanitize_crosschecks_roundtrip(self):
        net = self.make_wire_net(sanitize=True)
        request = PropagationRequest(1, VersionVector.from_counts((1, 2, 3)))
        assert net.deliver(0, 1, request) == request

    def test_sanitize_flags_codec_divergence(self):
        """Force a sender/receiver cache divergence the protocol layer
        would never produce, and check the cross-check catches the
        resulting wrong decode."""
        net = self.make_wire_net(sanitize=True)
        request = PropagationRequest(1, VersionVector.from_counts((5, 5, 5)))
        net.deliver(0, 1, request)
        # Corrupt the receiver's cached base behind the codec's back.
        net._codec._seen[(0, 1)]["dbvv"] = (0, 0, 0)
        bumped = PropagationRequest(1, VersionVector.from_counts((6, 5, 5)))
        with pytest.raises(InvariantViolation):
            net.deliver(0, 1, bumped)

    def test_wire_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "1")
        net = _SimulatedNetwork(2, wire=False)
        assert net.deliver(0, 1, MSG) is MSG

    def test_env_var_enables_wire(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "1")
        net = _SimulatedNetwork(2)
        assert net.wire is True


class TestStackedLossWindows:
    def test_windows_stack_and_unwind_in_nested_order(self):
        net = SimulatedNetwork(2, loss_rate=0.1, rng=random.Random(5))
        outer = net.push_loss_rate(0.5)
        assert net.loss_rate == 0.5
        inner = net.push_loss_rate(0.9)
        assert net.loss_rate == 0.9
        assert net.open_loss_windows() == 2
        net.pop_loss_rate(inner)
        assert net.loss_rate == 0.5
        net.pop_loss_rate(outer)
        assert net.loss_rate == 0.1
        assert net.open_loss_windows() == 0

    def test_staggered_close_keeps_the_younger_window_active(self):
        """The other ordering: the older window closes first while the
        younger one is still open — its rate must stay active (bare
        set/restore pairs used to clobber it back to the base rate)."""
        net = SimulatedNetwork(2, rng=random.Random(5))
        older = net.push_loss_rate(0.4)
        younger = net.push_loss_rate(0.8)
        net.pop_loss_rate(older)
        assert net.loss_rate == 0.8
        assert net.open_loss_windows() == 1
        net.pop_loss_rate(younger)
        assert net.loss_rate == 0.0

    def test_unknown_and_stale_tokens_raise(self):
        net = SimulatedNetwork(2, rng=random.Random(5))
        token = net.push_loss_rate(0.4)
        with pytest.raises(SimulationError):
            net.pop_loss_rate(token + 17)
        net.pop_loss_rate(token)
        with pytest.raises(SimulationError):
            net.pop_loss_rate(token)  # already closed

    def test_restore_refuses_while_windows_open(self):
        """``restore_loss_rate`` silently reinstating the base rate under
        an open stacked window was the overlapping-window bug; it must
        refuse until every window is popped."""
        net = SimulatedNetwork(2, rng=random.Random(5))
        token = net.push_loss_rate(0.4)
        with pytest.raises(SimulationError):
            net.restore_loss_rate()
        assert net.loss_rate == 0.4
        net.pop_loss_rate(token)
        net.restore_loss_rate()
        assert net.loss_rate == 0.0

    def test_push_validates_like_the_constructor(self):
        net = SimulatedNetwork(2)
        with pytest.raises(ValueError):
            net.push_loss_rate(0.5)       # nonzero rate without an RNG
        with pytest.raises(ValueError):
            net.push_loss_rate(1.0, rng=random.Random(0))
        assert net.open_loss_windows() == 0


class TestPerLinkDropAccounting:
    def test_bytes_dropped_split_per_link_and_delivered_balances(self):
        net = SimulatedNetwork(2, loss_rate=0.5, rng=random.Random(11))
        attempts, drops = 40, {(0, 1): 0, (1, 0): 0}
        for index in range(attempts):
            src, dst = (0, 1) if index % 2 == 0 else (1, 0)
            try:
                net.deliver(src, dst, MSG)
            except MessageLostError:
                drops[(src, dst)] += 1
        size = MSG.wire_size()
        for (src, dst), dropped in drops.items():
            stats = net.link_stats(src, dst)
            assert stats.bytes == (attempts // 2) * size
            assert stats.bytes_dropped == dropped * size
            assert stats.bytes_delivered == stats.bytes - stats.bytes_dropped
        assert net.bytes_dropped == sum(drops.values()) * size
        assert (
            net.total_bytes_delivered()
            == net.total_bytes() - net.bytes_dropped
        )

    def test_pristine_link_reports_zero_drops(self):
        net = SimulatedNetwork(3)
        net.deliver(0, 1, MSG)
        assert net.link_stats(0, 1).bytes_dropped == 0
        assert net.link_stats(0, 1).bytes_delivered == MSG.wire_size()
        assert net.link_stats(2, 1).bytes_delivered == 0


class TestFrameCensus:
    def test_census_counts_messages_by_type(self):
        net = SimulatedNetwork(2)
        request = PropagationRequest(1, VersionVector.from_counts((1, 0)))
        net.deliver(0, 1, request)
        net.deliver(1, 0, MSG)
        net.deliver(1, 0, MSG)
        assert net.frame_census == {
            "PropagationRequest": 1,
            "YouAreCurrent": 2,
        }

    def test_census_counts_dropped_frames_too(self):
        """A dropped frame left the sender; the census is a traffic
        census, not a delivery census."""
        net = SimulatedNetwork(2, loss_rate=0.999, rng=random.Random(7))
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, MSG)
        assert net.frame_census == {"YouAreCurrent": 1}
