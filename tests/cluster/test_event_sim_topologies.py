"""Event-driven simulation over structured topologies.

Crosses two features the focused tests exercise separately: per-node
asynchronous schedules and restricted-connectivity peer selection.
"""

from repro.cluster import topologies
from repro.cluster.event_sim import EventDrivenSimulation, NodeSchedule
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put

ITEMS = make_items(15)


def make_sim(selector, n_nodes, seed=7, period=3.0):
    return EventDrivenSimulation(
        make_factory("dbvv", n_nodes, ITEMS),
        n_nodes,
        ITEMS,
        selector=selector,
        schedules=[NodeSchedule(period=period, jitter=0.2)] * n_nodes,
        seed=seed,
    )


class TestTopologiesInEventTime:
    def test_line_topology_converges_asynchronously(self):
        sim = make_sim(topologies.line(5), 5)
        sim.schedule_update(1.0, 0, ITEMS[0], Put(b"end-to-end"))
        converged_at = sim.run_until_converged(deadline=2_000.0)
        assert sim.nodes[4].read(ITEMS[0]) == b"end-to-end"
        assert converged_at > 0

    def test_small_world_beats_line_end_to_end(self):
        def time_for(selector, n_nodes):
            sim = make_sim(selector, n_nodes, seed=9)
            sim.schedule_update(1.0, 0, ITEMS[0], Put(b"v"))
            return sim.run_until_converged(deadline=5_000.0)

        line_time = time_for(topologies.line(10), 10)
        sw_time = time_for(topologies.small_world(10, chords=5, seed=2), 10)
        assert sw_time <= line_time

    def test_tree_topology_with_heterogeneous_periods(self):
        """Root syncs often, leaves rarely — still converges."""
        selector = topologies.binary_tree(2)  # 7 nodes
        schedules = [NodeSchedule(period=2.0, jitter=0.1)] + [
            NodeSchedule(period=8.0, jitter=0.1)
        ] * 6
        sim = EventDrivenSimulation(
            make_factory("dbvv", 7, ITEMS), 7, ITEMS,
            selector=selector, schedules=schedules, seed=11,
        )
        sim.schedule_update(1.0, 6, ITEMS[2], Put(b"leaf-update"))
        sim.run_until_converged(deadline=3_000.0)
        assert all(node.read(ITEMS[2]) == b"leaf-update" for node in sim.nodes)
        assert sim.ground_truth.fully_current(sim.nodes)
