"""Unit tests for failure plans and the mid-push crash hook."""

import pytest

from repro.cluster.failures import (
    Crash,
    CrashAfterPartialPush,
    FailurePlan,
    HealEvent,
    PartitionEvent,
    Recover,
)
from repro.cluster.network import SimulatedNetwork


class TestFailurePlan:
    def test_crash_and_recover_fire_at_their_rounds(self):
        plan = FailurePlan([Crash(node=1, at_round=2), Recover(node=1, at_round=4)])
        net = SimulatedNetwork(3)
        assert plan.apply_round(1, net) == []
        assert net.is_up(1)
        plan.apply_round(2, net)
        assert not net.is_up(1)
        plan.apply_round(3, net)
        assert not net.is_up(1)
        plan.apply_round(4, net)
        assert net.is_up(1)

    def test_partition_and_heal(self):
        plan = FailurePlan([
            PartitionEvent(groups=((0, 1), (2,)), at_round=1),
            HealEvent(at_round=3),
        ])
        net = SimulatedNetwork(3)
        plan.apply_round(1, net)
        assert net.can_reach(0, 1)
        assert not net.can_reach(0, 2)
        plan.apply_round(3, net)
        assert net.can_reach(0, 2)

    def test_crashed_through_tracks_down_set(self):
        plan = FailurePlan([
            Crash(node=0, at_round=1),
            Crash(node=1, at_round=3),
            Recover(node=0, at_round=5),
        ])
        assert plan.crashed_through(0) == set()
        assert plan.crashed_through(2) == {0}
        assert plan.crashed_through(4) == {0, 1}
        assert plan.crashed_through(5) == {1}

    def test_multiple_events_same_round(self):
        plan = FailurePlan([Crash(node=0, at_round=1), Crash(node=1, at_round=1)])
        net = SimulatedNetwork(3)
        fired = plan.apply_round(1, net)
        assert len(fired) == 2
        assert not net.is_up(0) and not net.is_up(1)


class TestCrashAfterPartialPush:
    def test_crashes_after_quota(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=2)
        hook.note_push(0)
        assert not hook.should_crash_now(0, net)
        hook.note_push(0)
        assert hook.should_crash_now(0, net)
        assert hook.fired
        assert not net.is_up(0)

    def test_ignores_other_nodes(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=1)
        hook.note_push(2)
        assert not hook.should_crash_now(2, net)
        assert not hook.fired

    def test_fires_only_once(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=1)
        hook.note_push(0)
        assert hook.should_crash_now(0, net)
        net.set_up(0)
        hook.note_push(0)
        assert not hook.should_crash_now(0, net)
        assert net.is_up(0)
