"""Unit tests for failure plans and the mid-push crash hook."""

import pytest

from repro.cluster.failures import (
    Crash,
    CrashAfterPartialPush,
    CrashMidSession,
    FailurePlan,
    HealEvent,
    LossyWindow,
    PartitionEvent,
    Recover,
)
from repro.cluster.network import SimulatedNetwork
from repro.core.messages import YouAreCurrent
from repro.errors import MessageLostError

MSG = YouAreCurrent(0)


class TestFailurePlan:
    def test_crash_and_recover_fire_at_their_rounds(self):
        plan = FailurePlan([Crash(node=1, at_round=2), Recover(node=1, at_round=4)])
        net = SimulatedNetwork(3)
        assert plan.apply_round(1, net) == []
        assert net.is_up(1)
        plan.apply_round(2, net)
        assert not net.is_up(1)
        plan.apply_round(3, net)
        assert not net.is_up(1)
        plan.apply_round(4, net)
        assert net.is_up(1)

    def test_partition_and_heal(self):
        plan = FailurePlan([
            PartitionEvent(groups=((0, 1), (2,)), at_round=1),
            HealEvent(at_round=3),
        ])
        net = SimulatedNetwork(3)
        plan.apply_round(1, net)
        assert net.can_reach(0, 1)
        assert not net.can_reach(0, 2)
        plan.apply_round(3, net)
        assert net.can_reach(0, 2)

    def test_crashed_through_tracks_down_set(self):
        plan = FailurePlan([
            Crash(node=0, at_round=1),
            Crash(node=1, at_round=3),
            Recover(node=0, at_round=5),
        ])
        assert plan.crashed_through(0) == set()
        assert plan.crashed_through(2) == {0}
        assert plan.crashed_through(4) == {0, 1}
        assert plan.crashed_through(5) == {1}

    def test_multiple_events_same_round(self):
        plan = FailurePlan([Crash(node=0, at_round=1), Crash(node=1, at_round=1)])
        net = SimulatedNetwork(3)
        fired = plan.apply_round(1, net)
        assert len(fired) == 2
        assert not net.is_up(0) and not net.is_up(1)


class TestCrashedThroughEdgeCases:
    def test_same_round_crash_then_recover_applies_in_list_order(self):
        plan = FailurePlan([
            Crash(node=0, at_round=2),
            Recover(node=0, at_round=2),
        ])
        # Both fire at round 2 in list order: crash, then recover — the
        # node ends round 2's start up.
        assert plan.crashed_through(2) == set()
        assert plan.crashed_through(3) == set()

    def test_same_round_recover_then_crash_leaves_node_down(self):
        plan = FailurePlan([
            Crash(node=0, at_round=1),
            Recover(node=0, at_round=3),
            Crash(node=0, at_round=3),
        ])
        assert plan.crashed_through(2) == {0}
        # Round 3: recover fires first (list order), then the crash.
        assert plan.crashed_through(3) == {0}

    def test_mid_session_crash_counts_from_the_next_round(self):
        plan = FailurePlan([
            CrashMidSession(node=1, at_round=4),
            Recover(node=1, at_round=9),
        ])
        # The crash fires *during* round 4, so at the start of round 4
        # the node is still up; from round 5 on it is down.
        assert plan.crashed_through(4) == set()
        assert plan.crashed_through(5) == {1}
        assert plan.crashed_through(8) == {1}
        assert plan.crashed_through(9) == set()

    def test_mid_session_crash_same_round_as_plain_crash(self):
        plan = FailurePlan([
            CrashMidSession(node=0, at_round=2),
            Crash(node=1, at_round=2),
        ])
        # The start-of-round crash is visible at round 2; the
        # mid-session one only afterwards.
        assert plan.crashed_through(2) == {1}
        assert plan.crashed_through(3) == {0, 1}


class TestMidSessionEvents:
    def test_crash_mid_session_arms_the_network(self):
        plan = FailurePlan([CrashMidSession(node=1, at_round=2)])
        net = SimulatedNetwork(2)
        plan.apply_round(1, net)
        assert net.armed_fault_count() == 0
        plan.apply_round(2, net)
        assert net.armed_fault_count() == 1
        assert net.is_up(1)          # armed, not yet fired
        net.open_session(0, 1)
        net.deliver(0, 1, MSG)
        assert not net.is_up(1)      # fired between messages

    def test_lossy_window_opens_and_closes(self):
        plan = FailurePlan([
            LossyWindow(rate=0.999, at_round=2, until_round=4, seed=5),
        ])
        net = SimulatedNetwork(2)
        plan.apply_round(1, net)
        net.deliver(0, 1, MSG)                   # before the window
        fired = plan.apply_round(2, net)
        assert fired == [plan.events[0]]
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, MSG)               # inside the window
        plan.apply_round(3, net)                 # window still open
        assert net.loss_rate == 0.999
        plan.apply_round(4, net)                 # closes
        assert net.loss_rate == 0.0
        net.deliver(0, 1, MSG)

    def test_lossy_window_validates_bounds(self):
        with pytest.raises(ValueError):
            LossyWindow(rate=0.5, at_round=3, until_round=3)

    def test_crash_mid_session_validates_message_count(self):
        # Caught at construction, not rounds later when the plan arms
        # the network.
        with pytest.raises(ValueError):
            CrashMidSession(node=0, at_round=1, after_messages=0)

    def test_pending_after_sees_window_close(self):
        plan = FailurePlan([
            LossyWindow(rate=0.5, at_round=2, until_round=6),
        ])
        assert plan.pending_after(2)
        assert plan.pending_after(5)
        assert not plan.pending_after(6)

    def test_pending_after_sees_scheduled_recovery(self):
        plan = FailurePlan([
            Crash(node=0, at_round=1),
            Recover(node=0, at_round=4),
        ])
        assert plan.pending_after(3)
        assert not plan.pending_after(4)


class TestCrashAfterPartialPush:
    def test_crashes_after_quota(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=2)
        hook.note_push(0)
        assert not hook.should_crash_now(0, net)
        hook.note_push(0)
        assert hook.should_crash_now(0, net)
        assert hook.fired
        assert not net.is_up(0)

    def test_ignores_other_nodes(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=1)
        hook.note_push(2)
        assert not hook.should_crash_now(2, net)
        assert not hook.fired

    def test_fires_only_once(self):
        net = SimulatedNetwork(4)
        hook = CrashAfterPartialPush(node=0, after_peers=1)
        hook.note_push(0)
        assert hook.should_crash_now(0, net)
        net.set_up(0)
        hook.note_push(0)
        assert not hook.should_crash_now(0, net)
        assert net.is_up(0)


class TestOverlappingLossyWindows:
    """Overlapping :class:`LossyWindow` events in both close orderings.

    The plan drives the network's stacked ``push_loss_rate`` /
    ``pop_loss_rate`` API, so whichever window closes first, the rate
    falls back to the window still open — never silently to the base
    rate (the overlapping-window clobbering bug).
    """

    def rates_by_round(self, plan, last_round, n_nodes=2):
        net = SimulatedNetwork(n_nodes)
        rates = {}
        for round_no in range(last_round + 1):
            plan.apply_round(round_no, net)
            rates[round_no] = net.loss_rate
        return rates

    def test_nested_windows_inner_closes_first(self):
        plan = FailurePlan([
            LossyWindow(rate=0.3, at_round=1, until_round=5, seed=1),
            LossyWindow(rate=0.7, at_round=2, until_round=4, seed=2),
        ])
        assert self.rates_by_round(plan, 6) == {
            0: 0.0, 1: 0.3, 2: 0.7, 3: 0.7, 4: 0.3, 5: 0.0, 6: 0.0,
        }

    def test_staggered_windows_older_closes_first(self):
        plan = FailurePlan([
            LossyWindow(rate=0.3, at_round=1, until_round=4, seed=1),
            LossyWindow(rate=0.7, at_round=2, until_round=6, seed=2),
        ])
        assert self.rates_by_round(plan, 7) == {
            0: 0.0, 1: 0.3, 2: 0.7, 3: 0.7, 4: 0.7, 5: 0.7, 6: 0.0,
            7: 0.0,
        }

    def test_event_declaration_order_does_not_matter(self):
        windows = [
            LossyWindow(rate=0.3, at_round=1, until_round=4, seed=1),
            LossyWindow(rate=0.7, at_round=2, until_round=6, seed=2),
        ]
        forward = FailurePlan(list(windows))
        backward = FailurePlan(list(reversed(windows)))
        assert self.rates_by_round(forward, 7) == self.rates_by_round(
            backward, 7
        )
