"""Unit tests for the discrete-event engine."""

import pytest

from repro.cluster.events import EventLoop
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append("c"))
        loop.schedule_at(1.0, lambda: fired.append("a"))
        loop.schedule_at(2.0, lambda: fired.append("b"))
        loop.run_all()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(1.0, lambda t=tag: fired.append(t))
        loop.run_all()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_with_events(self):
        loop = EventLoop()
        times = []
        loop.schedule_at(2.5, lambda: times.append(loop.clock.now()))
        loop.run_all()
        assert times == [2.5]
        assert loop.clock.now() == 2.5

    def test_schedule_after_uses_current_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(5.0, lambda: loop.schedule_after(2.0, lambda: fired.append(loop.clock.now())))
        loop.run_all()
        assert fired == [7.0]

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda: None)
        loop.run_all()
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            loop.schedule_after(-1.0, lambda: None)


class TestExecution:
    def test_run_next_returns_false_when_empty(self):
        assert not EventLoop().run_next()

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(5.0, lambda: fired.append(5))
        assert loop.run_until(3.0) == 1
        assert fired == [1]
        assert loop.clock.now() == 3.0
        assert len(loop) == 1

    def test_run_until_fires_events_at_exact_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append(3))
        loop.run_until(3.0)
        assert fired == [3]

    def test_run_all_counts_events(self):
        loop = EventLoop()
        for k in range(4):
            loop.schedule_at(float(k), lambda: None)
        assert loop.run_all() == 4
        assert loop.events_fired == 4

    def test_runaway_schedule_detected(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule_after(1.0, reschedule)

        loop.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run_all(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule_at(1.0, lambda: fired.append("x"))
        loop.cancel(handle)
        loop.run_all()
        assert fired == []
        assert handle.cancelled

    def test_cancelled_events_not_counted_as_pending(self):
        loop = EventLoop()
        handle = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        loop.cancel(handle)
        assert len(loop) == 1

    def test_handle_exposes_time_and_label(self):
        loop = EventLoop()
        handle = loop.schedule_at(4.0, lambda: None, label="sync")
        assert handle.time == 4.0
        assert handle.label == "sync"
