"""Incremental convergence/staleness tracking, and the simulation
accounting fixes that landed with it.

The tentpole contract under test: with tracking on, every query answer
(``converged()`` via state versions, ``stale_pairs`` via the ground
truth's dirty frontier) must equal what the from-scratch recomputation
would have said — across workloads, protocols, faults, and membership
growth.  The hypothesis machine at the bottom drives exactly that
equivalence; the unit tests pin the pieces.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.convergence import GroundTruth, fingerprints_equal
from repro.cluster.failures import Crash, CrashMidSession, FailurePlan, Recover
from repro.cluster.network import SimulatedNetwork
from repro.cluster.simulation import ClusterSimulation, RetryPolicy
from repro.core.messages import YouAreCurrent
from repro.core.protocol import DBVVProtocolNode
from repro.errors import (
    ConvergenceError,
    InvariantViolation,
    MessageLostError,
    ReplicationError,
)
from repro.experiments.common import make_factory, make_items
from repro.interfaces import ContentDigest, StateVersion, value_digest
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Put

ITEMS = make_items(12)


def make_sim(protocol="dbvv", n_nodes=4, seed=5, **kwargs):
    return ClusterSimulation(
        make_factory(protocol, n_nodes, ITEMS), n_nodes, ITEMS, seed=seed, **kwargs
    )


class TestContentDigest:
    def test_fresh_digest_is_zero(self):
        assert ContentDigest().token() == 0

    def test_empty_values_do_not_contribute(self):
        d = ContentDigest()
        d.replace("a", b"", b"")
        assert d.token() == 0

    def test_replace_round_trips(self):
        d = ContentDigest()
        d.replace("a", b"", b"x")
        d.replace("b", b"", b"y")
        d.replace("a", b"x", b"")
        d.replace("b", b"y", b"")
        assert d.token() == 0

    def test_order_independent(self):
        d1, d2 = ContentDigest(), ContentDigest()
        d1.replace("a", b"", b"x")
        d1.replace("b", b"", b"y")
        d2.replace("b", b"", b"y")
        d2.replace("a", b"", b"x")
        assert d1.token() == d2.token()

    def test_item_name_is_part_of_the_hash(self):
        d1, d2 = ContentDigest(), ContentDigest()
        d1.replace("a", b"", b"x")
        d2.replace("b", b"", b"x")
        assert d1.token() != d2.token()

    def test_recompute_matches_incremental(self):
        d = ContentDigest()
        d.replace("a", b"", b"1")
        d.replace("b", b"", b"2")
        d.replace("a", b"1", b"3")
        fresh = ContentDigest()
        fresh.recompute([("a", b"3"), ("b", b"2"), ("c", b"")])
        assert d.token() == fresh.token()

    def test_value_digest_separates_name_and_value(self):
        # The separator prevents ("ab", "c") colliding with ("a", "bc").
        assert value_digest("ab", b"c") != value_digest("a", b"bc")


class TestStateVersion:
    def test_matches_on_kind_and_digest(self):
        assert StateVersion("dbvv", 7).matches(StateVersion("dbvv", 7))
        assert not StateVersion("dbvv", 7).matches(StateVersion("dbvv", 8))
        assert not StateVersion("dbvv", 7).matches(StateVersion("lotus", 7))

    def test_certificate_is_informational_only(self):
        # A conflicted replica reports no certificate, but its digest
        # still decides equality (DBVV equality stops implying state
        # equality once a conflict froze a replica's accounting).
        with_cert = StateVersion("dbvv", 7, certificate=(1, 2))
        without = StateVersion("dbvv", 7, certificate=None)
        assert with_cert.matches(without)
        assert without.matches(with_cert)

    @pytest.mark.parametrize(
        "protocol",
        [
            "dbvv", "dbvv-delta", "per-item-vv", "lotus",
            "oracle-push", "wuu-bernstein", "agrawal-malpani",
        ],
    )
    def test_every_protocol_reports_a_version(self, protocol):
        sim = make_sim(protocol, n_nodes=2)
        version = sim.nodes[0].state_version()
        assert version is not None
        assert version.kind == protocol
        assert version.digest == 0  # all-empty replica

    def test_dbvv_certificate_suppressed_under_conflict(self):
        sim = make_sim("dbvv", n_nodes=2)
        assert sim.nodes[0].state_version().certificate == (0, 0)
        sim.apply_update(0, ITEMS[0], Put(b"a"))
        sim.apply_update(1, ITEMS[0], Put(b"b"))
        sim.run_round()  # conflict detected at some endpoint
        conflicted = [n for n in sim.nodes if n.conflict_count() > 0]
        assert conflicted
        assert all(n.state_version().certificate is None for n in conflicted)


class TestFingerprintsEqual:
    def test_fast_path_agrees_on_identical_nodes(self):
        sim = make_sim("per-item-vv", n_nodes=3)
        assert fingerprints_equal(sim.nodes)
        assert fingerprints_equal(sim.nodes, use_versions=False)

    def test_fast_path_agrees_on_diverged_nodes(self):
        sim = make_sim("per-item-vv", n_nodes=3)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        assert not fingerprints_equal(sim.nodes)
        assert not fingerprints_equal(sim.nodes, use_versions=False)

    def test_versionless_node_falls_back_to_full(self):
        class AdHoc:
            def state_version(self):
                return None

            def state_fingerprint(self):
                return {ITEMS[0]: b"v"}

        nodes = [AdHoc(), AdHoc()]
        assert fingerprints_equal(nodes)  # full path, no versions

    def test_crosscheck_counts_and_passes(self):
        sim = make_sim(n_nodes=3)
        counters = OverheadCounters()
        assert fingerprints_equal(sim.nodes, crosscheck=True, counters=counters)
        assert counters.tracking_crosschecks == 1

    def test_crosscheck_catches_a_lying_version(self):
        sim = make_sim("per-item-vv", n_nodes=2)
        sim.apply_update(0, ITEMS[0], Put(b"v"))  # states now differ
        lie = StateVersion("per-item-vv", 0)
        for node in sim.nodes:
            node.state_version = lambda: lie  # type: ignore[method-assign]
        with pytest.raises(InvariantViolation):
            fingerprints_equal(sim.nodes, crosscheck=True)


class TestGroundTruthTracking:
    def test_subset_queries_fall_back_to_recompute(self):
        sim = make_sim(n_nodes=3)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        subset = sim.nodes[1:]
        assert not sim.ground_truth.tracking(subset)
        # Nodes 1 and 2 each lag on one item.
        assert sim.ground_truth.stale_pairs(subset) == 2

    def test_untracked_ground_truth_still_works(self):
        truth = GroundTruth(tuple(ITEMS))
        sim = make_sim(n_nodes=2, incremental_tracking=False)
        truth.apply(ITEMS[0], Put(b"v"))
        assert truth.stale_pairs(sim.nodes) == 2

    def test_updater_itself_is_reexamined(self):
        # A second update through the same node must dirty the pair
        # again — the truth moved under the updater too.
        sim = make_sim(n_nodes=2)
        sim.apply_update(0, ITEMS[0], Put(b"a"))
        assert sim.ground_truth.stale_pairs(sim.nodes) == 1  # node 1 lags
        sim.apply_update(0, ITEMS[0], Put(b"b"))
        assert sim.ground_truth.stale_pairs(sim.nodes) == 1
        assert sim.ground_truth.recompute_stale_pairs(sim.nodes) == 1

    def test_adoptions_clear_staleness_incrementally(self):
        sim = make_sim(n_nodes=3)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_until_converged(max_rounds=50)
        assert sim.ground_truth.stale_pairs(sim.nodes) == 0
        assert sim.ground_truth.recompute_stale_pairs(sim.nodes) == 0

    def test_reexaminations_are_frontier_sized(self):
        sim = make_sim(n_nodes=4)
        sim.run_round()  # drain the everything-starts-dirty frontier
        before = sim.network_counters.staleness_reexaminations
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.ground_truth.stale_pairs(sim.nodes)
        examined = sim.network_counters.staleness_reexaminations - before
        # One item dirtied at each of 4 nodes — nowhere near n*N = 48.
        assert examined == 4

    def test_add_node_starts_fully_dirty(self):
        sim = make_sim(n_nodes=2)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_until_converged(max_rounds=30)
        sim.add_node(
            lambda node_id, counters, n: DBVVProtocolNode(
                node_id, n, ITEMS, counters=counters
            )
        )
        assert sim.ground_truth.stale_pairs(sim.nodes) == 1  # the newcomer
        sim.run_until_converged(max_rounds=60)
        assert sim.ground_truth.stale_pairs(sim.nodes) == 0
        assert sim.ground_truth.recompute_stale_pairs(sim.nodes) == 0

    def test_legacy_mode_keeps_recomputing(self):
        sim = make_sim(n_nodes=3, incremental_tracking=False)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        assert not sim.ground_truth.tracking(sim.nodes)
        sim.run_until_converged(max_rounds=50)
        assert sim.ground_truth.stale_pairs(sim.nodes) == 0
        assert sim.network_counters.staleness_reexaminations == 0

    def test_sanitize_mode_crosschecks_every_round(self):
        sim = make_sim(n_nodes=3, sanitize=True)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_round()
        assert sim.network_counters.tracking_crosschecks > 0


class TestAccountingFixes:
    """Satellites: total_counters completeness and the full-mesh retry
    drain."""

    def test_total_counters_include_network_accounting(self):
        plan = FailurePlan([
            CrashMidSession(node=1, at_round=2),
            Recover(node=1, at_round=4),
        ])
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        for _ in range(8):
            sim.run_round()
        net = sim.network_counters
        assert net.sessions_aborted > 0
        assert net.sessions_retried > 0
        total = sim.total_counters
        # These all lived only on the network's counters and used to be
        # dropped by the hand-copying merge.
        assert total.sessions_aborted == net.sessions_aborted
        assert total.sessions_retried == net.sessions_retried
        assert (
            total.bytes_wasted_in_aborted_sessions
            == net.bytes_wasted_in_aborted_sessions
        )
        assert (
            total.staleness_reexaminations == net.staleness_reexaminations > 0
        )

    def test_full_mesh_rounds_run_due_retries(self):
        plan = FailurePlan([Crash(node=1, at_round=1), Recover(node=1, at_round=2)])
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        first = sim.run_full_mesh_round()
        assert first.failed_sessions > 0
        assert sim._pending_retries
        second = sim.run_full_mesh_round()
        assert second.retried_sessions > 0
        assert not sim._pending_retries
        assert sim.network_counters.sessions_retried == second.retried_sessions


class TestDropCrashComposition:
    """Satellite: an armed mid-session crash whose trigger message is
    itself dropped must still fire."""

    MSG = YouAreCurrent(0)

    def test_crash_fires_even_when_trigger_message_drops(self):
        net = SimulatedNetwork(2)
        net.arm_message_drop(nth_message=1)
        net.arm_mid_session_crash(1, after_messages=1)
        net.open_session(0, 1)
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, self.MSG)
        # The message left node 0 whether or not it arrived, so the
        # armed crash consumed it and fired.
        assert not net.is_up(1)
        assert net.armed_fault_count() == 0

    def test_drop_alone_still_drops(self):
        net = SimulatedNetwork(2)
        net.arm_message_drop(nth_message=1)
        net.open_session(0, 1)
        with pytest.raises(MessageLostError):
            net.deliver(0, 1, self.MSG)
        assert net.is_up(0) and net.is_up(1)
        assert net.messages_dropped == 1


class TestConvergenceError:
    def test_non_convergence_raises_typed_error(self):
        # The paper's stranded-peer scenario: the originator pushes to
        # one peer, crashes, and push-without-forwarding can never
        # repair the divergence between the survivors.
        sim = make_sim("oracle-push", n_nodes=3)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        stats = sim.nodes[0].sync_with(sim.nodes[1], sim.network)
        sim.ground_truth.note_adoptions(stats.adopted_items)
        sim.network.set_down(0)
        with pytest.raises(ConvergenceError):
            sim.run_until_converged(max_rounds=5)

    def test_taxonomy_and_assertion_compatibility(self):
        # In the ReplicationError taxonomy, and still an AssertionError
        # so pre-existing pytest.raises(AssertionError) tests hold.
        assert issubclass(ConvergenceError, ReplicationError)
        assert issubclass(ConvergenceError, AssertionError)


# -- the equivalence property ------------------------------------------------

_PROTOCOLS = (
    "dbvv", "dbvv-delta", "per-item-vv", "lotus",
    "oracle-push", "wuu-bernstein", "agrawal-malpani",
)

_steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=len(ITEMS) - 1),
            st.binary(min_size=0, max_size=6),
        ),
        st.tuples(st.just("round")),
        st.tuples(st.just("crash"), st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("recover"), st.integers(min_value=1, max_value=3)),
    ),
    min_size=1,
    max_size=25,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    protocol=st.sampled_from(_PROTOCOLS),
    n_nodes=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    steps=_steps,
    grow=st.booleans(),
)
def test_incremental_always_equals_recompute(protocol, n_nodes, seed, steps, grow):
    """Across random workloads, faults, and membership growth, the
    incremental answers equal the from-scratch ones at every step."""
    sim = ClusterSimulation(
        make_factory(protocol, n_nodes, ITEMS), n_nodes, ITEMS, seed=seed
    )
    for step in steps:
        kind = step[0]
        if kind == "update":
            _, node, item_idx, payload = step
            node %= sim.n_nodes
            if sim.network.is_up(node):
                sim.apply_update(node, ITEMS[item_idx], Put(payload))
        elif kind == "round":
            sim.run_round()
        elif kind == "crash":
            node = step[1] % sim.n_nodes
            if node != 0:  # keep at least node 0 alive
                sim.network.set_down(node)
        elif kind == "recover":
            sim.network.set_up(step[1] % sim.n_nodes)
        assert sim.ground_truth.stale_pairs(sim.nodes) == (
            sim.ground_truth.recompute_stale_pairs(sim.nodes)
        ), f"divergence after {kind} step"
        live = [sim.nodes[k] for k in sim.up_nodes()]
        assert fingerprints_equal(live) == fingerprints_equal(
            live, use_versions=False
        )
    if grow and protocol in ("dbvv", "dbvv-delta"):
        node_cls = type(sim.nodes[0])
        sim.add_node(
            lambda node_id, counters, n: node_cls(
                node_id, n, ITEMS, counters=counters
            )
        )
        assert sim.ground_truth.stale_pairs(sim.nodes) == (
            sim.ground_truth.recompute_stale_pairs(sim.nodes)
        )
    for node in range(sim.n_nodes):
        sim.network.set_up(node)
    for _ in range(4):
        sim.run_round()
        assert sim.ground_truth.stale_pairs(sim.nodes) == (
            sim.ground_truth.recompute_stale_pairs(sim.nodes)
        )
    live = [sim.nodes[k] for k in sim.up_nodes()]
    assert fingerprints_equal(live) == fingerprints_equal(
        live, use_versions=False
    )
