"""Unit and integration tests for the cluster simulation driver."""

import pytest

from repro.cluster.failures import (
    Crash,
    CrashMidSession,
    FailurePlan,
    Recover,
)
from repro.cluster.scheduler import RingSelector
from repro.cluster.simulation import ClusterSimulation, RetryPolicy
from repro.errors import NodeDownError
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put

ITEMS = make_items(20)


def make_sim(protocol="dbvv", n_nodes=4, seed=5, **kwargs):
    return ClusterSimulation(
        make_factory(protocol, n_nodes, ITEMS), n_nodes, ITEMS, seed=seed, **kwargs
    )


class TestBasics:
    def test_nodes_are_constructed_with_ids(self):
        sim = make_sim(n_nodes=3)
        assert [node.node_id for node in sim.nodes] == [0, 1, 2]

    def test_apply_update_reaches_node_and_ground_truth(self):
        sim = make_sim()
        sim.apply_update(1, ITEMS[0], Put(b"v"))
        assert sim.nodes[1].read(ITEMS[0]) == b"v"
        assert sim.ground_truth.value(ITEMS[0]) == b"v"

    def test_update_on_crashed_node_rejected(self):
        sim = make_sim()
        sim.network.set_down(1)
        with pytest.raises(NodeDownError):
            sim.apply_update(1, ITEMS[0], Put(b"v"))

    def test_round_stats_accumulate_in_history(self):
        sim = make_sim()
        sim.run_round()
        sim.run_round()
        assert [s.round_no for s in sim.history] == [1, 2]
        assert all(s.sessions == 4 for s in sim.history)

    def test_identical_replicas_make_identical_sessions(self):
        sim = make_sim()
        stats = sim.run_round()
        assert stats.identical_sessions == stats.sessions
        assert stats.items_transferred == 0


class TestConvergence:
    def test_run_until_converged_spreads_one_update(self):
        sim = make_sim()
        sim.apply_update(0, ITEMS[3], Put(b"v"))
        rounds = sim.run_until_converged(max_rounds=50)
        assert rounds >= 1
        assert all(node.read(ITEMS[3]) == b"v" for node in sim.nodes)
        assert sim.ground_truth.fully_current(sim.nodes)

    def test_already_converged_returns_zero_rounds(self):
        sim = make_sim()
        assert sim.run_until_converged() == 0

    def test_non_convergence_raises(self):
        sim = make_sim()
        # Plant a conflict: the DBVV protocol freezes conflicting items,
        # so replicas can never converge without resolution.
        sim.apply_update(0, ITEMS[0], Put(b"a"))
        sim.apply_update(1, ITEMS[0], Put(b"b"))
        with pytest.raises(AssertionError):
            sim.run_until_converged(max_rounds=10)
        assert sim.total_conflicts() > 0

    def test_deterministic_under_seed(self):
        def run(seed):
            sim = make_sim(seed=seed)
            sim.apply_update(0, ITEMS[0], Put(b"v"))
            rounds = sim.run_until_converged(max_rounds=50)
            return rounds, sim.total_counters.snapshot()

        assert run(9) == run(9)
        # Different seeds may differ (not asserted — just must not crash).
        run(10)

    def test_ring_selector_respected(self):
        sim = make_sim(selector=RingSelector())
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_until_converged(max_rounds=20)


class TestFailures:
    def test_sessions_with_crashed_peer_fail(self):
        sim = make_sim(n_nodes=3, failure_plan=FailurePlan([Crash(node=2, at_round=1)]))
        stats = sim.run_round()
        # Node 2 runs no session; some sessions may target node 2.
        assert stats.sessions == 2
        assert sim.up_nodes() == [0, 1]

    def test_recovered_node_catches_up(self):
        plan = FailurePlan([Crash(node=2, at_round=1), Recover(node=2, at_round=5)])
        sim = make_sim(n_nodes=3, failure_plan=plan)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        for _ in range(4):
            sim.run_round()
        assert sim.converged()  # live nodes only
        assert sim.nodes[2].read(ITEMS[0]) == b""
        sim.run_until_converged(max_rounds=30)
        assert sim.nodes[2].read(ITEMS[0]) == b"v"

    def test_full_mesh_round_covers_all_pairs(self):
        sim = make_sim(n_nodes=3)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        stats = sim.run_full_mesh_round()
        assert stats.sessions == 6
        assert sim.converged()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_rounds=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_rounds=3, max_backoff_rounds=2)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=5, backoff_rounds=1, max_backoff_rounds=4)
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [1, 2, 4, 4]

    def test_default_policy_disables_retries(self):
        assert not RetryPolicy().retries_enabled()
        plan = FailurePlan([Crash(node=1, at_round=1)])
        sim = make_sim(n_nodes=3, failure_plan=plan)
        for _ in range(4):
            stats = sim.run_round()
            assert stats.retried_sessions == 0
        assert sim.network_counters.sessions_retried == 0

    def test_aborted_session_is_retried_after_backoff(self):
        plan = FailurePlan([
            Crash(node=2, at_round=1),
            Recover(node=2, at_round=2),
        ])
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_rounds=1),
            selector=RingSelector(),
        )
        # Round 1: node 2 is down; with a ring selector node 1 targets
        # node 2 and fails, scheduling a retry for round 2.
        stats1 = sim.run_round()
        assert stats1.failed_sessions > 0
        stats2 = sim.run_round()
        assert stats2.retried_sessions == stats1.failed_sessions
        assert (
            sim.network_counters.sessions_retried == stats1.failed_sessions
        )

    def test_retry_respects_max_attempts(self):
        plan = FailurePlan([Crash(node=2, at_round=1)])  # never recovers
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_rounds=1),
            selector=RingSelector(),
        )
        total_retries = 0
        for _ in range(6):
            total_retries += sim.run_round().retried_sessions
        # Each round node 1's fresh session against dead node 2 earns
        # exactly one retry (attempt 2 of 2) — never a third attempt, so
        # retries never exceed one per originating round.
        assert 0 < total_retries <= 6

    def test_alternate_peer_fallback_reaches_someone_alive(self):
        plan = FailurePlan([Crash(node=2, at_round=1)])
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_rounds=1, alternate_peer=True
            ),
            selector=RingSelector(),
        )
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        stats1 = sim.run_round()   # node 1 -> dead node 2: fails
        assert stats1.failed_sessions > 0
        stats2 = sim.run_round()   # retry redirected to a live peer
        assert stats2.retried_sessions > 0
        # The ring still points node 1 at dead node 2 (one fresh failure
        # per round), but the redirected retry hit a live peer and added
        # no failure of its own.
        assert stats2.failed_sessions == stats1.failed_sessions

    def test_mid_session_crash_aborts_and_accounts(self):
        plan = FailurePlan([CrashMidSession(node=2, at_round=2)])
        sim = make_sim(
            n_nodes=3,
            failure_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, alternate_peer=True),
        )
        sim.apply_update(2, ITEMS[0], Put(b"payload"))
        aborted_rounds = [sim.run_round() for _ in range(3)]
        counters = sim.network_counters
        assert counters.sessions_aborted >= 1
        assert counters.bytes_wasted_in_aborted_sessions > 0
        phase_keys = [
            k for k in counters.extra if k.startswith("sessions_aborted_at_")
        ]
        assert phase_keys, "abort must be attributed to a phase"
        assert any(r.bytes_wasted > 0 for r in aborted_rounds)
        assert any(r.aborted_by_phase for r in aborted_rounds)

    def test_invariants_checked_after_faults(self):
        """check_invariants_on_fault is on by default and must actually
        run — give it a scenario with aborted DBVV sessions and make
        sure nothing trips (the deep assertion that faults never corrupt
        state lives in the property tests)."""
        plan = FailurePlan([
            CrashMidSession(node=0, at_round=1),
            Recover(node=0, at_round=3),
        ])
        sim = make_sim(n_nodes=4, failure_plan=plan)
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        for _ in range(5):
            sim.run_round()
        assert sim.check_invariants_on_fault


class TestAccounting:
    def test_total_counters_include_network_traffic(self):
        sim = make_sim()
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_round()
        totals = sim.total_counters
        assert totals.messages_sent > 0
        assert totals.bytes_sent > 0

    def test_stale_pairs_tracked_per_round(self):
        sim = make_sim()
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        stats = sim.run_round()
        assert stats.stale_pairs is not None
        sim.run_until_converged(max_rounds=50)
        assert sim.history[-1].stale_pairs in (0, None) or sim.run_round().stale_pairs == 0


class TestHistoryTable:
    def test_history_table_renders_and_exports(self):
        sim = make_sim()
        sim.apply_update(0, ITEMS[0], Put(b"v"))
        sim.run_round()
        sim.run_round()
        table = sim.history_table("demo")
        rendered = table.render()
        assert "demo" in rendered
        assert "stale pairs" in rendered
        csv = table.to_csv()
        assert csv.splitlines()[0].startswith("round,sessions")
        assert len(csv.splitlines()) == 3  # header + 2 rounds
