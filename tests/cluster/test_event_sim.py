"""Tests for the event-driven (asynchronous) simulation."""

import pytest

from repro.cluster.event_sim import EventDrivenSimulation, NodeSchedule
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put

ITEMS = make_items(20)


def make_sim(n_nodes=4, seed=3, schedules=None):
    return EventDrivenSimulation(
        make_factory("dbvv", n_nodes, ITEMS),
        n_nodes,
        ITEMS,
        schedules=schedules,
        seed=seed,
    )


class TestSchedules:
    def test_jittered_gaps_stay_in_band(self):
        import random

        schedule = NodeSchedule(period=10.0, jitter=0.2)
        rng = random.Random(0)
        gaps = [schedule.next_gap(rng) for _ in range(200)]
        assert all(8.0 <= gap <= 12.0 for gap in gaps)
        assert len(set(gaps)) > 100  # actually jittered

    def test_zero_jitter_is_exact(self):
        import random

        schedule = NodeSchedule(period=7.0, jitter=0.0)
        assert schedule.next_gap(random.Random(0)) == 7.0

    def test_schedule_count_must_match_nodes(self):
        with pytest.raises(ValueError):
            make_sim(n_nodes=3, schedules=[NodeSchedule()])


class TestAsynchronousPropagation:
    def test_update_spreads_without_global_rounds(self):
        sim = make_sim()
        sim.schedule_update(1.0, 0, ITEMS[0], Put(b"v"))
        converged_at = sim.run_until_converged(deadline=500.0)
        assert converged_at < 200.0
        assert all(node.read(ITEMS[0]) == b"v" for node in sim.nodes)
        assert sim.ground_truth.fully_current(sim.nodes)

    def test_sessions_follow_per_node_periods(self):
        fast = NodeSchedule(period=1.0, jitter=0.0)
        slow = NodeSchedule(period=100.0, jitter=0.0)
        sim = make_sim(n_nodes=2, schedules=[fast, slow])
        sim.run_until(50.0)
        # Node 0 synced ~50 times; node 1 never got its first slot.
        assert 45 <= sim.sessions_run <= 55

    def test_deterministic_under_seed(self):
        def one_run():
            sim = make_sim(seed=9)
            sim.schedule_update(2.0, 1, ITEMS[3], Put(b"x"))
            sim.run_until(100.0)
            return sim.sessions_run, sim.total_counters.snapshot()

        assert one_run() == one_run()

    def test_updates_interleave_with_sessions_at_event_granularity(self):
        sim = make_sim()
        for step in range(10):
            sim.schedule_update(
                float(step) + 0.5, step % 4, ITEMS[step], Put(f"v{step}".encode())
            )
        sim.run_until_converged(deadline=1000.0)
        assert sim.ground_truth.fully_current(sim.nodes)


class TestFailuresInTime:
    def test_crashed_node_skips_sessions_and_recovers(self):
        sim = make_sim(n_nodes=3, schedules=[NodeSchedule(5.0, 0.0)] * 3)
        sim.schedule_update(1.0, 0, ITEMS[0], Put(b"v"))
        sim.schedule_crash(2.0, 2)
        sim.schedule_recovery(60.0, 2)
        sim.run_until(50.0)
        assert sim.nodes[2].read(ITEMS[0]) == b""
        assert sim.converged()  # live nodes only
        sim.run_until_converged(deadline=300.0)
        assert sim.nodes[2].read(ITEMS[0]) == b"v"

    def test_update_on_crashed_node_is_rejected(self):
        sim = make_sim(n_nodes=3)
        sim.schedule_crash(1.0, 1)
        sim.schedule_update(2.0, 1, ITEMS[0], Put(b"v"))
        sim.run_until(10.0)
        assert sim.updates_rejected == 1
        assert sim.ground_truth.value(ITEMS[0]) == b""

    def test_non_convergence_hits_deadline(self):
        sim = make_sim(n_nodes=3)
        # A planted conflict can never converge without resolution.
        sim.schedule_update(1.0, 0, ITEMS[0], Put(b"a"))
        sim.schedule_update(1.0, 1, ITEMS[0], Put(b"b"))
        with pytest.raises(AssertionError):
            sim.run_until_converged(deadline=200.0)


class TestCoverageInEventTime:
    def test_coverage_builds_over_simulated_time(self):
        sim = make_sim(n_nodes=4, seed=12)
        sim.run_until_converged(deadline=1000.0)
        # Convergence of a fresh cluster is trivial; keep going until
        # the Theorem 5 premise is satisfied in event time too.
        while not sim.coverage.is_fully_covered():
            sim.run_until(sim.now + 10.0)
            assert sim.now < 2_000.0
        assert sim.coverage.coverage_time is not None
        assert sim.coverage.coverage_time <= sim.now

    def test_failed_sessions_do_not_count_as_coverage(self):
        sim = make_sim(n_nodes=2, seed=13)
        sim.schedule_crash(0.5, 1)
        sim.run_until(100.0)
        # Every session node 0 attempted targeted the dead node 1.
        assert sim.sessions_failed == sim.sessions_run
        assert not sim.coverage.has_propagated_from(0, 1)
