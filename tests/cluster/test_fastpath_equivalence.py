"""The quiescent-pair fast path is observationally invisible.

``quiescent_fastpath=True`` replays prebuilt per-pair, mirrored, and
uniform stamps instead of executing identical-copy sessions — but every
observable the simulation exposes must come out exactly as if each
session had run: round history, per-node stores and DBVVs, message and
byte counters, latency, frame census.  These tests drive the same
seeded workloads — including crashes, partitions, a lossy window, and
a mid-session crash, all of which must *disarm* the stamps — through
both arms and require bit-for-bit agreement on everything except the
fast path's own skip counters.

Sanitize and durable modes are pinned off: the sanitizer deliberately
disables stamp replay (it cross-checks predictions instead), and this
test is exactly the equivalence the sanitizer assumes.
"""

from dataclasses import asdict

import pytest

from repro.cluster.failures import (
    Crash,
    CrashMidSession,
    FailurePlan,
    HealEvent,
    LossyWindow,
    PartitionEvent,
    Recover,
)
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.substrate.operations import Put

N_NODES = 12
ITEMS = make_items(30)

#: Exercises every stamp-invalidation edge: node churn (gen clocks +
#: fabric epoch), partition/heal (epoch), a lossy window and an armed
#: mid-session crash (both must suppress replay for the round), and a
#: second update burst mid-run (gen clocks again).
FAULT_PLAN = [
    Crash(node=1, at_round=6),
    Recover(node=1, at_round=10),
    PartitionEvent(groups=(tuple(range(6)), tuple(range(6, N_NODES))), at_round=14),
    HealEvent(at_round=18),
    LossyWindow(rate=0.3, at_round=22, until_round=26, seed=99),
    CrashMidSession(node=2, at_round=28, after_messages=1),
    Recover(node=2, at_round=31),
]


def _build(*, fastpath: bool, wire: bool, seed: int, faults: bool) -> ClusterSimulation:
    return ClusterSimulation(
        make_factory("dbvv", N_NODES, ITEMS),
        N_NODES,
        ITEMS,
        failure_plan=FailurePlan(list(FAULT_PLAN)) if faults else FailurePlan(),
        seed=seed,
        wire=wire,
        sanitize=False,
        durable=False,
        quiescent_fastpath=fastpath,
    )


def _drive(sim: ClusterSimulation) -> ClusterSimulation:
    for k in range(16):
        sim.apply_update(k % N_NODES, ITEMS[k % len(ITEMS)], Put(b"v%d" % k))
    for _ in range(20):
        sim.run_round()
    # Second burst mid-run: already-confirmed stamps must invalidate.
    for k in range(8):
        sim.apply_update(k % N_NODES, ITEMS[(k * 3) % len(ITEMS)], Put(b"w%d" % k))
    for _ in range(40):
        sim.run_round()
    return sim


def _assert_equivalent(fast: ClusterSimulation, slow: ClusterSimulation) -> None:
    assert [asdict(s) for s in fast.history] == [asdict(s) for s in slow.history]
    for node_fast, node_slow in zip(fast.nodes, slow.nodes):
        assert node_fast.state_fingerprint() == node_slow.state_fingerprint()
        # DBVV and every regular IVV, component for component.
        assert node_fast.exploration_vectors() == node_slow.exploration_vectors()
    counters_fast = fast.total_counters.snapshot()
    counters_slow = slow.total_counters.snapshot()
    for own in ("fastpath_skips", "fastpath_crosschecks"):
        counters_fast.pop(own)
        counters_slow.pop(own)
    assert counters_fast == counters_slow


@pytest.mark.parametrize("wire", [False, True], ids=["modelled", "wire"])
@pytest.mark.parametrize("seed", [7, 11])
class TestFastpathEquivalence:
    def test_quiescent_workload(self, wire, seed):
        fast = _drive(_build(fastpath=True, wire=wire, seed=seed, faults=False))
        slow = _drive(_build(fastpath=False, wire=wire, seed=seed, faults=False))
        _assert_equivalent(fast, slow)
        # The fast path must actually have fired, or this test pins nothing.
        assert fast.total_counters.fastpath_skips > 0
        assert slow.total_counters.fastpath_skips == 0

    def test_fault_workload(self, wire, seed):
        fast = _drive(_build(fastpath=True, wire=wire, seed=seed, faults=True))
        slow = _drive(_build(fastpath=False, wire=wire, seed=seed, faults=True))
        _assert_equivalent(fast, slow)
        assert fast.total_counters.fastpath_skips > 0
