"""Setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
the package can be installed in environments without the ``wheel``
package (offline machines), where ``pip install -e .`` cannot build the
PEP 517 editable wheel: run ``python setup.py develop`` instead.
"""

from setuptools import setup

setup()
