#!/usr/bin/env python3
"""Scalability study: anti-entropy overhead as the database grows.

The paper's headline claim, as a table you can regenerate: grow the
database from 100 to 25,600 items while the workload (m = items that
actually changed between sessions) stays fixed, and watch what one
anti-entropy session costs under each protocol.

The expected shape — and the reason to adopt the paper's protocol:

* dbvv           flat in N (cost follows m only),
* per-item-vv    linear in N (compares every item's vector),
* lotus          linear in N (scans every item's modification time),
* wuu-bernstein  flat-ish in N but pays per update volume and ships an
                 n-squared time-table.

Run:  python examples/scalability_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.e2_propagation_cost import run_session
from repro.metrics.reporting import Table, format_ratio

SIZES = (100, 400, 1_600, 6_400, 25_600)
M_CHANGED = 20
PROTOCOLS = ("dbvv", "per-item-vv", "lotus", "wuu-bernstein")


def main() -> None:
    table = Table(
        f"One propagation session, m={M_CHANGED} changed items "
        "(work = comparisons + scans; metadata = bytes beyond item values)",
        ["N items"] + [f"{p} work" for p in PROTOCOLS] + ["dbvv metadata B"],
    )
    results = {}
    for n_items in SIZES:
        row = [n_items]
        for protocol in PROTOCOLS:
            result = run_session(protocol, n_items, M_CHANGED)
            results[(protocol, n_items)] = result
            row.append(result.work)
        row.append(results[("dbvv", n_items)].metadata_bytes)
        table.add_row(row)
    table.print()

    small, large = SIZES[0], SIZES[-1]
    for protocol in PROTOCOLS:
        growth = format_ratio(
            results[(protocol, large)].work, results[(protocol, small)].work
        )
        print(f"{protocol:14s} work growth over a {large // small}x larger DB: {growth}")
    dbvv_large = results[("dbvv", large)]
    lotus_large = results[("lotus", large)]
    print(
        f"\nat N={large}: dbvv does {dbvv_large.work} units of work where "
        f"lotus does {lotus_large.work} "
        f"({format_ratio(lotus_large.work, dbvv_large.work)})"
    )


if __name__ == "__main__":
    main()
