#!/usr/bin/env python3
"""Failure during update distribution: epidemic repair vs push-only.

Reproduces the paper's section 8.2 argument as a runnable story: a
server originates a batch of updates, starts distributing them, and
crashes after reaching only two of its five peers.

* Under Oracle-style deferred push (no forwarding), the three stranded
  replicas stay stale until the originator is repaired — and nothing in
  the protocol even notices.
* Under the paper's protocol, the survivors' next DBVV comparisons
  detect the difference and forward the new data around the failure.

Run:  python examples/failure_recovery.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.e5_failure_recovery import run_dbvv_arm, run_oracle_arm
from repro.metrics.reporting import Table

REPAIR_ROUND = 25


def main() -> None:
    oracle = run_oracle_arm(repair_round=REPAIR_ROUND)
    dbvv = run_dbvv_arm(repair_round=REPAIR_ROUND)

    table = Table(
        "Originator crashes after reaching 2 of 5 peers; repaired at "
        f"round {REPAIR_ROUND}",
        ["protocol", "survivors fully current at round", "peak stale (node,item) pairs"],
    )
    for result in (oracle, dbvv):
        table.add_row([
            result.protocol,
            result.survivors_current_round
            if result.survivors_current_round is not None else "never",
            result.staleness.peak_stale_pairs,
        ])
    table.print()

    print(
        "oracle-push: staleness lasted until the repair "
        f"(round {oracle.survivors_current_round}) — coupled to MTTR."
    )
    print(
        "dbvv:        survivors forwarded around the failure and were "
        f"current by round {dbvv.survivors_current_round} — coupled to the "
        "anti-entropy schedule."
    )
    assert oracle.survivors_current_round == REPAIR_ROUND
    assert dbvv.survivors_current_round < REPAIR_ROUND / 2


if __name__ == "__main__":
    main()
