#!/usr/bin/env python3
"""Dial-up replication: the paper's motivating deployment.

A home office server replicates a 2,000-item product catalog from two
regional offices.  Connectivity is a nightly dial-up session — exactly
the "update propagation can be done at a convenient time" story of the
paper's introduction.  The demo measures what each nightly session
costs under the paper's protocol versus a Lotus-style scan, and uses an
out-of-bound fetch when a salesperson needs one price *right now*.

Run:  python examples/dialup_sync.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.lotus import LotusNode
from repro.core.protocol import DBVVProtocolNode
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.substrate.operations import Put
from repro.workload.generators import HotColdWorkload

N_ITEMS = 2_000
CATALOG = [f"sku-{k:05d}" for k in range(N_ITEMS)]
NIGHTS = 5
UPDATES_PER_DAY = 25


def run_protocol(name, factory):
    """Simulate NIGHTS days: daytime updates at the offices, one
    nightly dial-up pull by the home office from each office."""
    counters = [OverheadCounters() for _ in range(3)]
    offices = [factory(k, counters[k]) for k in range(2)]
    home = factory(2, counters[2])
    traffic = OverheadCounters()
    line = DirectTransport(traffic)

    # Office 0 owns the even SKUs, office 1 the odd ones (no conflicts).
    workload = HotColdWorkload(CATALOG, 1, seed=7, hot_fraction=0.02)
    nightly_rows = []
    for night in range(1, NIGHTS + 1):
        for event in workload.generate(UPDATES_PER_DAY):
            office = hash(event.item) % 2
            offices[office].user_update(event.item, event.op)
        for bundle in counters:
            bundle.reset()
        traffic.reset()
        for office in offices:
            home.sync_with(office, line)
        work = sum(bundle.total_work() for bundle in counters)
        nightly_rows.append((night, work, traffic.bytes_sent))
    return nightly_rows


def main() -> None:
    table = Table(
        f"Nightly dial-up cost, {N_ITEMS}-item catalog, "
        f"{UPDATES_PER_DAY} updates/day (work = comparisons + scans)",
        ["night", "dbvv work", "dbvv bytes", "lotus work", "lotus bytes"],
    )
    dbvv_rows = run_protocol(
        "dbvv", lambda k, c: DBVVProtocolNode(k, 3, CATALOG, counters=c)
    )
    lotus_rows = run_protocol(
        "lotus", lambda k, c: LotusNode(k, 3, CATALOG, counters=c)
    )
    for (night, dwork, dbytes), (_n, lwork, lbytes) in zip(dbvv_rows, lotus_rows):
        table.add_row([night, dwork, dbytes, lwork, lbytes])
    table.print()

    # The urgent mid-day fetch: a salesperson needs one SKU's price now.
    counters = OverheadCounters()
    office = DBVVProtocolNode(0, 2, CATALOG)
    laptop = DBVVProtocolNode(1, 2, CATALOG, counters=counters)
    office.user_update("sku-00042", Put(b"$199 (flash sale)"))
    line = DirectTransport(OverheadCounters())
    laptop.fetch_out_of_bound("sku-00042", office, line)
    print(
        f"out-of-bound fetch of sku-00042: laptop reads "
        f"{laptop.read('sku-00042')!r} after {counters.vv_comparisons} "
        "vector comparison(s) — no catalog scan, no log traffic"
    )


if __name__ == "__main__":
    main()
