#!/usr/bin/env python3
"""How connectivity structure shapes epidemic convergence.

Theorem 5 guarantees correctness on *any* schedule with transitive
coverage; what changes across topologies is speed.  This study runs the
same workload over six connectivity shapes — from a line (worst
diameter) to uniform random pull (the classic epidemic) — and charts
rounds-to-convergence and the traffic each shape pays.

Run:  python examples/topology_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import topologies
from repro.cluster.scheduler import RandomSelector, StarSelector
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.metrics.ascii_chart import bar_chart
from repro.workload import SingleWriterWorkload, Trace

N_NODES = 12
ITEMS = make_items(50)
SEEDS = (1, 2, 3)


def shapes():
    return [
        ("random pull", RandomSelector()),
        ("star (hub 0)", StarSelector(hub=0)),
        ("line", topologies.line(N_NODES)),
        ("ring", topologies.ring(N_NODES)),
        ("grid 3x4", topologies.grid(3, 4)),
        ("small world", topologies.small_world(N_NODES, chords=6, seed=4)),
    ]


def measure(selector, seed: int) -> tuple[int, int]:
    sim = ClusterSimulation(
        make_factory("dbvv", N_NODES, ITEMS), N_NODES, ITEMS,
        selector=selector, seed=seed,
    )
    workload = SingleWriterWorkload(ITEMS, N_NODES, seed=seed)
    Trace.from_events(workload.generate(100)).replay(sim, updates_per_round=0)
    rounds = sim.run_until_converged(max_rounds=120 * N_NODES)
    return rounds, sim.total_counters.bytes_sent


def main() -> None:
    rounds_by_shape = {}
    bytes_by_shape = {}
    for name, selector in shapes():
        results = [measure(selector, seed) for seed in SEEDS]
        rounds_by_shape[name] = sum(r for r, _b in results) / len(results)
        bytes_by_shape[name] = sum(b for _r, b in results) // len(results)

    print(bar_chart(
        rounds_by_shape, width=40,
        title=f"Mean rounds to convergence, {N_NODES} nodes "
              f"(100 updates, {len(SEEDS)} seeds)",
    ))
    print()
    print(bar_chart(
        bytes_by_shape, width=40,
        title="Mean total traffic (bytes) for the same runs",
    ))
    print()
    fastest = min(rounds_by_shape, key=rounds_by_shape.get)
    slowest = max(rounds_by_shape, key=rounds_by_shape.get)
    print(
        f"every topology converged (Theorem 5); '{fastest}' was fastest, "
        f"'{slowest}' slowest — structure buys speed, never correctness"
    )


if __name__ == "__main__":
    main()
