#!/usr/bin/env python3
"""Quickstart: three replicas, a few updates, one epidemic of them.

Shows the library's core loop in ~40 lines:

1. create a replicated database (three servers, fixed replica set);
2. apply user updates at whichever replica is convenient;
3. let anti-entropy spread them — note the DBVV answering "you are
   current" in O(1) once replicas match;
4. fetch a hot item out-of-bound, keep updating it locally, and watch
   intra-node propagation fold the deferred updates back in.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EpidemicNode
from repro.substrate.operations import Append, Put


def main() -> None:
    items = [f"doc-{k}" for k in range(100)]
    alice = EpidemicNode(0, 3, items)
    bob = EpidemicNode(1, 3, items)
    carol = EpidemicNode(2, 3, items)

    # 1. Users update whichever replica is closest (epidemic model).
    alice.update("doc-7", Put(b"meeting notes v1"))
    alice.update("doc-7", Append(b" +agenda"))
    bob.update("doc-42", Put(b"quarterly report"))

    # 2. Anti-entropy: carol pulls from alice, then from bob.
    outcome, _ = carol.pull_from(alice)
    print(f"carol <- alice: adopted {outcome.adopted}")
    outcome, _ = carol.pull_from(bob)
    print(f"carol <- bob:   adopted {outcome.adopted}")
    assert carol.read("doc-7") == b"meeting notes v1 +agenda"

    # 3. alice pulls from carol and gets bob's update transitively —
    #    forwarding is what push-only replication can't do.
    outcome, _ = alice.pull_from(carol)
    print(f"alice <- carol: adopted {outcome.adopted} (bob's update, forwarded)")

    # 4. Identical replicas detected in O(1): one DBVV comparison.
    outcome, _ = alice.pull_from(carol)
    print(f"alice <- carol again: adopted {outcome.adopted} (you-are-current)")

    # 5. Out-of-bound: bob needs doc-7 *now*, not at the next session.
    bob.copy_out_of_bound("doc-7", alice)
    print(f"bob reads doc-7 out-of-bound: {bob.read('doc-7')!r}")
    bob.update("doc-7", Append(b" +bob's edits"))  # deferred, auxiliary

    # 6. The next scheduled propagation replays bob's deferred edit onto
    #    the regular copy and discards the auxiliary copy.
    _, intra = bob.pull_from(alice)
    print(f"bob's scheduled pull replayed {intra.replayed} deferred update(s)")
    assert bob.read("doc-7") == b"meeting notes v1 +agenda +bob's edits"

    # 7. And the edit now propagates like any other update.
    alice.pull_from(bob)
    carol.pull_from(alice)
    assert carol.read("doc-7") == bob.read("doc-7")
    for node in (alice, bob, carol):
        node.check_invariants()
    print("all three replicas converged; invariants hold")


if __name__ == "__main__":
    main()
