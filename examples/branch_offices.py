#!/usr/bin/env python3
"""Branch offices: multiple databases per host, operation shipping,
and asynchronous schedules.

Three branch offices each host replicas of two databases — a CRM and a
wiki — as independent protocol instances on one machine (paper
section 2: "a separate instance of the protocol runs for each
database").  The wiki holds large pages that receive small edits, so it
runs the protocol in operation-shipping mode (the paper's alternative
propagation method); the CRM copies whole records.  Offices synchronize
on their own timetables via the event-driven simulator.

Run:  python examples/branch_offices.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.event_sim import EventDrivenSimulation, NodeSchedule
from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.metrics.reporting import Table, format_bytes
from repro.substrate.database import DatabaseSchema
from repro.substrate.host import Host
from repro.substrate.operations import BytePatch, Put

N_OFFICES = 3
CRM = DatabaseSchema.with_generated_items("crm", 200, N_OFFICES, prefix="customer")
WIKI = DatabaseSchema.with_generated_items("wiki", 50, N_OFFICES, prefix="page")
PAGE_SIZE = 16_384


def build_hosts() -> list[Host]:
    hosts = []
    for office in range(N_OFFICES):
        host = Host(office)
        host.add_database(
            CRM, lambda node_id: DBVVProtocolNode(node_id, N_OFFICES, CRM.items)
        )
        host.add_database(
            WIKI, lambda node_id: DeltaProtocolNode(node_id, N_OFFICES, WIKI.items)
        )
        hosts.append(host)
    return hosts


def demo_hosts() -> None:
    hosts = build_hosts()
    # Office 0 lands a customer and fixes a typo on a big wiki page.
    hosts[0].replica("crm").update("customer-00017", Put(b"ACME Corp; tier=gold"))
    hosts[0].replica("wiki").update("page-00003", Put(b"x" * PAGE_SIZE))
    hosts[1].sync_all_from(hosts[0])
    hosts[2].sync_all_from(hosts[1])
    hosts[0].replica("wiki").update("page-00003", BytePatch(1_024, b"[typo fixed]"))

    from repro.interfaces import DirectTransport
    from repro.metrics.counters import OverheadCounters

    traffic = OverheadCounters()
    line = DirectTransport(traffic)
    results = hosts[1].sync_all_from(hosts[0], line)
    table = Table(
        "Office 1's next session with office 0 (one connection, every "
        "shared database; the wiki ships the 12-byte patch, not the "
        f"{format_bytes(PAGE_SIZE)} page)",
        ["database", "items moved", "identical?"],
    )
    for database, stats in sorted(results.items()):
        table.add_row([
            database, stats.items_transferred, "yes" if stats.identical else "no",
        ])
    table.print()
    print(f"total session traffic: {format_bytes(traffic.bytes_sent)}")
    assert hosts[1].replica("wiki").read("page-00003")[1_024:1_036] == b"[typo fixed]"


def demo_async_schedules() -> None:
    """The same offices on their own timetables: office 2 only dials in
    a tenth as often, yet converges — just later."""
    schedules = [
        NodeSchedule(period=5.0, jitter=0.2),
        NodeSchedule(period=5.0, jitter=0.2),
        NodeSchedule(period=50.0, jitter=0.2),
    ]
    sim = EventDrivenSimulation(
        lambda node_id, counters: DBVVProtocolNode(
            node_id, N_OFFICES, CRM.items, counters=counters
        ),
        N_OFFICES,
        CRM.items,
        schedules=schedules,
        seed=21,
    )
    sim.schedule_update(1.0, 0, "customer-00001", Put(b"signed!"))
    sim.run_until(20.0)
    fast_pair = {sim.nodes[0].read("customer-00001"), sim.nodes[1].read("customer-00001")}
    laggard = sim.nodes[2].read("customer-00001")
    print(
        f"t=20: fast offices see {fast_pair}, slow office sees {laggard!r}"
    )
    converged_at = sim.run_until_converged(deadline=1_000.0)
    print(f"all offices converged by simulated t={converged_at:.0f} "
          f"({sim.sessions_run} sessions total)")
    assert sim.nodes[2].read("customer-00001") == b"signed!"


def main() -> None:
    demo_hosts()
    demo_async_schedules()


if __name__ == "__main__":
    main()
