#!/usr/bin/env python3
"""A mobile client roaming across weakly consistent replicas.

The paper's related work (section 8.3) reviews systems where "a client
stores the version vector returned by the last server it contacted and
uses it to ensure causal ordering of operations when it connects to
different servers."  This example runs that layer on top of the DBVV
protocol: a field engineer's laptop hops between three regional
servers, editing the same work order, while anti-entropy runs only
occasionally in the background.

Without session guarantees the hopping writes would be concurrent —
the protocol would (correctly!) freeze the work order as conflicting.
With guarantees + the FETCH policy, every hop is repaired on the spot
by the paper's out-of-bound copying, the history stays linear, and the
background anti-entropy eventually carries it everywhere.

Run:  python examples/mobile_client.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EpidemicNode
from repro.substrate.operations import Append, Put
from repro.substrate.sessions import ClientSession, GuaranteeViolation, SessionPolicy

ITEMS = [f"workorder-{k}" for k in range(20)]
ORDER = "workorder-7"


def roam_without_guarantees() -> None:
    servers = [EpidemicNode(k, 3, ITEMS) for k in range(3)]
    servers[0].update(ORDER, Put(b"[site visit]"))
    servers[1].update(ORDER, Put(b"[parts ordered]"))  # concurrent!
    outcome, _ = servers[0].pull_from(servers[1])
    print(
        "without guarantees: two hops produced concurrent updates — "
        f"protocol flags {outcome.conflicted} as conflicting (correct, "
        "but the engineer's edit is stuck pending resolution)"
    )


def roam_with_guarantees() -> None:
    servers = [EpidemicNode(k, 3, ITEMS) for k in range(3)]
    laptop = ClientSession(policy=SessionPolicy.FETCH)

    steps = [
        (0, b"[site visit]"),
        (1, b"[diagnosed: pump]"),
        (2, b"[parts ordered]"),
        (0, b"[repaired]"),
    ]
    for server_id, note in steps:
        server = servers[server_id]
        laptop.read(server, ORDER)            # monotonic read, may fetch
        laptop.write(server, ORDER, Append(note))
        print(
            f"  hop to server {server_id}: wrote {note.decode():20s} "
            f"(out-of-bound fetches so far: {laptop.fetches_triggered})"
        )

    # Background anti-entropy finally runs; everything converges with
    # zero conflicts because the session kept the history linear.
    for _round in range(4):
        for dst in servers:
            for src in servers:
                if dst is not src:
                    dst.pull_from(src)
    final = servers[2].read(ORDER)
    print(f"converged work order: {final.decode()}")
    assert final == b"[site visit][diagnosed: pump][parts ordered][repaired]"
    assert all(server.conflicts.count == 0 for server in servers)
    print("zero conflicts across the cluster")


def strict_client_sees_the_violation() -> None:
    servers = [EpidemicNode(k, 3, ITEMS) for k in range(3)]
    strict = ClientSession(policy=SessionPolicy.RAISE)
    strict.write(servers[0], ORDER, Put(b"[draft]"))
    try:
        strict.read(servers[1], ORDER)
    except GuaranteeViolation as exc:
        print(f"strict policy surfaces the hop instead of fetching: {exc}")


def main() -> None:
    roam_without_guarantees()
    print()
    print("with all four session guarantees (FETCH policy):")
    roam_with_guarantees()
    print()
    strict_client_sees_the_violation()


if __name__ == "__main__":
    main()
